"""E16 — the network-abstraction tax: socket/MPI over verbs vs raw.

Paper §4.2 picks verbs as the single data-transfer abstraction and
translates the socket and MPI APIs onto it.  This bench quantifies the
translation cost: the same co-located and cross-host byte streams pushed
through (1) a raw FreeFlow channel, (2) verbs SEND/RECV on the vNIC,
(3) the socket layer, and an MPI point-to-point exchange — so the cost
of each added layer is visible and bounded.
"""

import itertools

import pytest

from repro import ContainerSpec
from repro.core import Communicator, Opcode, SocketLayer, WorkRequest

from common import deploy_pair, fmt_table, freeflow_connect, record, stream, make_testbed

MESSAGE = 1 << 20
DURATION = 0.02


def _raw_channel(intra: bool):
    env, cluster, network = make_testbed(hosts=2)
    deploy_pair(cluster, network, "host0", "host0" if intra else "host1")
    connection = freeflow_connect(env, network, "a", "b")
    hosts = list(cluster.hosts)
    return stream(env, connection, hosts, duration_s=DURATION,
                  message_bytes=MESSAGE).gbps


def _verbs(intra: bool):
    env, cluster, network = make_testbed(hosts=2)
    deploy_pair(cluster, network, "host0", "host0" if intra else "host1")
    va, vb = network.vnic("a"), network.vnic("b")
    pa, pb = va.alloc_pd(), vb.alloc_pd()
    qa = va.create_qp(pa, va.create_cq(), va.create_cq(),
                      max_send_wr=1024)
    qb = vb.create_qp(pb, vb.create_cq(), vb.create_cq())
    mr_b = vb.reg_mr(pb, MESSAGE)

    def connect():
        yield from network.connect(qa, qb)

    env.run(until=env.process(connect()))
    stop_at = env.now + DURATION
    delivered = {"bytes": 0}

    def sender():
        while env.now < stop_at:
            yield from qa.post_send(WorkRequest(
                opcode=Opcode.SEND, length=MESSAGE, signaled=False,
            ))

    def receiver():
        while True:
            qb.post_recv(WorkRequest(opcode=Opcode.RECV, length=MESSAGE,
                                     local_mr=mr_b))
            wc = yield from qb.recv_cq.wait()
            delivered["bytes"] += wc.byte_len

    env.process(sender())
    env.process(receiver())
    env.run(until=stop_at)
    return delivered["bytes"] * 8 / DURATION / 1e9


def _sockets(intra: bool):
    env, cluster, network = make_testbed(hosts=2)
    a, b = deploy_pair(cluster, network, "host0",
                       "host0" if intra else "host1")
    layer = SocketLayer(network)
    listener = layer.listen(b, 7000)
    stop_at_box = {}
    delivered = {"bytes": 0}

    def server():
        sock = yield from listener.accept()
        while True:
            n, __ = yield from sock.recv(MESSAGE)
            delivered["bytes"] += n

    def client():
        sock = layer.socket(a)
        yield from sock.connect(b.ip, 7000)
        stop_at_box["t"] = env.now + DURATION
        while env.now < stop_at_box["t"]:
            yield from sock.send(MESSAGE)

    env.process(server())
    done = env.process(client())
    env.run(until=done)
    return delivered["bytes"] * 8 / DURATION / 1e9


def _mpi(intra: bool):
    env, cluster, network = make_testbed(hosts=2)
    a, b = deploy_pair(cluster, network, "host0",
                       "host0" if intra else "host1")
    comm = Communicator(network, [a, b])
    delivered = {"bytes": 0}
    stop_box = {}

    def rank0():
        endpoint = comm.endpoint(0)
        stop_box["t"] = env.now + DURATION
        while env.now < stop_box["t"]:
            yield from endpoint.send(1, MESSAGE)

    def rank1():
        endpoint = comm.endpoint(1)
        while True:
            nbytes, __ = yield from endpoint.recv(0)
            if env.now <= stop_box.get("t", float("inf")):
                delivered["bytes"] += nbytes

    env.process(rank0())
    env.process(rank1())
    env.run(until=env.now + DURATION + 1e-6)
    return delivered["bytes"] * 8 / DURATION / 1e9


def test_api_translation_tax(benchmark):
    results = {}

    def run():
        for intra in (True, False):
            where = "intra" if intra else "inter"
            results[(where, "raw channel")] = _raw_channel(intra)
            results[(where, "verbs send/recv")] = _verbs(intra)
            results[(where, "sockets-over-verbs")] = _sockets(intra)
            results[(where, "mpi-over-verbs")] = _mpi(intra)
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    layers = ["raw channel", "verbs send/recv", "sockets-over-verbs",
              "mpi-over-verbs"]
    record(
        "E16", "API translation tax — throughput by layer (Gb/s)",
        fmt_table(
            ["layer", "intra-host", "inter-host"],
            [[layer, results[("intra", layer)], results[("inter", layer)]]
             for layer in layers],
        ),
        "each layer adds bounded overhead; translated APIs keep most of "
        "the underlying mechanism's throughput (the paper's backward-"
        "compatibility requirement)",
    )

    for where in ("intra", "inter"):
        raw = results[(where, "raw channel")]
        for layer in layers[1:]:
            # Every translated API keeps at least 60 % of raw throughput.
            assert results[(where, layer)] > 0.6 * raw, (
                where, layer, results[(where, layer)], raw
            )

"""E16 — the network-abstraction tax: socket/MPI over verbs vs raw.

Paper §4.2 picks verbs as the single data-transfer abstraction and
translates the socket and MPI APIs onto it.  This bench quantifies the
translation cost: the same co-located and cross-host byte streams pushed
through (1) a raw FreeFlow channel, (2) verbs SEND/RECV on the vNIC,
(3) the socket layer, and an MPI point-to-point exchange — so the cost
of each added layer is visible and bounded.

It also carries the small-message RPC workload (``--rpc`` / E24): a
windowed echo-RPC loop at 64-512 B comparing the streaming socket path
(ring-buffered coalesced WRITEs, batched completions, credit flow
control) against the per-message legacy path, with byte-exact
conservation checks on every run and an optional sanitizer+tracer
verification pass.  Results merge into ``BENCH_sockets.json`` keyed
``seed`` (legacy) vs ``--label`` (streaming)::

    PYTHONPATH=src python benchmarks/bench_api_translation.py --rpc
    PYTHONPATH=src python benchmarks/bench_api_translation.py --rpc --smoke
"""

import argparse
import itertools
import json
import platform
import sys
from pathlib import Path

import pytest

from repro import ContainerSpec
from repro.core import Communicator, Opcode, SocketLayer, WorkRequest
from repro.sim import Store, Tank

from common import deploy_pair, fmt_table, freeflow_connect, record, stream, make_testbed

MESSAGE = 1 << 20
DURATION = 0.02

#: RPC request/response sizes (bytes) — the paper's "small message" band.
RPC_SIZES = (64, 128, 256, 512)
#: Simulated seconds of measured RPC traffic per data point.
RPC_DURATION = 0.005
#: Outstanding requests the client keeps in flight (the RPC pipeline
#: depth a multi-threaded/async client would sustain); this is what the
#: streaming path's coalescing feeds on.
RPC_WINDOW = 128

DEFAULT_RPC_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_sockets.json"


def _raw_channel(intra: bool):
    env, cluster, network = make_testbed(hosts=2)
    deploy_pair(cluster, network, "host0", "host0" if intra else "host1")
    connection = freeflow_connect(env, network, "a", "b")
    hosts = list(cluster.hosts)
    return stream(env, connection, hosts, duration_s=DURATION,
                  message_bytes=MESSAGE).gbps


def _verbs(intra: bool):
    env, cluster, network = make_testbed(hosts=2)
    deploy_pair(cluster, network, "host0", "host0" if intra else "host1")
    va, vb = network.vnic("a"), network.vnic("b")
    pa, pb = va.alloc_pd(), vb.alloc_pd()
    qa = va.create_qp(pa, va.create_cq(), va.create_cq(),
                      max_send_wr=1024)
    qb = vb.create_qp(pb, vb.create_cq(), vb.create_cq())
    mr_b = vb.reg_mr(pb, MESSAGE)

    def connect():
        yield from network.connect(qa, qb)

    env.run(until=env.process(connect()))
    stop_at = env.now + DURATION
    delivered = {"bytes": 0}

    def sender():
        while env.now < stop_at:
            yield from qa.post_send(WorkRequest(
                opcode=Opcode.SEND, length=MESSAGE, signaled=False,
            ))

    def receiver():
        while True:
            qb.post_recv(WorkRequest(opcode=Opcode.RECV, length=MESSAGE,
                                     local_mr=mr_b))
            wc = yield from qb.recv_cq.wait()
            delivered["bytes"] += wc.byte_len

    env.process(sender())
    env.process(receiver())
    env.run(until=stop_at)
    return delivered["bytes"] * 8 / DURATION / 1e9


def _sockets(intra: bool):
    env, cluster, network = make_testbed(hosts=2)
    a, b = deploy_pair(cluster, network, "host0",
                       "host0" if intra else "host1")
    layer = SocketLayer(network)
    listener = layer.listen(b, 7000)
    stop_at_box = {}
    delivered = {"bytes": 0}

    def server():
        sock = yield from listener.accept()
        while True:
            n, __ = yield from sock.recv(MESSAGE)
            delivered["bytes"] += n

    def client():
        sock = layer.socket(a)
        yield from sock.connect(b.ip, 7000)
        stop_at_box["t"] = env.now + DURATION
        while env.now < stop_at_box["t"]:
            yield from sock.send(MESSAGE)

    env.process(server())
    done = env.process(client())
    env.run(until=done)
    return delivered["bytes"] * 8 / DURATION / 1e9


def _mpi(intra: bool):
    env, cluster, network = make_testbed(hosts=2)
    a, b = deploy_pair(cluster, network, "host0",
                       "host0" if intra else "host1")
    comm = Communicator(network, [a, b])
    delivered = {"bytes": 0}
    stop_box = {}

    def rank0():
        endpoint = comm.endpoint(0)
        stop_box["t"] = env.now + DURATION
        while env.now < stop_box["t"]:
            yield from endpoint.send(1, MESSAGE)

    def rank1():
        endpoint = comm.endpoint(1)
        while True:
            nbytes, __ = yield from endpoint.recv(0)
            if env.now <= stop_box.get("t", float("inf")):
                delivered["bytes"] += nbytes

    env.process(rank0())
    env.process(rank1())
    env.run(until=env.now + DURATION + 1e-6)
    return delivered["bytes"] * 8 / DURATION / 1e9


def test_api_translation_tax(benchmark):
    results = {}

    def run():
        for intra in (True, False):
            where = "intra" if intra else "inter"
            results[(where, "raw channel")] = _raw_channel(intra)
            results[(where, "verbs send/recv")] = _verbs(intra)
            results[(where, "sockets-over-verbs")] = _sockets(intra)
            results[(where, "mpi-over-verbs")] = _mpi(intra)
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    layers = ["raw channel", "verbs send/recv", "sockets-over-verbs",
              "mpi-over-verbs"]
    record(
        "E16", "API translation tax — throughput by layer (Gb/s)",
        fmt_table(
            ["layer", "intra-host", "inter-host"],
            [[layer, results[("intra", layer)], results[("inter", layer)]]
             for layer in layers],
        ),
        "each layer adds bounded overhead; translated APIs keep most of "
        "the underlying mechanism's throughput (the paper's backward-"
        "compatibility requirement)",
    )

    for where in ("intra", "inter"):
        raw = results[(where, "raw channel")]
        for layer in layers[1:]:
            # Every translated API keeps at least 60 % of raw throughput.
            assert results[(where, layer)] > 0.6 * raw, (
                where, layer, results[(where, layer)], raw
            )


# -- E24: small-message RPC over the socket paths ---------------------------


def _rpc_sockets(streaming: bool, msg_bytes: int,
                 duration: float = RPC_DURATION,
                 window: int = RPC_WINDOW) -> dict:
    """Windowed echo-RPC between two cross-host containers.

    The client keeps up to ``window`` requests outstanding; the server
    echoes each request back on a separate sender process (so responses
    coalesce too).  Completed round trips are counted against the
    measurement window, then the run drains fully and byte-exact
    conservation is asserted in both directions.
    """
    env, cluster, network = make_testbed(hosts=2)
    a, b = deploy_pair(cluster, network, "host0", "host1")
    layer = SocketLayer(network, streaming=streaming)
    listener = layer.listen(b, 7100)

    stats = {"requests": 0, "responses": 0, "in_window": 0,
             "server_rx_bytes": 0, "client_rx_bytes": 0}
    state = {"sending_done": False}
    cutoff = {"t": None}
    tokens = Tank(env, capacity=window, initial=window)
    pending = Store(env)
    socks = {}

    def server():
        sock = yield from listener.accept()
        socks["server"] = sock

        def srv_rx():
            while True:
                n, __ = yield from sock.recv_exactly(msg_bytes)
                stats["server_rx_bytes"] += n
                yield pending.put(1)

        def srv_tx():
            while True:
                yield pending.get()
                yield from sock.send(msg_bytes)

        env.process(srv_rx())
        env.process(srv_tx())

    env.process(server())

    def client_rx(sock):
        while True:
            n, __ = yield from sock.recv_exactly(msg_bytes)
            stats["client_rx_bytes"] += n
            stats["responses"] += 1
            if env.now <= cutoff["t"]:
                stats["in_window"] += 1
            yield tokens.put(1)
            if (state["sending_done"]
                    and stats["responses"] >= stats["requests"]):
                return

    def client():
        sock = layer.socket(a)
        yield from sock.connect(b.ip, 7100)
        socks["client"] = sock
        rx_done = env.process(client_rx(sock))
        cutoff["t"] = env.now + duration
        while env.now < cutoff["t"]:
            yield tokens.get(1)
            yield from sock.send(msg_bytes)
            stats["requests"] += 1
        state["sending_done"] = True
        yield rx_done

    done = env.process(client())
    env.run(until=done)
    # Let trailing acks/credit updates land before the invariant checks.
    env.run(until=env.now + 5e-5)

    expect = stats["requests"] * msg_bytes
    assert stats["server_rx_bytes"] == expect, (
        "request bytes not conserved", stats, msg_bytes)
    assert stats["client_rx_bytes"] == expect, (
        "response bytes not conserved", stats, msg_bytes)
    for sock in socks.values():
        assert not sock._rx_buffer, "bytes left unread after full drain"
        if streaming:
            assert sock._rx_ring.used == 0, "ring bytes leaked"
            assert sock._staged_bytes == 0, "staged bytes never flushed"
    return {
        "streaming": streaming,
        "message_bytes": msg_bytes,
        "window": window,
        "duration_s": duration,
        "completed": stats["in_window"],
        "total_round_trips": stats["responses"],
        "msgs_per_sec": stats["in_window"] / duration,
    }


def _verified_rpc(msg_bytes: int = 64, duration: float = 0.0008,
                  window: int = 64) -> dict:
    """One short streaming run under the runtime sanitizer + tracer.

    Proves the coalesced path keeps the engine invariants (no past
    events, conservation across transplants, guarded flow transitions)
    and that every sampled message's tracer segments still sum exactly
    to its end-to-end latency.
    """
    from repro.analysis import sanitizer
    from repro.telemetry import tracer

    already = sanitizer.installed()
    if not already:
        sanitizer.install()
    tracer.enable(sample_rate=0.05)
    try:
        result = _rpc_sockets(True, msg_bytes, duration=duration,
                              window=window)
        trace_log = tracer.disable()
        checked = 0
        for trace in trace_log.traces:
            if not trace.closed:
                continue
            total = trace.total_s
            parts = sum(trace.breakdown().values())
            assert abs(parts - total) <= 1e-9 * max(1.0, abs(total)), (
                "tracer segments do not sum to end-to-end latency",
                parts, total, trace)
            checked += 1
        stats = sanitizer.stats()
    finally:
        tracer.disable()
        if not already:
            sanitizer.uninstall()
    assert checked > 0, "verification run sampled no traces"
    assert stats["violations"] == 0, stats
    result["traces_checked"] = checked
    result["sanitizer_checks"] = sum(
        count for key, count in stats.items()
        if key not in ("installed", "violations"))
    return result


def test_small_rpc_speedup(benchmark):
    """Streaming path sustains >= 3x the legacy msgs/sec at small sizes."""
    results = {}

    def run():
        for size in (64, 512):
            seed = _rpc_sockets(False, size, duration=0.002)
            current = _rpc_sockets(True, size, duration=0.002)
            results[size] = (seed["msgs_per_sec"], current["msgs_per_sec"])
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    record(
        "E24", "small-message RPC — msgs/sec by socket path",
        fmt_table(
            ["size (B)", "per-message (seed)", "streaming", "speedup"],
            [[size, seed, current, current / seed]
             for size, (seed, current) in sorted(results.items())],
        ),
        "ring-buffered coalesced WRITEs + batched completions + credit "
        "flow control vs one SEND and one CQ wait per message",
    )
    for size, (seed, current) in results.items():
        assert current >= 3.0 * seed, (size, seed, current)


# -- harness (BENCH_sockets.json) -------------------------------------------


def run_rpc_suite(smoke: bool) -> dict:
    sizes = (64, 512) if smoke else RPC_SIZES
    duration = 0.002 if smoke else RPC_DURATION
    seed_results = {}
    current_results = {}
    for size in sizes:
        seed_results[str(size)] = _rpc_sockets(False, size,
                                               duration=duration)
        current_results[str(size)] = _rpc_sockets(True, size,
                                                  duration=duration)
    verify = _verified_rpc()
    return {
        "sizes": [str(size) for size in sizes],
        "seed": seed_results,
        "current": current_results,
        "verify": verify,
    }


def merge_and_write(path: Path, label: str, seed: dict,
                    current: dict) -> None:
    data = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except (ValueError, OSError):
            data = {}
    data["seed"] = seed
    data[label] = current
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="small-message RPC benchmark for the socket paths")
    parser.add_argument(
        "--rpc", action="store_true",
        help="run the echo-RPC workload (the only CLI mode; the "
             "throughput matrix runs under pytest-benchmark)")
    parser.add_argument(
        "--label", default="current",
        help="JSON key for the streaming-path results")
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_RPC_OUTPUT,
        help="JSON file to merge results into")
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced workload + assert the speedup/rate floors")
    parser.add_argument(
        "--floor", type=float, default=2_000_000.0,
        help="minimum streaming msgs/sec at 64 B in --smoke mode")
    parser.add_argument(
        "--ratio-floor", type=float, default=3.0,
        help="minimum streaming/seed speedup in --smoke mode")
    parser.add_argument(
        "--no-write", action="store_true",
        help="print results without touching the JSON file")
    args = parser.parse_args(argv)
    if not args.rpc:
        parser.error("nothing to do: pass --rpc")

    results = run_rpc_suite(smoke=args.smoke)
    print(f"small-RPC benchmark ({'smoke' if args.smoke else 'full'} mode)")
    worst_ratio = None
    for size in results["sizes"]:
        seed = results["seed"][size]["msgs_per_sec"]
        current = results["current"][size]["msgs_per_sec"]
        ratio = current / seed
        worst_ratio = ratio if worst_ratio is None else min(worst_ratio,
                                                            ratio)
        print(f"  {size:>4} B  seed {seed:>10,.0f}/s  "
              f"streaming {current:>10,.0f}/s  {ratio:.2f}x")
    verify = results["verify"]
    print(f"  verify: {verify['traces_checked']} traces exact, "
          f"{verify['sanitizer_checks']:,} sanitizer checks, "
          f"0 violations")

    meta = {"python": platform.python_version(), "smoke": args.smoke,
            "window": RPC_WINDOW}
    if not args.no_write:
        merge_and_write(
            args.output, args.label,
            seed={**meta, "rpc": results["seed"]},
            current={**meta, "rpc": results["current"],
                     "verify": verify},
        )
        print(f"  -> merged under 'seed' and {args.label!r} "
              f"in {args.output}")

    if args.smoke:
        rate = results["current"]["64"]["msgs_per_sec"]
        if rate < args.floor:
            print(f"FAIL: streaming 64B rate {rate:,.0f}/s below floor "
                  f"{args.floor:,.0f}", file=sys.stderr)
            return 1
        if worst_ratio < args.ratio_floor:
            print(f"FAIL: worst speedup {worst_ratio:.2f}x below "
                  f"{args.ratio_floor:.1f}x", file=sys.stderr)
            return 1
        print(f"  smoke floors ok ({rate:,.0f}/s >= {args.floor:,.0f}; "
              f"{worst_ratio:.2f}x >= {args.ratio_floor:.1f}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""E1 — Paper Fig. 1: host mode vs overlay mode vs shared-memory IPC.

"Figure 1 is a telling demonstration of the fundamental tussle between
portability, isolation, and performance": both kernel modes lose badly
to shared-memory IPC, and overlay loses to host mode because traffic
hairpins through the software router as well.
"""

import pytest

from repro import ContainerSpec
from repro.baselines import HostModeNetwork, OverlayModeNetwork, ShmIpcNetwork

from common import fmt_table, pingpong, record, stream, make_testbed


def _measure(mode: str):
    env, cluster, network = make_testbed(hosts=1)
    host = cluster.host("host0")
    a = cluster.submit(ContainerSpec("a", pinned_host="host0"))
    b = cluster.submit(ContainerSpec("b", pinned_host="host0"))
    if mode == "host":
        channel = HostModeNetwork(env).connect(a, b, 5000, 5001)
    elif mode == "overlay":
        channel = OverlayModeNetwork(env).connect(a, b)
    else:
        channel = ShmIpcNetwork().connect(a, b)
    result = stream(env, channel, [host])
    latency = pingpong(env, channel)
    return result.gbps, latency.mean_us(), result.total_cpu_percent


def test_fig1_three_modes(benchmark):
    rows = {}

    def run():
        for mode in ("shm-ipc", "host", "overlay"):
            key = "shm" if mode == "shm-ipc" else mode
            rows[mode] = _measure(key)
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)

    table = fmt_table(
        ["mode", "throughput Gb/s", "latency us", "CPU %"],
        [[mode, *values] for mode, values in rows.items()],
    )
    record(
        "E1", "Fig. 1 — two local containers: three ways to communicate",
        table,
        "paper: both kernel modes far below shm IPC; overlay < host "
        "(double hairpin)",
    )

    shm_bw, shm_lat, __ = rows["shm-ipc"]
    host_bw, host_lat, __ = rows["host"]
    over_bw, over_lat, __ = rows["overlay"]
    # Paper shape: shm >> host > overlay for throughput; reversed for
    # latency.
    assert shm_bw > 1.5 * host_bw > 1.5 * over_bw
    assert shm_lat < host_lat < over_lat

"""E12 — §5 "System to Build": the RDMA WRITE flow through FreeFlow.

The paper walks through one operation — a verbs WRITE — and shows how
FreeFlow executes it over shared memory when the peer is local (Fig. 8)
and over real RDMA when it is remote (Fig. 7).  This bench runs exactly
that WRITE (the pseudo-code of Fig. 5) across a message-size sweep and
reports the completion time of each variant, plus raw RDMA as the
no-virtualisation reference.
"""

import pytest

from repro import ContainerSpec
from repro.baselines import RawRdmaNetwork
from repro.core import Opcode, WorkRequest
from repro.workloads import MessageSizeSweep

from common import deploy_pair, fmt_table, record, make_testbed

SIZES = MessageSizeSweep(4096, 4 * 1024 * 1024, factor=16).sizes()


def _freeflow_write_times(intra: bool):
    env, cluster, network = make_testbed(hosts=2)
    a, b = deploy_pair(cluster, network, "host0",
                       "host0" if intra else "host1")
    va, vb = network.vnic("a"), network.vnic("b")
    pa, pb = va.alloc_pd(), vb.alloc_pd()
    qa = va.create_qp(pa, va.create_cq(), va.create_cq())
    qb = vb.create_qp(pb, vb.create_cq(), vb.create_cq())
    mr_b = vb.reg_mr(pb, 8 * 1024 * 1024)

    def connect():
        yield from network.connect(qa, qb)

    env.run(until=env.process(connect()))

    times = {}

    def writes():
        for size in SIZES:
            started = env.now
            yield from qa.post_send(WorkRequest(
                opcode=Opcode.WRITE, length=size, payload=b"x",
                remote_key=mr_b.rkey,
            ))
            wc = yield from qa.send_cq.wait()
            assert wc.ok
            times[size] = (env.now - started) * 1e6

    env.run(until=env.process(writes()))
    return times


def _raw_rdma_write_times(intra: bool):
    env, cluster, network = make_testbed(hosts=2)
    a, b = deploy_pair(cluster, network, "host0",
                       "host0" if intra else "host1")
    channel = RawRdmaNetwork().connect(a, b)
    times = {}

    def writes():
        for size in SIZES:
            started = env.now
            yield from channel.a.send(size)
            yield from channel.b.recv()
            times[size] = (env.now - started) * 1e6

    env.run(until=env.process(writes()))
    return times


def test_verbs_write_flow(benchmark):
    results = {}

    def run():
        results["freeflow shm (Fig. 8)"] = _freeflow_write_times(True)
        results["freeflow rdma (Fig. 7)"] = _freeflow_write_times(False)
        results["raw rdma (reference)"] = _raw_rdma_write_times(False)
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    record(
        "E12", "§5 — one verbs WRITE, completion time by size (us)",
        fmt_table(
            ["path"] + [f"{s >> 10}KB" for s in SIZES],
            [[name] + [times[s] for s in SIZES]
             for name, times in results.items()],
        ),
        "intra-host WRITE completes via shared memory, beating even real "
        "RDMA for large sizes; FreeFlow's remote WRITE tracks raw RDMA "
        "with a small vNIC/agent overhead",
    )

    shm = results["freeflow shm (Fig. 8)"]
    ff_rdma = results["freeflow rdma (Fig. 7)"]
    raw = results["raw rdma (reference)"]
    big = SIZES[-1]
    # Large intra-host WRITEs: the shm path beats the NIC hairpin.
    assert shm[big] < ff_rdma[big]
    # FreeFlow's remote WRITE is within 2x of raw RDMA (agent+vNIC tax).
    assert ff_rdma[big] < 2 * raw[big]

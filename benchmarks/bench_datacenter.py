#!/usr/bin/env python
"""Datacenter-scale control-plane benchmark (DESIGN.md §15).

Builds a lease-backed fleet — default 1024 hosts in 32 racks, 4
containers per host placed by the rack-aware strategy — opens 100k
flows through the full control plane (policy query + channel build),
then kills one rack by silencing its lease keepalives.  Three headline
metrics come out:

* **flow-setup rate** — wall-clock flows/sec through
  ``connect_containers`` with the fleet live (watch dispatch, placement
  accounting and lease keepalives all running);
* **convergence** — sim-time from "rack goes silent" to every affected
  flow BROKEN (detection is lease-expiry-driven: nobody calls
  ``fail_host``), then from the respawns to every one ACTIVE again;
* **control-plane memory** — flight-recorder state size, KV footprint
  (keys / history / watches) and peak RSS.

The watch-dispatch counters ride along: ``checks/event`` stays flat as
the fleet grows because dispatch walks the key trie, not the watch set.

Results merge into ``BENCH_datacenter.json`` keyed by ``--label``::

    PYTHONPATH=src python benchmarks/bench_datacenter.py --label current
    PYTHONPATH=src python benchmarks/bench_datacenter.py --smoke

``--smoke`` runs 64 hosts / 2k flows and asserts the flow-setup rate
stays above ``--floor`` flows/sec (CI's control-plane scaling trip
wire).  The cyclic GC is disabled for the run: with ~50 live objects
per flow the collector's pauses would otherwise dominate the measured
rates without ever finding garbage (everything stays reachable).
"""

from __future__ import annotations

import argparse
import gc
import json
import platform
import sys
from pathlib import Path
from time import perf_counter

from repro.cluster import (
    ClusterOrchestrator,
    ContainerSpec,
    RackAwareStrategy,
)
from repro.core import FreeFlowNetwork
from repro.core.flows import FlowState
from repro.hardware import Fabric, Host
from repro.sim import Environment
from repro.sim.rand import RandomStream
from repro.telemetry import flowrecords as _flowrecords
from repro.telemetry.flowrecords import FlowRecorder

DEFAULT_OUTPUT = (
    Path(__file__).resolve().parent.parent / "BENCH_datacenter.json"
)

#: Host lease TTL (sim seconds).  Detection latency after a rack goes
#: silent is bounded by one TTL plus the watch coalescing window.
HOST_LEASE_TTL_S = 1.0


# -- fleet construction ------------------------------------------------------


def build_fleet(hosts: int, racks: int, per_host: int):
    """Lease-backed cluster + network with rack-aware placement."""
    env = Environment()
    fabric = Fabric(env)
    strategy = RackAwareStrategy()
    cluster = ClusterOrchestrator(
        env, strategy=strategy, host_lease_ttl_s=HOST_LEASE_TTL_S
    )
    strategy.cluster = cluster
    t0 = perf_counter()
    for i in range(hosts):
        cluster.add_host(
            Host(env, f"host{i}", fabric=fabric), rack=f"rack{i % racks}"
        )
    network = FreeFlowNetwork(cluster)
    network.reconciler.start()
    names = []
    for i in range(hosts * per_host):
        container = cluster.submit(ContainerSpec(f"c{i}"))
        network.attach(container)
        names.append(container.name)
    build_wall = perf_counter() - t0
    return env, cluster, network, names, build_wall


# -- phase 1: flow setup -----------------------------------------------------


def setup_flows(env, network, names, n_flows: int, seed: int):
    """Open ``n_flows`` connections between seeded-random pairs."""
    rng = RandomStream(seed, "bench.datacenter.pairs")
    flows = []
    total = len(names)

    def go():
        for _ in range(n_flows):
            a = rng.randrange(total)
            b = rng.randrange(total)
            if b == a:
                b = (a + 1) % total
            flow = yield from network.connect_containers(names[a], names[b])
            flows.append(flow)

    proc = env.process(go())
    sim0 = env.now
    t0 = perf_counter()
    env.run(until=proc)
    wall = perf_counter() - t0
    kv = network.orchestrator.kv
    stats = {
        "flows": n_flows,
        "wall_s": wall,
        "flows_per_sec": n_flows / wall,
        "sim_s": env.now - sim0,
        "dispatch_events": kv.dispatch_events,
        "dispatch_checks": kv.dispatch_checks,
        "dispatch_checks_per_event": (
            kv.dispatch_checks / kv.dispatch_events
            if kv.dispatch_events else 0.0
        ),
        "watches": len(kv._watches),
    }
    return flows, stats


# -- phase 2: rack failure ---------------------------------------------------


def _run_until(env, predicate, poll_s: float, deadline: float) -> bool:
    """Advance sim time until ``predicate()`` holds (or the deadline)."""

    def probe():
        while not predicate() and env.now < deadline:
            yield env.timeout(poll_s)

    env.run(until=env.process(probe()))
    return predicate()


def fail_rack(env, cluster, network, rack: str):
    """Silence one rack's keepalives; measure detection + repair."""
    victims = [host.name for host in cluster.rack_hosts(rack)]
    lost = [
        name for host in victims for name in cluster.containers_on(host)
    ]
    affected_by_id = {}
    for name in lost:
        for flow in network.flows.flows_for(name):
            affected_by_id[id(flow)] = flow
    affected = list(affected_by_id.values())
    poll = HOST_LEASE_TTL_S / 200.0

    t0 = env.now
    for host in victims:
        cluster.silence_keepalives(host)
    detected = _run_until(
        env,
        lambda: all(f.state is FlowState.BROKEN for f in affected),
        poll, t0 + 10.0 * HOST_LEASE_TTL_S,
    )
    detect_sim_s = env.now - t0

    t1 = env.now
    wall1 = perf_counter()
    for name in lost:
        container = cluster.submit(ContainerSpec(name))
        network.attach(container)
    repaired = _run_until(
        env,
        lambda: all(f.state is FlowState.ACTIVE for f in affected),
        poll, t1 + 10.0 * HOST_LEASE_TTL_S,
    )
    return {
        "rack": rack,
        "hosts_lost": len(victims),
        "containers_lost": len(lost),
        "flows_affected": len(affected),
        "detected": detected,
        "detect_sim_s": detect_sim_s,
        "repaired": repaired,
        "repair_sim_s": env.now - t1,
        "repair_wall_s": perf_counter() - wall1,
    }


# -- phase 3: control-plane memory -------------------------------------------


def peak_rss_kb() -> int:
    import resource

    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def memory_report(cluster, network, recorder, n_flows: int) -> dict:
    ckv, nkv = cluster.kv, network.orchestrator.kv
    rss = peak_rss_kb()
    return {
        "recorder_state_size": recorder.state_size(),
        "recorder_transitions": sum(recorder.transition_counts.values()),
        "cluster_kv_keys": len(ckv),
        "cluster_kv_history": len(ckv._history),
        "cluster_kv_watches": len(ckv._watches),
        "network_kv_keys": len(nkv),
        "network_kv_history": len(nkv._history),
        "network_kv_watches": len(nkv._watches),
        "leases": ckv.lease_count(),
        "peak_rss_kb": rss,
        "rss_kb_per_flow": rss / n_flows if n_flows else 0.0,
    }


# -- harness -----------------------------------------------------------------


def run_suite(hosts: int, racks: int, per_host: int, n_flows: int,
              seed: int) -> dict:
    recorder = FlowRecorder(seed=seed, sample_rate=0.01)
    previous = _flowrecords.ACTIVE
    _flowrecords.ACTIVE = recorder
    try:
        env, cluster, network, names, build_wall = build_fleet(
            hosts, racks, per_host
        )
        flows, setup = setup_flows(env, network, names, n_flows, seed)
        failure = fail_rack(env, cluster, network, rack="rack0")
        memory = memory_report(cluster, network, recorder, n_flows)
    finally:
        _flowrecords.ACTIVE = previous
    return {
        "fleet": {
            "hosts": hosts,
            "racks": racks,
            "containers": hosts * per_host,
            "host_lease_ttl_s": HOST_LEASE_TTL_S,
            "build_wall_s": build_wall,
        },
        "flow_setup": setup,
        "rack_failure": failure,
        "memory": memory,
    }


def merge_and_write(path: Path, label: str, record: dict) -> None:
    data = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except (ValueError, OSError):
            data = {}
    data[label] = record
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", default="current",
                        help="key under which results are stored")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="JSON file to merge results into")
    parser.add_argument("--smoke", action="store_true",
                        help="64 hosts / 2k flows + flow-setup rate floor")
    parser.add_argument("--floor", type=float, default=500.0,
                        help="minimum flows/sec in --smoke mode")
    parser.add_argument("--hosts", type=int, default=None,
                        help="fleet size (default 1024, smoke 64)")
    parser.add_argument("--racks", type=int, default=None,
                        help="rack count (default 32, smoke 8)")
    parser.add_argument("--per-host", type=int, default=4,
                        help="containers submitted per host")
    parser.add_argument("--flows", type=int, default=None,
                        help="flows to open (default 100000, smoke 2000)")
    parser.add_argument("--seed", type=int, default=11,
                        help="seed for the pair-selection stream")
    parser.add_argument("--no-write", action="store_true",
                        help="print results without touching the JSON file")
    args = parser.parse_args(argv)

    hosts = args.hosts or (64 if args.smoke else 1024)
    racks = args.racks or (8 if args.smoke else 32)
    n_flows = args.flows or (2_000 if args.smoke else 100_000)

    gc.disable()
    try:
        results = run_suite(hosts, racks, args.per_host, n_flows, args.seed)
    finally:
        gc.enable()
    record = {
        "python": platform.python_version(),
        "smoke": args.smoke,
        "results": results,
    }

    fleet, setup = results["fleet"], results["flow_setup"]
    failure, memory = results["rack_failure"], results["memory"]
    print(f"datacenter benchmark ({'smoke' if args.smoke else 'full'} mode)")
    print(f"  fleet            {fleet['hosts']} hosts / {fleet['racks']} "
          f"racks / {fleet['containers']} containers "
          f"(built in {fleet['build_wall_s']:.2f}s)")
    print(f"  flow setup       {setup['flows']:,} flows at "
          f"{setup['flows_per_sec']:,.0f} flows/s wall "
          f"({setup['wall_s']:.2f}s)")
    print(f"  watch dispatch   {setup['dispatch_checks_per_event']:.2f} "
          f"checks/event over {setup['watches']} watches")
    print(f"  rack failure     {failure['hosts_lost']} hosts, "
          f"{failure['containers_lost']} containers, "
          f"{failure['flows_affected']:,} flows affected")
    print(f"  detection        {failure['detect_sim_s']*1e3:.0f} ms sim "
          f"(lease TTL {fleet['host_lease_ttl_s']*1e3:.0f} ms)")
    print(f"  repair           {failure['repair_sim_s']*1e3:.0f} ms sim / "
          f"{failure['repair_wall_s']:.2f} s wall")
    print(f"  memory           peak RSS {memory['peak_rss_kb']:,} KiB "
          f"({memory['rss_kb_per_flow']:.1f} KiB/flow), recorder state "
          f"{memory['recorder_state_size']}")

    if not args.no_write:
        merge_and_write(args.output, args.label, record)
        print(f"  -> merged under {args.label!r} in {args.output}")

    failed = []
    if not failure["detected"]:
        failed.append("rack failure was not fully detected")
    if not failure["repaired"]:
        failed.append("affected flows did not all repair")
    if args.smoke and setup["flows_per_sec"] < args.floor:
        failed.append(
            f"flow setup {setup['flows_per_sec']:,.0f} flows/s below "
            f"floor {args.floor:,.0f}"
        )
    for message in failed:
        print(f"FAIL: {message}", file=sys.stderr)
    if args.smoke and not failed:
        print(f"  smoke floor ok ({setup['flows_per_sec']:,.0f} >= "
              f"{args.floor:,.0f} flows/s)")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())

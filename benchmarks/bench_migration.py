"""E15 — §7 "Live migration": cost of moving a serving container.

A KV server live-migrates while a client keeps issuing GETs.  The bench
sweeps the container state size and reports total migration time,
downtime, pre-copy rounds and the GET latency before/after (the
mechanism flips from shared memory to RDMA when the pair splits).
"""

import pytest

from repro import ContainerSpec
from repro.core import MigrationController
from repro.sim.monitor import Series
from repro.workloads import KeyValueStoreApp

from common import fmt_table, record, make_testbed

STATE_SIZES_MB = (128, 512, 2048)
DIRTY_RATE = 200e6


def _migrate_under_load(state_mb: float):
    env, cluster, network = make_testbed(hosts=2)
    server = cluster.submit(ContainerSpec("kv", pinned_host="host0"))
    client_c = cluster.submit(ContainerSpec("cl", pinned_host="host0"))
    network.attach(server)
    network.attach(client_c)
    app = KeyValueStoreApp(network, server, value_bytes=4096)
    controller = MigrationController(network)

    outcome = {}

    def scenario():
        client = yield from app.client(client_c)
        yield from client.put(1, "x")
        before = Series()
        for _ in range(50):
            started = env.now
            yield from client.get(1)
            before.add(env.now - started)
        report = yield from controller.live_migrate(
            "kv", "host1",
            state_bytes=state_mb * 1e6, dirty_rate_bytes=DIRTY_RATE,
        )
        after = Series()
        for _ in range(50):
            started = env.now
            yield from client.get(1)
            after.add(env.now - started)
        outcome["report"] = report
        outcome["before_us"] = before.mean() * 1e6
        outcome["after_us"] = after.mean() * 1e6

    env.run(until=env.process(scenario()))
    return outcome


def test_live_migration_costs(benchmark):
    rows = []
    outcomes = []

    def run():
        for state_mb in STATE_SIZES_MB:
            outcome = _migrate_under_load(state_mb)
            outcomes.append(outcome)
            report = outcome["report"]
            rows.append([
                f"{state_mb} MB",
                report.total_seconds * 1e3,
                report.downtime_seconds * 1e3,
                report.precopy_rounds,
                outcome["before_us"],
                outcome["after_us"],
            ])
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)

    record(
        "E15", "§7 live migration — KV server under load",
        fmt_table(
            ["state", "total ms", "downtime ms", "rounds",
             "GET before us", "GET after us"],
            rows,
        ),
        "connections survive; downtime stays bounded while total time "
        "scales with state size; GETs get slower because the pair moved "
        "from shared memory to RDMA",
    )

    totals = [row[1] for row in rows]
    downtimes = [row[2] for row in rows]
    assert totals[0] < totals[1] < totals[2]
    for downtime, total in zip(downtimes, totals):
        assert downtime < total / 5
    for outcome in outcomes:
        changes = outcome["report"].mechanism_changes
        assert changes and changes[0][0].value == "shm"
        assert outcome["after_us"] > outcome["before_us"]

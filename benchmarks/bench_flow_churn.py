#!/usr/bin/env python
"""Flow-churn benchmark: reconciler-driven rebinds under live traffic.

N container pairs stream messages while the bench relocates destination
containers back and forth (co-located shm <-> inter-host RDMA).  Every
move is published to the KV store only; the watch-driven FlowReconciler
does the pause/drain/rebind/resume.  Reported per relocate:

* ``rebind_sim_s``   — simulated relocate-to-settled latency (mean/max);
* ``relocates_per_sec`` — wall-clock control-plane throughput;
* ``messages lost`` — sent minus received after a full drain (must be 0).

Results merge into ``BENCH_flow_churn.json`` keyed by ``--label``::

    PYTHONPATH=src python benchmarks/bench_flow_churn.py --label current
    PYTHONPATH=src python benchmarks/bench_flow_churn.py --smoke

``--smoke`` runs a reduced workload and exits non-zero if any message is
lost or any flow fails to return to ACTIVE (CI trip wire).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path
from time import perf_counter

from repro import ContainerSpec, quickstart_cluster
from repro.core import FlowState
from repro.errors import ConnectionReset

DEFAULT_OUTPUT = (
    Path(__file__).resolve().parent.parent / "BENCH_flow_churn.json"
)


def run_churn(pairs: int, relocates: int, send_gap_s: float = 50e-6) -> dict:
    env, cluster, network = quickstart_cluster(hosts=3)
    network.reconciler.start()

    flows = {}
    counters = {}
    stop = {"v": False}

    def wire():
        for i in range(pairs):
            src = cluster.submit(ContainerSpec(f"src{i}",
                                               pinned_host="host0"))
            dst = cluster.submit(ContainerSpec(f"dst{i}",
                                               pinned_host="host1"))
            network.attach(src)
            network.attach(dst)
            conn = yield from network.connect_containers(f"src{i}",
                                                         f"dst{i}")
            flows[f"dst{i}"] = conn
            counters[f"dst{i}"] = {"sent": 0, "received": 0}

    env.run(until=env.process(wire()))

    def sender(label, flow):
        while not stop["v"]:
            try:
                yield from flow.a.send(4096)
            except ConnectionReset:
                return
            counters[label]["sent"] += 1
            yield env.timeout(send_gap_s)

    def receiver(label, flow):
        while True:
            try:
                yield from flow.b.recv()
            except ConnectionReset:
                return
            counters[label]["received"] += 1

    for label, flow in flows.items():
        env.process(sender(label, flow))
        env.process(receiver(label, flow))

    rebind_sim_s = []

    def churn():
        yield env.timeout(0.001)
        for move in range(relocates):
            label = f"dst{move % pairs}"
            # Alternate co-located (shm) and inter-host (rdma) placement.
            destination = "host0" if (move // pairs) % 2 == 0 else "host2"
            started = env.now
            cluster.relocate(label, destination)
            network.orchestrator.refresh_location(label)
            yield from network.reconciler.wait_settled(label)
            rebind_sim_s.append(env.now - started)
        # Quiesce and drain so the conservation check is exact.
        stop["v"] = True
        yield env.timeout(0.001)
        yield from network.reconciler.drain(list(flows.values()))

    wall_start = perf_counter()
    env.run(until=env.process(churn()))
    wall = perf_counter() - wall_start

    sent = sum(c["sent"] for c in counters.values())
    received = sum(c["received"] for c in counters.values())
    not_active = [
        flow.flow_id for flow in flows.values()
        if flow.state is not FlowState.ACTIVE
    ]
    return {
        "pairs": pairs,
        "relocates": relocates,
        "rebinds": network.reconciler.rebinds,
        "rebind_sim_mean_s": sum(rebind_sim_s) / len(rebind_sim_s),
        "rebind_sim_max_s": max(rebind_sim_s),
        "relocates_per_sec": relocates / wall,
        "wall_s": wall,
        "messages_sent": sent,
        "messages_received": received,
        "messages_lost": sent - received,
        "flows_not_active": not_active,
        "transitions": network.flows.transitions,
    }


def merge_and_write(path: Path, label: str, record: dict) -> None:
    data = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except (ValueError, OSError):
            data = {}
    data[label] = record
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", default="current",
                        help="key under which results are stored")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="JSON file to merge results into")
    parser.add_argument("--smoke", action="store_true",
                        help="reduced workload + hard conservation check")
    parser.add_argument("--pairs", type=int, default=None,
                        help="streaming container pairs (default 8; 4 smoke)")
    parser.add_argument("--relocates", type=int, default=None,
                        help="relocations to drive (default 40; 8 smoke)")
    parser.add_argument("--no-write", action="store_true",
                        help="print results without touching the JSON file")
    args = parser.parse_args(argv)

    pairs = args.pairs or (4 if args.smoke else 8)
    relocates = args.relocates or (8 if args.smoke else 40)
    results = run_churn(pairs=pairs, relocates=relocates)
    record = {
        "python": platform.python_version(),
        "smoke": args.smoke,
        "benchmark": results,
    }

    print(f"flow churn benchmark ({'smoke' if args.smoke else 'full'} mode)")
    print(f"  pairs / relocates   {results['pairs']} / {results['relocates']}")
    print(f"  reconciler rebinds  {results['rebinds']}")
    print(f"  rebind latency      mean {results['rebind_sim_mean_s'] * 1e6:,.1f} us"
          f"  max {results['rebind_sim_max_s'] * 1e6:,.1f} us (sim)")
    print(f"  control throughput  {results['relocates_per_sec']:,.1f} relocates/s (wall)")
    print(f"  messages            {results['messages_sent']:,} sent, "
          f"{results['messages_lost']} lost")

    if not args.no_write:
        merge_and_write(args.output, args.label, record)
        print(f"  -> merged under {args.label!r} in {args.output}")

    failures = []
    if results["messages_lost"]:
        failures.append(f"{results['messages_lost']} messages lost")
    if results["flows_not_active"]:
        failures.append(f"flows not ACTIVE: {results['flows_not_active']}")
    if results["rebinds"] < relocates:
        failures.append(
            f"only {results['rebinds']} rebinds for {relocates} relocates"
        )
    if failures:
        print("FAIL: " + "; ".join(failures), file=sys.stderr)
        return 1
    print("  conservation ok: every relocate rebound, zero messages lost")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

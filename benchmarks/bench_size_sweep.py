"""E17 (extension) — throughput and latency vs message size.

Standard companion figure for any transport comparison: where does each
mechanism's advantage kick in?  Small messages are dominated by per-op
costs (syscalls for the kernel, posts for RDMA, notifies for shm); large
messages expose the per-byte story the headline figures show.  The
crossover structure is asserted: the kernel's syscall tax hurts most at
small sizes, and shared memory wins at every size intra-host.
"""

import pytest

from repro import ContainerSpec
from repro.baselines import BridgeModeNetwork, RawRdmaNetwork, ShmIpcNetwork
from repro.workloads import MessageSizeSweep

from common import fmt_table, make_testbed, pingpong, record, stream

SIZES = MessageSizeSweep(1024, 1 << 20, factor=8).sizes()


def _sweep(kind: str):
    points = []
    for size in SIZES:
        env, cluster, network = make_testbed(hosts=1)
        host = cluster.host("host0")
        a = cluster.submit(ContainerSpec("a", pinned_host="host0"))
        b = cluster.submit(ContainerSpec("b", pinned_host="host0"))
        channel = {
            "kernel": lambda: BridgeModeNetwork(env).connect(a, b),
            "rdma": lambda: RawRdmaNetwork().connect(a, b),
            "shm": lambda: ShmIpcNetwork().connect(a, b),
        }[kind]()
        result = stream(env, channel, [host], duration_s=0.02,
                        message_bytes=size)
        latency = pingpong(env, channel, rounds=40, message_bytes=size)
        points.append((result.gbps, latency.mean_us()))
    return points


def test_message_size_sweep(benchmark):
    sweeps = {}

    def run():
        for kind in ("kernel", "rdma", "shm"):
            sweeps[kind] = _sweep(kind)
        return sweeps

    benchmark.pedantic(run, rounds=1, iterations=1)

    record(
        "E17", "extension — throughput (Gb/s) vs message size, intra-host",
        fmt_table(
            ["size"] + list(sweeps),
            [[f"{size >> 10}KB"] + [sweeps[k][i][0] for k in sweeps]
             for i, size in enumerate(SIZES)],
        ),
        "per-op costs flatten every transport at small sizes; the "
        "ordering shm > rdma > kernel holds across the sweep",
    )
    record(
        "E17b", "extension — latency (us) vs message size, intra-host",
        fmt_table(
            ["size"] + list(sweeps),
            [[f"{size >> 10}KB"] + [sweeps[k][i][1] for k in sweeps]
             for i, size in enumerate(SIZES)],
        ),
        "shm lowest at every size; the kernel's fixed syscall/wakeup "
        "tax dominates its small-message latency",
    )

    for i, size in enumerate(SIZES):
        shm_bw, shm_lat = sweeps["shm"][i]
        rdma_bw, rdma_lat = sweeps["rdma"][i]
        kern_bw, kern_lat = sweeps["kernel"][i]
        # Kernel latency is always worst (syscall + wakeup tax).
        assert shm_lat < kern_lat and rdma_lat < kern_lat
        if size >= 4096:
            # The paper's measurement point (§2.3.1): shm lowest.  Below
            # ~2 KB the shm futex wakeup can lose to RDMA's polled path —
            # a real effect, recorded in the table above.
            assert shm_lat < rdma_lat
        assert shm_bw > kern_bw
    # Large messages: full ordering by bandwidth as in E2.
    assert sweeps["shm"][-1][0] > sweeps["rdma"][-1][0] > (
        sweeps["kernel"][-1][0]
    )
    # Throughput grows with size for every transport (per-op cost fades).
    for kind in sweeps:
        assert sweeps[kind][-1][0] > sweeps[kind][0][0]

"""E2/E3/E4 — §2.3.1 motivation figures: intra-host transport comparison.

Three figures share one experiment: a pair of containers on the same
bare-metal host communicating via the kernel stack (bridge mode), RDMA,
and shared memory.

* E2 ``eval_baremetal_thr``     — throughput (≈27 / 40 / near-memory-bw)
* E3 ``eval_baremetal_latency`` — latency (shm lowest)
* E4 ``eval_baremetal_cpu``     — CPU (kernel ≈2 cores, RDMA low, shm
  "still burns some cpu")
"""

import pytest

from repro import ContainerSpec
from repro.baselines import BridgeModeNetwork, RawRdmaNetwork, ShmIpcNetwork

from common import fmt_table, pingpong, record, stream, make_testbed


def _run_transport(kind: str):
    env, cluster, network = make_testbed(hosts=1)
    host = cluster.host("host0")
    a = cluster.submit(ContainerSpec("a", pinned_host="host0"))
    b = cluster.submit(ContainerSpec("b", pinned_host="host0"))
    if kind == "kernel (bridge)":
        channel = BridgeModeNetwork(env).connect(a, b)
    elif kind == "rdma":
        channel = RawRdmaNetwork().connect(a, b)
    else:
        channel = ShmIpcNetwork().connect(a, b)
    result = stream(env, channel, [host], duration_s=0.05)
    small = pingpong(env, channel, message_bytes=4096)
    large = pingpong(env, channel, rounds=30, message_bytes=1 << 20)
    return {
        "gbps": result.gbps,
        "cpu": result.total_cpu_percent,
        "lat_small_us": small.mean_us(),
        "lat_large_us": large.mean_us(),
    }


@pytest.fixture(scope="module")
def results():
    return {}


def test_intra_host_transports(benchmark, results):
    def run():
        for kind in ("kernel (bridge)", "rdma", "shared memory"):
            results[kind] = _run_transport(kind)
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    record(
        "E2", "eval_baremetal_thr — intra-host throughput by transport",
        fmt_table(
            ["transport", "Gb/s"],
            [[k, v["gbps"]] for k, v in results.items()],
        ),
        "paper: kernel 27 Gb/s, RDMA 40 Gb/s (NIC loopback bound), "
        "shm near memory bandwidth",
    )
    record(
        "E3", "eval_baremetal_latency — intra-host latency by transport",
        fmt_table(
            ["transport", "4KB us", "1MB us"],
            [[k, v["lat_small_us"], v["lat_large_us"]]
             for k, v in results.items()],
        ),
        "paper: shared memory achieves the lowest latency; kernel and "
        "RDMA comparable at large sizes (~1 ms for their test)",
    )
    record(
        "E4", "eval_baremetal_cpu — intra-host CPU usage by transport",
        fmt_table(
            ["transport", "CPU %"],
            [[k, v["cpu"]] for k, v in results.items()],
        ),
        "paper: kernel path 'almost saturates 2 cpu cores'; RDMA low; "
        "shm 'still burns some cpu'",
    )

    kernel, rdma, shm = (results[k] for k in
                         ("kernel (bridge)", "rdma", "shared memory"))
    # E2 shape: kernel ≈ 27, rdma ≈ 40 (link bound), shm far above both.
    assert kernel["gbps"] == pytest.approx(27, rel=0.08)
    assert rdma["gbps"] == pytest.approx(39, rel=0.05)
    assert shm["gbps"] > 1.8 * rdma["gbps"]
    # E3 shape: shm lowest latency at both sizes.
    assert shm["lat_small_us"] < rdma["lat_small_us"]
    assert shm["lat_small_us"] < kernel["lat_small_us"]
    assert shm["lat_large_us"] < kernel["lat_large_us"]
    # E4 shape: kernel ≈ 200 %, rdma < 10 %, shm ≈ one core.
    assert kernel["cpu"] == pytest.approx(200, rel=0.08)
    assert rdma["cpu"] < 10
    assert 70 < shm["cpu"] < 130

"""E11 — Fig. 2 deployment cases + the constraint matrix (Table 1).

Four representative environments: (a) containers on one bare-metal
host, (b) on two bare-metal hosts, (c) in one VM / co-located VMs,
(d) in VMs on two hosts — crossed with the paper's constraint rows
(no constraint / without trust / without RDMA NICs).  For each cell the
policy's choice is recorded and the chosen channel is actually driven,
so the matrix is measured rather than asserted.
"""

import pytest

from repro import ContainerSpec
from repro.cluster import ClusterOrchestrator
from repro.core import FreeFlowNetwork, PolicyConfig
from repro.hardware import Fabric, Host, NO_RDMA_TESTBED, VirtualMachine
from repro.sim import Environment
from repro.transports import Mechanism

from common import fmt_table, freeflow_connect, record, stream


def _build_case(case: str, constraint: str):
    env = Environment()
    fabric = Fabric(env)
    spec = NO_RDMA_TESTBED if constraint == "w/o RDMA NIC" else None
    cluster = ClusterOrchestrator(env)
    h1 = Host(env, "h1", spec=spec, fabric=fabric)
    h2 = Host(env, "h2", spec=spec, fabric=fabric)
    cluster.add_host(h1)
    cluster.add_host(h2)

    placements = {
        "(a) same host": ("h1", "h1"),
        "(b) two hosts": ("h1", "h2"),
        "(c) same VM": ("vm0", "vm0"),
        "(d) VMs, two hosts": ("vm0", "vm1"),
    }
    if case in ("(c) same VM", "(d) VMs, two hosts"):
        vm0 = VirtualMachine(h1, "vm0")
        cluster.add_vm(vm0)
        if case == "(d) VMs, two hosts":
            cluster.add_vm(VirtualMachine(h2, "vm1"))

    tenants = ("blue", "red") if constraint == "w/o trust" else ("t", "t")
    network = FreeFlowNetwork(cluster)
    loc_a, loc_b = placements[case]
    a = cluster.submit(ContainerSpec("a", tenant=tenants[0],
                                     pinned_host=loc_a))
    b = cluster.submit(ContainerSpec("b", tenant=tenants[1],
                                     pinned_host=loc_b))
    network.attach(a)
    network.attach(b)
    return env, network, [h1, h2]


CASES = ("(a) same host", "(b) two hosts", "(c) same VM",
         "(d) VMs, two hosts")
CONSTRAINTS = ("none", "w/o trust", "w/o RDMA NIC")

#: Paper Table 1, translated to this library's mechanisms.
EXPECTED = {
    ("(a) same host", "none"): Mechanism.SHM,
    ("(b) two hosts", "none"): Mechanism.RDMA,
    ("(c) same VM", "none"): Mechanism.SHM,
    ("(d) VMs, two hosts", "none"): Mechanism.RDMA,
    ("(a) same host", "w/o trust"): Mechanism.TCP,
    ("(b) two hosts", "w/o trust"): Mechanism.TCP,
    ("(c) same VM", "w/o trust"): Mechanism.TCP,
    ("(d) VMs, two hosts", "w/o trust"): Mechanism.TCP,
    ("(a) same host", "w/o RDMA NIC"): Mechanism.SHM,
    ("(b) two hosts", "w/o RDMA NIC"): Mechanism.TCP,
    ("(c) same VM", "w/o RDMA NIC"): Mechanism.SHM,
    ("(d) VMs, two hosts", "w/o RDMA NIC"): Mechanism.TCP,
}


def test_deployment_case_matrix(benchmark):
    chosen = {}
    measured = {}

    def run():
        for case in CASES:
            for constraint in CONSTRAINTS:
                env, network, hosts = _build_case(case, constraint)
                connection = freeflow_connect(env, network, "a", "b")
                chosen[(case, constraint)] = connection.mechanism
                result = stream(env, connection, hosts, duration_s=0.01)
                measured[(case, constraint)] = result.gbps
        return chosen

    benchmark.pedantic(run, rounds=1, iterations=1)

    record(
        "E11", "Fig. 2 / Table 1 — best mechanism per deployment case",
        fmt_table(
            ["case", *CONSTRAINTS],
            [[case] + [
                f"{chosen[(case, c)].value}:{measured[(case, c)]:.0f}G"
                for c in CONSTRAINTS
            ] for case in CASES],
        ),
        "cells are mechanism:measured-Gb/s; matches the paper's "
        "commented Table 1 exactly",
    )

    for key, expected_mechanism in EXPECTED.items():
        assert chosen[key] is expected_mechanism, (
            f"{key}: expected {expected_mechanism}, got {chosen[key]}"
        )
    # Sanity: the shm cells are dramatically faster than the TCP cells.
    assert measured[("(a) same host", "none")] > 1.8 * measured[
        ("(a) same host", "w/o trust")
    ]

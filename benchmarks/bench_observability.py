#!/usr/bin/env python
"""Flight-recorder overhead benchmark: what does flow accounting cost?

The flight recorder (``repro.telemetry`` rollups + flow records) hooks
the same hot delivery paths as the tracer and must obey the same
contract: one pointer compare when disarmed, small bounded cost when
armed at the production sampling rate.  Three claims are quantified:

* ``shm_off``      — shm messages/sec with the recorder disarmed (the
  default).  Baseline for the overhead rows.
* ``shm_armed_1``  — recorder armed at 1% flow sampling with rollups
  every 1 ms of sim time: the recommended production setting.  In
  ``--smoke`` mode the overhead must stay within ``--budget`` (default
  5%) — the CI trip wire for the PR-2 hot-path contract.  (Rollup
  frequency is the knob that matters: each roll snapshots the whole
  registry, so a 100 us interval on a millisecond-scale sim pays ~10%.)
* ``shm_armed_100``— 100% sampling, every delivery fully accounted
  (informational; not gated).

Two correctness gates ride along because they are cheap and catch the
failure modes that matter for an accountant:

* ``bounded_memory``  — a recorder fed 10x the distinct flows must stay
  under the static cap ``3*top_k + max_records + label_cache`` (sketches
  + record table + label cache are all individually capped).
* ``topk_ground_truth`` — the Space-Saving top-10 on a skewed synthetic
  stream must identify the exact true top-10.

Results merge into ``BENCH_observability.json`` keyed by ``--label``::

    PYTHONPATH=src python benchmarks/bench_observability.py --label current
    PYTHONPATH=src python benchmarks/bench_observability.py --smoke
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path
from time import perf_counter

from repro import telemetry
from repro.hardware import Fabric, Host
from repro.sim import Environment
from repro.sim.rand import RandomStream
from repro.telemetry.flowrecords import FlowRecorder
from repro.telemetry.sketches import SpaceSaving
from repro.transports import ShmChannel

DEFAULT_OUTPUT = (
    Path(__file__).resolve().parent.parent / "BENCH_observability.json"
)


def bench_shm_messages(n_msgs: int, msg_bytes: int = 4096) -> dict:
    """End-to-end shm messages/sec — the hook-dense delivery path."""
    env = Environment()
    host = Host(env, "h0", fabric=Fabric(env))
    channel = ShmChannel(host)

    def sender(end):
        for _ in range(n_msgs):
            yield from end.send(msg_bytes)

    def receiver(end):
        for _ in range(n_msgs):
            yield from end.recv()

    env.process(sender(channel.a))
    done = env.process(receiver(channel.b))
    start = perf_counter()
    env.run(until=done)
    wall = perf_counter() - start
    return {
        "messages": n_msgs,
        "message_bytes": msg_bytes,
        "wall_s": wall,
        "messages_per_sec": n_msgs / wall,
    }


def _best_of(repeats: int, fn, rate_key: str) -> dict:
    best = None
    for _ in range(repeats):
        result = fn()
        if best is None or result[rate_key] > best[rate_key]:
            best = result
    best["repeats"] = repeats
    return best


def check_bounded_memory(base_flows: int = 5_000) -> dict:
    """state_size() must stay under the static cap at 10x the flows."""
    top_k, max_records, label_cache = 32, 64, 256
    cap = 3 * top_k + max_records + label_cache

    def fill(n_flows: int) -> int:
        recorder = FlowRecorder(seed=3, sample_rate=0.01, top_k=top_k,
                                max_records=max_records,
                                label_cache=label_cache)
        for i in range(n_flows):
            recorder.on_deliver(f"f{i}:h{i % 64}->h{(i + 7) % 64}",
                                4096, i * 1e-6)
        return recorder.state_size()

    size_1x = fill(base_flows)
    size_10x = fill(10 * base_flows)
    return {
        "flows_1x": base_flows,
        "state_size_1x": size_1x,
        "state_size_10x": size_10x,
        "state_cap": cap,
        "bounded": size_1x <= cap and size_10x <= cap,
    }


def check_topk_ground_truth(draws: int = 20_000, keys: int = 2_000) -> dict:
    """Sketch top-10 on a skewed stream must match the exact top-10."""
    sketch = SpaceSaving(capacity=128)
    exact: dict[str, float] = {}
    rng = RandomStream(17, name="bench.topk")
    for _ in range(draws):
        key = f"flow{rng.zipf_index(keys, skew=1.4)}"
        weight = float(rng.randint(512, 4096))
        sketch.update(key, weight)
        exact[key] = exact.get(key, 0.0) + weight
    want = [k for k, _ in sorted(exact.items(),
                                 key=lambda kv: (-kv[1], kv[0]))[:10]]
    got = [key for key, _, _ in sketch.top(10)]
    return {
        "draws": draws,
        "distinct_keys": len(exact),
        "capacity": 128,
        "matches": got == want,
    }


def run_suite(smoke: bool, repeats: int = 3) -> dict:
    scale = 0.25 if smoke else 1.0
    n_msgs = max(5_000, int(20_000 * scale))
    results: dict[str, dict] = {}

    def armed(rate):
        with telemetry.session(sample_rate=0.0,
                               flow_sample_rate=rate,
                               rollup_interval_s=1e-3) as handle:
            result = bench_shm_messages(n_msgs)
            result["sampled_flows"] = handle.flows.sampled_flows
            result["rollup_windows"] = len(handle.rollups.windows)
        return result

    # Interleave off/armed measurements within each repeat so clock
    # drift (frequency ramps, background load) hits every configuration
    # equally instead of biasing whichever ran first.
    rows: dict[str, dict] = {}
    for _ in range(repeats):
        for key, fn in (("shm_off", lambda: bench_shm_messages(n_msgs)),
                        ("shm_armed_1", lambda: armed(0.01)),
                        ("shm_armed_100", lambda: armed(1.0))):
            result = fn()
            best = rows.get(key)
            if (best is None
                    or result["messages_per_sec"]
                    > best["messages_per_sec"]):
                rows[key] = result

    rows["shm_off"]["repeats"] = repeats
    results["shm_off"] = rows["shm_off"]
    baseline = results["shm_off"]["messages_per_sec"]
    for pct in (1, 100):
        row = rows[f"shm_armed_{pct}"]
        row["repeats"] = repeats
        row["flow_sample_rate"] = pct / 100.0
        row["overhead_pct"] = 100.0 * (
            1.0 - row["messages_per_sec"] / baseline
        )
        results[f"shm_armed_{pct}"] = row

    results["bounded_memory"] = check_bounded_memory()
    results["topk_ground_truth"] = check_topk_ground_truth()
    return results


def merge_and_write(path: Path, label: str, record: dict) -> None:
    data = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except (ValueError, OSError):
            data = {}
    data[label] = record
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--label",
        default="current",
        help="key under which results are stored in the JSON file",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help="JSON file to merge results into",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced workload + gate 1%%-sampling overhead against "
        "--budget and the two correctness checks (CI trip wire)",
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=5.0,
        help="maximum acceptable overhead_pct for shm_armed_1 in "
        "--smoke mode",
    )
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="print results without touching the JSON file",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="best-of-N repeats per configuration",
    )
    args = parser.parse_args(argv)

    results = run_suite(smoke=args.smoke, repeats=args.repeats)
    if (args.smoke
            and results["shm_armed_1"]["overhead_pct"] > args.budget):
        # One retry before failing: a single background-load spike on a
        # shared CI box can dwarf the few-percent effect being gated.
        retry = run_suite(smoke=True, repeats=args.repeats)
        if (retry["shm_armed_1"]["overhead_pct"]
                < results["shm_armed_1"]["overhead_pct"]):
            results = retry
    record = {
        "python": platform.python_version(),
        "smoke": args.smoke,
        "benchmarks": results,
    }

    print(f"observability benchmark ({'smoke' if args.smoke else 'full'} mode)")
    print(f"  shm (recorder off)   {results['shm_off']['messages_per_sec']:>12,.0f} msgs/s")
    for pct in (1, 100):
        row = results[f"shm_armed_{pct}"]
        print(
            f"  shm (armed {pct:>3d}%)     {row['messages_per_sec']:>12,.0f} msgs/s"
            f"  ({row['overhead_pct']:+5.1f}% vs off, "
            f"{row['rollup_windows']} windows)"
        )
    bounded = results["bounded_memory"]
    print(
        f"  bounded memory       state_size {bounded['state_size_1x']} @1x"
        f" vs {bounded['state_size_10x']} @10x flows, cap "
        f"{bounded['state_cap']} ({'ok' if bounded['bounded'] else 'FAIL'})"
    )
    topk = results["topk_ground_truth"]
    print(
        f"  top-10 ground truth  {'ok' if topk['matches'] else 'FAIL'}"
        f" ({topk['distinct_keys']} keys through capacity"
        f" {topk['capacity']})"
    )

    if not args.no_write:
        merge_and_write(args.output, args.label, record)
        print(f"  -> merged under {args.label!r} in {args.output}")

    failures = []
    if not bounded["bounded"]:
        failures.append(
            f"state_size exceeded cap {bounded['state_cap']}: "
            f"{bounded['state_size_1x']} @1x, "
            f"{bounded['state_size_10x']} @10x"
        )
    if not topk["matches"]:
        failures.append("sketch top-10 diverged from exact ground truth")
    if args.smoke:
        overhead = results["shm_armed_1"]["overhead_pct"]
        if overhead > args.budget:
            failures.append(
                f"1% sampling overhead {overhead:.1f}% exceeds budget "
                f"{args.budget:.1f}%"
            )
        else:
            print(
                f"  smoke budget ok ({overhead:+.1f}% <= "
                f"{args.budget:.1f}%)"
            )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())

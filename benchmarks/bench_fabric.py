#!/usr/bin/env python
"""Multi-path fabric benchmark: ECMP vs flowlet load balancing (§16).

Drives an elephant/mice mix across a k=4 fat-tree whose inter-pod
traffic has (k/2)^2 = 4 equal-cost core paths:

* **elephants** — four bursty bulk flows, one per pod-0 host, all into
  pod 1.  Their flow labels are *searched* so that static ECMP hashes
  every one of them onto the same agg-core link (the pathological
  collision every hash-based scheme has); the inter-burst idle gap
  exceeds the flowlet threshold, so flowlet mode re-rolls the path at
  every burst boundary and spreads the same traffic over all four
  core paths.
* **mice** — short request/response-sized messages riding the same
  pods, each a fresh flow.  Under the ECMP collision they queue behind
  the elephants on the hot link; with flowlets they mostly dodge it.

Both modes run the identical schedule (same sim, same bytes, seedless —
every decision is a sha256 hash), so the comparison is exact.  The
bench reports aggregate goodput, the elephant/mice split, mouse
delivery latency, per-core-link byte spread, and the flowlet
re-hash/reorder counters.  The headline gate: flowlet goodput must beat
the colliding ECMP baseline by >= 1.3x with **zero** intra-flowlet
reorders observed (the tracer checks every delivery).

Results merge into ``BENCH_fabric.json`` keyed by ``--label``::

    PYTHONPATH=src python benchmarks/bench_fabric.py --label current
    PYTHONPATH=src python benchmarks/bench_fabric.py --smoke

``--smoke`` shortens the run for CI while keeping the same gates.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

from repro.hardware import FatTreeFabric, PhysicalNic
from repro.sim import Environment

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_fabric.json"

#: Elephant burst shape: ``BURST_MSGS`` back-to-back wire messages, then
#: an idle gap longer than the 200 us flowlet threshold, repeated.
MSG_BYTES = 64 * 1024
BURST_MSGS = 16
BURST_GAP_S = 300e-6

MOUSE_BYTES = 2048
MOUSE_INTERVAL_S = 25e-6

#: pod0 -> pod1 host attachment ports (k=4: ports 0-3 are pod 0).
ELEPHANT_PAIRS = ((0, 4), (1, 5), (2, 6), (3, 7))
MOUSE_PAIRS = ((0, 6), (2, 4))


def build_fabric(flowlet: bool):
    env = Environment()
    fabric = FatTreeFabric(
        env, k=4,
        flowlet_gap_s=None if flowlet else float("inf"),
    )
    nics = [PhysicalNic(env) for _ in range(8)]
    for nic in nics:
        fabric.attach(nic)
    return env, fabric, nics


def colliding_labels(fabric, nics) -> list[int]:
    """Flow labels that static ECMP all hashes onto one agg-core link.

    Pure hash search (no randomness): for each elephant pair, walk
    integer labels until the selected path's agg-core hop matches the
    first elephant's.  The same labels are used in both modes, so the
    flowlet run starts from the identical worst case.
    """
    selector = fabric.selector
    target = None
    labels = []
    for src_port, dst_port in ELEPHANT_PAIRS:
        src_edge = fabric.topology.edge_for_port(src_port)
        dst_edge = fabric.topology.edge_for_port(dst_port)
        for label in range(10_000):
            key = (src_port, dst_port, label)
            path = selector._compute_path(key, 0, src_edge, dst_edge)
            hot = next(hop for hop in path if hop.tier == "agg-core")
            if target is None or hot is target:
                target = hot
                labels.append(label)
                break
        else:  # pragma: no cover - sha256 would have to be pathological
            raise RuntimeError("no colliding label found in 10k tries")
    # The search itself touched assignment counters; reset for the run.
    for link in fabric.topology.links():
        link.assignments = 0
    selector.reset()
    return labels


def run_mode(flowlet: bool, duration_s: float) -> dict:
    env, fabric, nics = build_fabric(flowlet)
    labels = colliding_labels(fabric, nics)
    delivered = {"elephant": 0, "mouse": 0}
    mouse_latencies: list[float] = []

    def elephant(src, dst, label):
        while env.now < duration_s:
            for _ in range(BURST_MSGS):
                yield from fabric.send(
                    src, dst, MSG_BYTES,
                    lambda: delivered.__setitem__(
                        "elephant", delivered["elephant"] + MSG_BYTES
                    ),
                    flow=label,
                )
            yield env.timeout(BURST_GAP_S)

    def mice(src, dst, base):
        mouse = 0
        while env.now < duration_s:
            sent_at = env.now

            def land(sent_at=sent_at):
                delivered["mouse"] += MOUSE_BYTES
                # Bounded by the mouse send schedule (one per interval).
                mouse_latencies.append(  # simlint: disable=SIM004
                    env.now - sent_at
                )

            yield from fabric.send(
                src, dst, MOUSE_BYTES, land, flow=("mouse", base, mouse)
            )
            mouse += 1
            yield env.timeout(MOUSE_INTERVAL_S)

    for (src_port, dst_port), label in zip(ELEPHANT_PAIRS, labels):
        env.process(elephant(nics[src_port], nics[dst_port], label))
    for base, (src_port, dst_port) in enumerate(MOUSE_PAIRS):
        env.process(mice(nics[src_port], nics[dst_port], base))

    def clock():
        yield env.timeout(duration_s)

    env.run(until=env.process(clock()))
    total = delivered["elephant"] + delivered["mouse"]
    core_bytes = sorted(
        link.pipe.bytes_moved for link in fabric.topology.links()
        if link.tier == "agg-core" and link.src.kind == "agg"
        and link.src.pod == 0
    )
    latencies = sorted(mouse_latencies)
    return {
        "mode": "flowlet" if flowlet else "ecmp",
        "duration_s": duration_s,
        "goodput_gbps": total * 8 / duration_s / 1e9,
        "elephant_gbps": delivered["elephant"] * 8 / duration_s / 1e9,
        "mouse_gbps": delivered["mouse"] * 8 / duration_s / 1e9,
        "mice_delivered": len(mouse_latencies),
        "mouse_latency_mean_us": (
            sum(latencies) / len(latencies) * 1e6 if latencies else 0.0
        ),
        "mouse_latency_p99_us": (
            latencies[int(0.99 * (len(latencies) - 1))] * 1e6
            if latencies else 0.0
        ),
        "core_uplink_bytes": core_bytes,
        "core_spread": (
            core_bytes[-1] / core_bytes[0] if core_bytes[0] else float("inf")
        ),
        "flowlet_rehashes": fabric.selector.rehashes,
        "reorders": fabric.reorders(),
        "deliveries_checked": fabric.tracer.checked,
    }


def merge_and_write(path: Path, label: str, record: dict) -> None:
    data = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except (ValueError, OSError):
            data = {}
    data[label] = record
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", default="current",
                        help="key under which results are stored")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="JSON file to merge results into")
    parser.add_argument("--smoke", action="store_true",
                        help="short run (same gates) for CI")
    parser.add_argument("--duration", type=float, default=None,
                        help="sim seconds per mode (default 0.02, smoke "
                             "0.005)")
    parser.add_argument("--ratio-floor", type=float, default=1.3,
                        help="minimum flowlet/ecmp goodput ratio")
    parser.add_argument("--no-write", action="store_true",
                        help="print results without touching the JSON file")
    args = parser.parse_args(argv)
    duration = args.duration or (0.005 if args.smoke else 0.02)

    ecmp = run_mode(flowlet=False, duration_s=duration)
    flowlet = run_mode(flowlet=True, duration_s=duration)
    ratio = flowlet["goodput_gbps"] / ecmp["goodput_gbps"]
    record = {
        "python": platform.python_version(),
        "smoke": args.smoke,
        "workload": {
            "k": 4,
            "elephants": len(ELEPHANT_PAIRS),
            "burst_bytes": BURST_MSGS * MSG_BYTES,
            "burst_gap_s": BURST_GAP_S,
            "mice_pairs": len(MOUSE_PAIRS),
            "mouse_bytes": MOUSE_BYTES,
        },
        "ecmp": ecmp,
        "flowlet": flowlet,
        "flowlet_over_ecmp": ratio,
    }

    print(f"fabric benchmark ({'smoke' if args.smoke else 'full'} mode, "
          f"{duration * 1e3:.0f} ms sim per mode)")
    for result in (ecmp, flowlet):
        print(f"  {result['mode']:8s} {result['goodput_gbps']:6.1f} Gb/s "
              f"aggregate ({result['elephant_gbps']:.1f} elephant + "
              f"{result['mouse_gbps']:.2f} mice), mouse p99 "
              f"{result['mouse_latency_p99_us']:.0f} us, core spread "
              f"{result['core_spread']:.1f}x, "
              f"{result['flowlet_rehashes']} rehashes, "
              f"{result['reorders']} reorders")
    print(f"  flowlet/ecmp goodput ratio: {ratio:.2f}x "
          f"(floor {args.ratio_floor:.1f}x)")

    if not args.no_write:
        merge_and_write(args.output, args.label, record)
        print(f"  -> merged under {args.label!r} in {args.output}")

    failed = []
    if ratio < args.ratio_floor:
        failed.append(f"flowlet/ecmp ratio {ratio:.2f} below floor "
                      f"{args.ratio_floor:.1f}")
    for result in (ecmp, flowlet):
        if result["reorders"]:
            failed.append(f"{result['mode']}: {result['reorders']} "
                          f"intra-flowlet reorder(s) observed")
    if not flowlet["flowlet_rehashes"]:
        failed.append("flowlet mode never re-hashed — the workload "
                      "exercised nothing")
    for message in failed:
        print(f"FAIL: {message}", file=sys.stderr)
    if not failed:
        print("PASS: flowlet beats colliding ECMP with zero reorders")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())

"""E9 — §2.3.2 inter-host communication across the 40 Gb/s fabric.

Two containers on different hosts: host-mode kernel TCP, Weave-style
overlay, raw RDMA, DPDK.  The kernel paths burn cores on both machines;
the bypass paths saturate the link with the CPU nearly idle (RDMA) or
one pinned PMD core per host (DPDK).
"""

import pytest

from repro import ContainerSpec
from repro.baselines import (
    HostModeNetwork,
    OverlayModeNetwork,
    RawRdmaNetwork,
)
from repro.transports import DpdkChannel, DpdkEngine

from common import fmt_table, pingpong, record, stream, make_testbed


def _interhost(kind: str):
    DpdkEngine._BY_HOST.clear()
    env, cluster, network = make_testbed(hosts=2)
    hosts = [cluster.host("host0"), cluster.host("host1")]
    a = cluster.submit(ContainerSpec("a", pinned_host="host0"))
    b = cluster.submit(ContainerSpec("b", pinned_host="host1"))
    channel = {
        "host tcp": lambda: HostModeNetwork(env).connect(a, b, 1, 2),
        "overlay": lambda: OverlayModeNetwork(env).connect(a, b),
        "rdma": lambda: RawRdmaNetwork().connect(a, b),
        "dpdk": lambda: DpdkChannel(a.host, b.host),
    }[kind]()
    result = stream(env, channel, hosts, duration_s=0.04)
    latency = pingpong(env, channel)
    return result.gbps, latency.mean_us(), result.total_cpu_percent


def test_interhost_transports(benchmark):
    rows = {}

    def run():
        for kind in ("host tcp", "overlay", "rdma", "dpdk"):
            rows[kind] = _interhost(kind)
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)

    record(
        "E9", "inter-host: kernel modes vs kernel bypass (2 hosts, 40G)",
        fmt_table(
            ["transport", "Gb/s", "latency us", "CPU % (both hosts)"],
            [[k, *v] for k, v in rows.items()],
        ),
        "paper: bypass reaches link rate; kernel TCP close behind but at "
        "~200 % CPU; overlay far behind at even more total CPU",
    )

    assert rows["rdma"][0] == pytest.approx(39, rel=0.07)
    assert rows["dpdk"][0] == pytest.approx(37, rel=0.10)
    assert rows["overlay"][0] < rows["host tcp"][0] / 2
    # CPU story: rdma ~0, dpdk = 2 pinned cores, kernel ~2 busy cores.
    assert rows["rdma"][2] < 10
    assert rows["dpdk"][2] == pytest.approx(200, rel=0.1)
    assert rows["host tcp"][2] == pytest.approx(200, rel=0.1)
    # Latency: bypass transports well under the kernel paths.
    assert rows["rdma"][1] < rows["host tcp"][1]
    assert rows["host tcp"][1] < rows["overlay"][1]

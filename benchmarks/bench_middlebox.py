"""E19 (extension) — what inline middlebox inspection costs FreeFlow.

Paper §7 leaves middlebox support as an open question; this bench
answers the cost side of it: an inline DPI engine (1 cycle/byte) is
attached to FreeFlow channels on each mechanism, and throughput/latency/
CPU are compared with and without it.  The result is sobering and is
exactly why the paper calls middleboxes a "valid concern": a
single-threaded software DPI tops out near 19 Gb/s (2.4 GHz / 1 cpb), so
it becomes the bottleneck of *every* kernel-bypass path — inline
inspection erases most of what shm and RDMA won unless the inspection
itself is offloaded or parallelised.
"""

import pytest

from repro import ContainerSpec
from repro.core import FreeFlowNetwork, Middlebox
from repro.metrics import run_pingpong, run_stream

from common import fmt_table, make_testbed, record


def _measure(intra: bool, inspected: bool):
    env, cluster, __ = make_testbed(hosts=2)
    middlebox = Middlebox(name="dpi") if inspected else None
    network = FreeFlowNetwork(cluster, middlebox=middlebox)
    hosts = list(cluster.hosts)
    a = cluster.submit(ContainerSpec("a", pinned_host="host0"))
    b = cluster.submit(
        ContainerSpec("b", pinned_host="host0" if intra else "host1")
    )
    network.attach(a)
    network.attach(b)

    def go():
        connection = yield from network.connect_containers("a", "b")
        return connection

    connection = env.run(until=env.process(go()))
    result = run_stream(env, [(connection.a, connection.b)],
                        duration_s=0.02, hosts=hosts)
    latency = run_pingpong(env, connection.a, connection.b, rounds=60)
    return result.gbps, latency.mean_us(), result.total_cpu_percent


def test_middlebox_cost(benchmark):
    rows = []
    data = {}

    def run():
        for intra in (True, False):
            where = "intra (shm)" if intra else "inter (rdma)"
            for inspected in (False, True):
                gbps, lat, cpu = _measure(intra, inspected)
                data[(intra, inspected)] = (gbps, lat, cpu)
                rows.append([
                    where, "dpi" if inspected else "none", gbps, lat, cpu,
                ])
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)

    record(
        "E19", "extension — inline IDS/IPS cost per mechanism",
        fmt_table(
            ["path", "middlebox", "Gb/s", "latency us", "CPU %"],
            rows,
        ),
        "a 1 cycle/byte inline DPI caps at ~19 Gb/s on one 2.4 GHz "
        "core, so it bottlenecks both fast paths — quantifying why the "
        "paper flags middleboxes as an open problem for kernel-bypass "
        "container networking",
    )

    shm_plain = data[(True, False)]
    shm_dpi = data[(True, True)]
    rdma_plain = data[(False, False)]
    rdma_dpi = data[(False, True)]
    dpi_ceiling_gbps = 2.4e9 / 1.0 * 8 / 1e9  # freq / cycles-per-byte
    # Inspection is the new bottleneck on both paths...
    assert shm_dpi[0] < shm_plain[0] * 0.5
    assert rdma_dpi[0] < rdma_plain[0] * 0.7
    # ...and both converge to (just under) the DPI engine's rate.
    assert shm_dpi[0] < dpi_ceiling_gbps
    assert rdma_dpi[0] < dpi_ceiling_gbps
    assert shm_dpi[0] == pytest.approx(rdma_dpi[0], rel=0.15)
    # Latency rises on both paths; CPU rises where it was low.
    assert shm_dpi[1] > shm_plain[1]
    assert rdma_dpi[1] > rdma_plain[1]
    assert rdma_dpi[2] > rdma_plain[2]

"""Shared plumbing for the experiment benchmarks (E1-E16 in DESIGN.md).

Each bench module reproduces one paper figure/table: it builds the
simulated testbed, runs the workload, prints the same rows/series the
paper reports, and asserts the paper's *shape* (ordering, rough ratios).
Results are registered here and echoed in the terminal summary, so
``pytest benchmarks/ --benchmark-only`` shows every regenerated artifact
without needing ``-s``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro import ContainerSpec, quickstart_cluster
from repro.metrics import run_pingpong, run_stream

#: exp id -> rendered report block, echoed by conftest at session end.
REPORTS: dict[str, str] = {}


def record(exp_id: str, title: str, table: str, notes: str = "") -> None:
    """Register one experiment's regenerated artifact."""
    block = [f"[{exp_id}] {title}", table.rstrip()]
    if notes:
        block.append(f"  note: {notes}")
    REPORTS[exp_id] = "\n".join(block)


def fmt_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Plain-text table with right-aligned numeric columns."""
    rendered = [[_fmt_cell(value) for value in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(row[i]) for row in rendered))
        if rows else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = [
        "  " + "  ".join(str(h).ljust(widths[i])
                         for i, h in enumerate(headers)),
        "  " + "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rendered:
        lines.append(
            "  " + "  ".join(row[i].rjust(widths[i]) if i else
                             row[i].ljust(widths[i])
                             for i in range(len(row)))
        )
    return "\n".join(lines)


def _fmt_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def make_testbed(hosts: int = 2, spec=None, **network_kwargs):
    """Fresh simulated testbed (2 paper-spec hosts by default)."""
    return quickstart_cluster(hosts=hosts, spec=spec, **network_kwargs)


def deploy_pair(cluster, network, host_a: str, host_b: str,
                names=("a", "b"), tenants=("t", "t")):
    """Submit+attach two containers pinned to the given hosts."""
    a = cluster.submit(ContainerSpec(names[0], tenant=tenants[0],
                                     pinned_host=host_a))
    b = cluster.submit(ContainerSpec(names[1], tenant=tenants[1],
                                     pinned_host=host_b))
    network.attach(a)
    network.attach(b)
    return a, b


def freeflow_connect(env, network, src: str, dst: str):
    """Resolve + build a FreeFlow connection, running the control plane."""

    def go():
        connection = yield from network.connect_containers(src, dst)
        return connection

    process = env.process(go())
    return env.run(until=process)


def stream(env, channel, hosts, duration_s: float = 0.03,
           message_bytes: int = 1 << 20, pairs=None):
    """Streaming measurement over one channel (or explicit pairs)."""
    endpoint_pairs = pairs if pairs is not None else [(channel.a, channel.b)]
    return run_stream(env, endpoint_pairs, duration_s=duration_s,
                      message_bytes=message_bytes, hosts=hosts)


def pingpong(env, channel, rounds: int = 100, message_bytes: int = 4096):
    return run_pingpong(env, channel.a, channel.b, rounds=rounds,
                        message_bytes=message_bytes)

"""E18 (extension) — placement sensitivity: how much co-location FreeFlow
can exploit.

FreeFlow's intra-host fast path only helps when communicating containers
actually share hosts — which the cluster scheduler controls.  This bench
deploys 8 communicating pairs across 2 hosts under three placements
(all pairs split, half co-located, all co-located) and measures the
aggregate throughput and cluster-wide CPU for FreeFlow vs a classic
overlay, quantifying the scheduler's leverage over network performance —
the systems-level corollary of the paper's design.
"""

import pytest

from repro import ContainerSpec
from repro.baselines import OverlayModeNetwork

from common import fmt_table, freeflow_connect, make_testbed, record, stream

PAIRS = 8


def _placed(colocated_pairs: int, system: str):
    env, cluster, network = make_testbed(hosts=2)
    hosts = list(cluster.hosts)
    overlay = OverlayModeNetwork(env) if system == "overlay" else None
    endpoint_pairs = []
    for i in range(PAIRS):
        if i < colocated_pairs:
            host_a = host_b = f"host{i % 2}"
        else:
            host_a, host_b = "host0", "host1"
        a = cluster.submit(ContainerSpec(f"a{i}", pinned_host=host_a))
        b = cluster.submit(ContainerSpec(f"b{i}", pinned_host=host_b))
        network.attach(a)
        network.attach(b)
        if overlay is not None:
            channel = overlay.connect(a, b)
        else:
            channel = freeflow_connect(env, network, f"a{i}", f"b{i}")
        endpoint_pairs.append((channel.a, channel.b))
    result = stream(env, None, hosts, duration_s=0.02,
                    pairs=endpoint_pairs)
    return result.gbps, result.total_cpu_percent


def test_placement_sensitivity(benchmark):
    rows = []

    def run():
        for colocated in (0, PAIRS // 2, PAIRS):
            ff_bw, ff_cpu = _placed(colocated, "freeflow")
            ov_bw, ov_cpu = _placed(colocated, "overlay")
            rows.append([
                f"{colocated}/{PAIRS}", ff_bw, ff_cpu, ov_bw, ov_cpu,
            ])
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)

    record(
        "E18", "extension — aggregate Gb/s and CPU vs co-located pairs "
               f"({PAIRS} pairs, 2 hosts)",
        fmt_table(
            ["co-located", "freeflow Gb/s", "ff CPU%",
             "overlay Gb/s", "ov CPU%"],
            rows,
        ),
        "FreeFlow converts every co-located pair into shared-memory "
        "bandwidth; the overlay is indifferent to placement because all "
        "its traffic funnels through the router either way",
    )

    split, half, packed = rows
    # FreeFlow gains a lot from co-location...
    assert packed[1] > 3 * split[1]
    assert half[1] > split[1]
    # ...while the overlay barely moves (router-bound regardless).
    assert packed[3] < 2.5 * split[3]
    # And FreeFlow dominates the overlay in every placement.
    for row in rows:
        assert row[1] > 2 * row[3]

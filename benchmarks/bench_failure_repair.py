#!/usr/bin/env python
"""Failure/repair benchmark: host death to healed flows, reconciler-only.

Each cycle kills the host carrying the server containers with a bare
``cluster.fail_host`` (only the cluster KV learns about it), lets the
reconciler's host-liveness watch break the affected flows, then submits
replacement containers on a surviving host.  The reconciler's container
watch auto-repairs every broken flow; the bench then proves the healed
channels carry traffic and measures:

* ``break_sim_s``  — simulated failure-to-all-BROKEN latency;
* ``repair_sim_s`` — simulated replacement-attach-to-all-ACTIVE latency;
* ``cycles_per_sec`` — wall-clock failure/repair throughput;
* post-repair probe conservation (every probe delivered; must be 100%).

Results merge into ``BENCH_failure_repair.json`` keyed by ``--label``::

    PYTHONPATH=src python benchmarks/bench_failure_repair.py --label current
    PYTHONPATH=src python benchmarks/bench_failure_repair.py --smoke

``--smoke`` runs a reduced workload and exits non-zero on any lost probe
or unhealed flow (CI trip wire).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path
from time import perf_counter

from repro import ContainerSpec, quickstart_cluster
from repro.core import FlowState

DEFAULT_OUTPUT = (
    Path(__file__).resolve().parent.parent / "BENCH_failure_repair.json"
)


def run_cycles(flows_n: int, cycles: int, probes: int = 5) -> dict:
    env, cluster, network = quickstart_cluster(hosts=3)
    network.reconciler.start()

    flows = []

    def wire():
        for i in range(flows_n):
            web = cluster.submit(ContainerSpec(f"web{i}",
                                               pinned_host="host0"))
            srv = cluster.submit(ContainerSpec(f"srv{i}",
                                               pinned_host="host1"))
            network.attach(web)
            network.attach(srv)
            conn = yield from network.connect_containers(f"web{i}",
                                                         f"srv{i}")
            flows.append(conn)

    env.run(until=env.process(wire()))

    break_sim_s = []
    repair_sim_s = []
    probe_stats = {"sent": 0, "received": 0}

    def scenario():
        victim, target = "host1", "host2"
        for _ in range(cycles):
            started = env.now
            cluster.fail_host(victim)  # nobody calls handle_host_failure
            yield from network.reconciler.wait_settled()
            assert all(f.state is FlowState.BROKEN for f in flows)
            break_sim_s.append(env.now - started)

            started = env.now
            for i in range(flows_n):
                replacement = cluster.submit(
                    ContainerSpec(f"srv{i}", pinned_host=target)
                )
                network.attach(replacement)
            yield from network.reconciler.wait_settled()
            repair_sim_s.append(env.now - started)

            for flow in flows:
                for _ in range(probes):
                    yield from flow.a.send(4096)
                    probe_stats["sent"] += 1
                    yield from flow.b.recv()
                    probe_stats["received"] += 1

            cluster.recover_host(victim)
            victim, target = target, victim

    wall_start = perf_counter()
    env.run(until=env.process(scenario()))
    wall = perf_counter() - wall_start

    unhealed = [
        flow.flow_id for flow in flows
        if flow.state is not FlowState.ACTIVE
    ]
    return {
        "flows": flows_n,
        "cycles": cycles,
        "break_sim_mean_s": sum(break_sim_s) / len(break_sim_s),
        "repair_sim_mean_s": sum(repair_sim_s) / len(repair_sim_s),
        "repair_sim_max_s": max(repair_sim_s),
        "cycles_per_sec": cycles / wall,
        "wall_s": wall,
        "repairs": network.reconciler.repairs,
        "failures_handled": network.reconciler.failures_handled,
        "probes_sent": probe_stats["sent"],
        "probes_lost": probe_stats["sent"] - probe_stats["received"],
        "flows_unhealed": unhealed,
    }


def merge_and_write(path: Path, label: str, record: dict) -> None:
    data = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except (ValueError, OSError):
            data = {}
    data[label] = record
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", default="current",
                        help="key under which results are stored")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="JSON file to merge results into")
    parser.add_argument("--smoke", action="store_true",
                        help="reduced workload + hard conservation check")
    parser.add_argument("--flows", type=int, default=None,
                        help="flows per cycle (default 6; 3 smoke)")
    parser.add_argument("--cycles", type=int, default=None,
                        help="failure/repair cycles (default 20; 4 smoke)")
    parser.add_argument("--no-write", action="store_true",
                        help="print results without touching the JSON file")
    args = parser.parse_args(argv)

    flows_n = args.flows or (3 if args.smoke else 6)
    cycles = args.cycles or (4 if args.smoke else 20)
    results = run_cycles(flows_n=flows_n, cycles=cycles)
    record = {
        "python": platform.python_version(),
        "smoke": args.smoke,
        "benchmark": results,
    }

    print(f"failure/repair benchmark "
          f"({'smoke' if args.smoke else 'full'} mode)")
    print(f"  flows / cycles      {results['flows']} / {results['cycles']}")
    print(f"  break latency       {results['break_sim_mean_s'] * 1e6:,.1f} us mean (sim)")
    print(f"  repair latency      mean {results['repair_sim_mean_s'] * 1e6:,.1f} us"
          f"  max {results['repair_sim_max_s'] * 1e6:,.1f} us (sim)")
    print(f"  throughput          {results['cycles_per_sec']:,.1f} cycles/s (wall)")
    print(f"  reconciler          {results['failures_handled']} failures, "
          f"{results['repairs']} repairs")
    print(f"  probes              {results['probes_sent']:,} sent, "
          f"{results['probes_lost']} lost")

    if not args.no_write:
        merge_and_write(args.output, args.label, record)
        print(f"  -> merged under {args.label!r} in {args.output}")

    failures = []
    if results["probes_lost"]:
        failures.append(f"{results['probes_lost']} probes lost post-repair")
    if results["flows_unhealed"]:
        failures.append(f"flows unhealed: {results['flows_unhealed']}")
    expected = flows_n * cycles
    if results["repairs"] != expected:
        failures.append(
            f"{results['repairs']} repairs, expected {expected}"
        )
    if failures:
        print("FAIL: " + "; ".join(failures), file=sys.stderr)
        return 1
    print("  all flows healed by the reconciler; zero probes lost")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""E7 — §2.4 ``eval_bw_host_bridge``: host vs bridge vs RDMA vs shm.

"Host-mode provides a better performance of 38 Gb/s" — the four-way bar
chart of the paper's motivation.
"""

import pytest

from repro import ContainerSpec
from repro.baselines import (
    BridgeModeNetwork,
    HostModeNetwork,
    RawRdmaNetwork,
    ShmIpcNetwork,
)

from common import fmt_table, record, stream, make_testbed


def _one(kind: str):
    env, cluster, network = make_testbed(hosts=1)
    host = cluster.host("host0")
    a = cluster.submit(ContainerSpec("a", pinned_host="host0"))
    b = cluster.submit(ContainerSpec("b", pinned_host="host0"))
    channel = {
        "host": lambda: HostModeNetwork(env).connect(a, b, 1, 2),
        "bridge": lambda: BridgeModeNetwork(env).connect(a, b),
        "rdma": lambda: RawRdmaNetwork().connect(a, b),
        "shm": lambda: ShmIpcNetwork().connect(a, b),
    }[kind]()
    return stream(env, channel, [host], duration_s=0.05).gbps


def test_host_vs_bridge_vs_rdma_vs_shm(benchmark):
    rates = {}

    def run():
        for kind in ("host", "bridge", "rdma", "shm"):
            rates[kind] = _one(kind)
        return rates

    benchmark.pedantic(run, rounds=1, iterations=1)

    record(
        "E7", "eval_bw_host_bridge — four-way intra-host throughput",
        fmt_table(["mode", "Gb/s"], [[k, v] for k, v in rates.items()]),
        "paper: host 38 > bridge 27; RDMA 40; shm above all",
    )
    assert rates["host"] == pytest.approx(38, rel=0.05)
    assert rates["bridge"] == pytest.approx(27, rel=0.05)
    assert rates["rdma"] > rates["host"] > rates["bridge"]
    assert rates["shm"] > rates["rdma"]

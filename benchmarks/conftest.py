"""Benchmark-session plumbing: echo every regenerated figure/table."""

import sys
from pathlib import Path

# Make `import common` work regardless of how pytest sets rootdir.
sys.path.insert(0, str(Path(__file__).parent))

from common import REPORTS  # noqa: E402


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not REPORTS:
        return
    terminalreporter.write_sep("=", "reproduced paper artifacts")
    for exp_id in sorted(REPORTS):
        terminalreporter.write_line(REPORTS[exp_id])
        terminalreporter.write_line("")

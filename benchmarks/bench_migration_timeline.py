"""E23 (extension) — throughput over time across a live migration.

The classic live-migration figure: a streaming flow's delivered
throughput, bucketed per millisecond, while its endpoint migrates.  The
shape to reproduce: steady shm-rate before, a dip to (near) zero during
the stop-and-copy window, then recovery at the *new* mechanism's rate
(RDMA, since the pair is split after the move) — plus some pre-copy-era
interference from the migration stream sharing the fabric.
"""

import pytest

from repro import ContainerSpec
from repro.core import MigrationController
from repro.sim import ThroughputTimeline

from common import fmt_table, make_testbed, record

BUCKET_S = 1e-3


def _timeline_run():
    env, cluster, network = make_testbed(hosts=2)
    a = cluster.submit(ContainerSpec("app", pinned_host="host0"))
    b = cluster.submit(ContainerSpec("svc", pinned_host="host0"))
    network.attach(a)
    network.attach(b)

    def wire():
        connection = yield from network.connect_containers("app", "svc")
        return connection

    connection = env.run(until=env.process(wire()))
    timeline = ThroughputTimeline(env, bucket_s=BUCKET_S)
    stop = {"v": False}

    def sender():
        while not stop["v"]:
            yield from connection.a.send(256 * 1024)

    def receiver():
        while True:
            message = yield from connection.b.recv()
            timeline.add(message.size_bytes)

    env.process(sender())
    env.process(receiver())

    marks = {}

    def scenario():
        yield env.timeout(0.02)
        marks["migration_start"] = env.now
        controller = MigrationController(network)
        report = yield from controller.live_migrate(
            "svc", "host1", state_bytes=100e6, dirty_rate_bytes=100e6,
        )
        marks["migration_end"] = env.now
        marks["report"] = report
        yield env.timeout(0.02)
        stop["v"] = True
        yield env.timeout(0.01)

    env.run(until=env.process(scenario()))
    return timeline, marks, connection


def test_migration_throughput_timeline(benchmark):
    box = {}

    def run():
        box["timeline"], box["marks"], box["conn"] = _timeline_run()
        return box

    benchmark.pedantic(run, rounds=1, iterations=1)

    timeline, marks = box["timeline"], box["marks"]
    series = timeline.series()
    start, end = marks["migration_start"], marks["migration_end"]

    def window_mean(t0, t1):
        rates = [r for t, r in series if t0 <= t < t1]
        return sum(rates) / len(rates) * 8 / 1e9 if rates else 0.0

    before = window_mean(0, start)
    during = window_mean(start, end)
    after = window_mean(end, end + 0.02)
    dip = timeline.minimum_rate(after_s=start) * 8 / 1e9

    record(
        "E23", "extension — throughput timeline across live migration "
               f"({BUCKET_S * 1e3:.0f} ms buckets)",
        fmt_table(
            ["phase", "mean Gb/s"],
            [["before (shm)", before],
             ["during migration", during],
             [f"dip (min bucket)", dip],
             ["after (rdma)", after]],
        ),
        f"downtime {marks['report'].downtime_seconds * 1e3:.2f} ms inside "
        f"a {(end - start) * 1e3:.1f} ms migration; the flow recovers at "
        "the new mechanism's rate",
    )

    assert before == pytest.approx(75, rel=0.12)      # shm rate
    assert after == pytest.approx(39, rel=0.12)       # rdma rate
    assert during < before                            # visible impact
    assert dip < before / 3                           # a real stall bucket
    assert not box["conn"].failed

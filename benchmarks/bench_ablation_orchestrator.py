"""E13 — ablation: library-side caching of orchestrator queries.

The paper's library "keeps pulling the newest container location
information from the network orchestrator" — a per-connection RPC.  This
ablation sweeps the orchestrator RPC latency and toggles the library
cache, measuring connection-setup cost and the query load on the
(conceptually centralized) orchestrator — the control-plane scalability
story behind the design.
"""

import pytest

from repro import ContainerSpec
from repro.core import FreeFlowNetwork

from common import fmt_table, record, make_testbed

RPC_LATENCIES_US = (20, 50, 200)
CONNECTIONS = 50


def _setup_cost(cache_ttl_s: float, rpc_latency_s: float):
    env, cluster, network_unused = make_testbed(hosts=2)
    network = FreeFlowNetwork(
        cluster, cache_ttl_s=cache_ttl_s, query_latency_s=rpc_latency_s
    )
    a = cluster.submit(ContainerSpec("a", pinned_host="host0"))
    b = cluster.submit(ContainerSpec("b", pinned_host="host1"))
    network.attach(a)
    network.attach(b)

    times = []

    def connect_many():
        for _ in range(CONNECTIONS):
            started = env.now
            yield from network.connect_containers("a", "b")
            times.append(env.now - started)

    env.run(until=env.process(connect_many()))
    mean_us = sum(times) / len(times) * 1e6
    return mean_us, network.orchestrator.queries_served


def test_orchestrator_query_caching(benchmark):
    rows = []

    def run():
        for rpc_us in RPC_LATENCIES_US:
            cold_us, cold_queries = _setup_cost(0.0, rpc_us * 1e-6)
            warm_us, warm_queries = _setup_cost(1.0, rpc_us * 1e-6)
            rows.append([f"{rpc_us} us", cold_us, cold_queries,
                         warm_us, warm_queries])
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)

    record(
        "E13", "ablation — orchestrator query caching "
               f"({CONNECTIONS} connections per cell)",
        fmt_table(
            ["RPC latency", "no-cache setup us", "queries",
             "cached setup us", "queries"],
            rows,
        ),
        "without the cache every connection pays a control-plane round "
        "trip and the central orchestrator serves O(connections) queries",
    )

    for row in rows:
        __, cold_us, cold_queries, warm_us, warm_queries = row
        assert cold_queries == CONNECTIONS
        assert warm_queries == 1
        assert warm_us < cold_us
    # Setup cost scales with RPC latency only in the uncached case.
    assert rows[-1][1] > rows[0][1] * 2
    assert rows[-1][3] < rows[0][1]

"""E3b — §2.4 "Figure 3": stacked latency components per transport.

"The stacked bar chart showing the total latency of TCP/IP, RDMA,
shared memory and their components."  The components are computed from
the same spec constants that drive the simulation, and the bench
*validates the model* by asserting that the components sum to the
measured end-to-end latency within a small tolerance — i.e. the latency
model is internally consistent, not two unrelated stories.
"""

import pytest

from repro import ContainerSpec
from repro.baselines import BridgeModeNetwork, RawRdmaNetwork, ShmIpcNetwork
from repro.hardware import PAPER_TESTBED
from repro.netstack import segment_count

from common import fmt_table, pingpong, record, make_testbed

SIZE = 4096


def _components_kernel(spec) -> dict:
    kernel = spec.kernel
    segments = segment_count(SIZE, kernel.segment_bytes)
    cpu = spec.cpu
    send = cpu.seconds_for(
        kernel.syscall_cycles + SIZE * kernel.send_cycles_per_byte
        + segments * kernel.per_segment_cycles
    )
    bridge = cpu.seconds_for(
        SIZE * kernel.bridge_cycles_per_byte
        + segments * kernel.bridge_per_segment_cycles
    ) * 2  # both endpoints sit behind the bridge
    recv = cpu.seconds_for(
        kernel.syscall_cycles + SIZE * kernel.recv_cycles_per_byte
        + segments * kernel.per_segment_cycles
    )
    wakeups = 2 * kernel.stack_latency_s
    return {
        "syscall+stack tx": send,
        "bridge hops": bridge,
        "softirq+copy rx": recv,
        "sched wakeups": wakeups,
    }


def _components_rdma(spec) -> dict:
    nic = spec.nic
    cpu = spec.cpu
    wire = nic.rdma_wire_bytes(SIZE) / nic.goodput_bytes
    dma_time = 2 * (nic.dma_latency_s + SIZE / spec.memory.bus_bandwidth_bytes)
    return {
        "post WR (cpu)": cpu.seconds_for(nic.rdma_post_cycles),
        "NIC engine x2": 2 * nic.rdma_engine_op_seconds,
        "DMA x2": dma_time,
        "wire (loopback)": wire,
        "poll CQ (cpu)": cpu.seconds_for(nic.rdma_poll_cycles),
    }


def _components_shm(spec) -> dict:
    shm = spec.shm
    cpu = spec.cpu
    copy = max(
        SIZE * spec.memory.copy_cycles_per_byte / spec.cpu.frequency_hz,
        SIZE / spec.memory.bus_bandwidth_bytes,
    )
    return {
        "ring bookkeeping": cpu.seconds_for(2 * shm.per_message_cycles),
        "memcpy into ring": copy,
        "notify (futex)": shm.notify_latency_s
        + cpu.seconds_for(shm.notify_cycles),
    }


def _measured(kind: str) -> float:
    env, cluster, network = make_testbed(hosts=1)
    a = cluster.submit(ContainerSpec("a", pinned_host="host0"))
    b = cluster.submit(ContainerSpec("b", pinned_host="host0"))
    channel = {
        "kernel": lambda: BridgeModeNetwork(env).connect(a, b),
        "rdma": lambda: RawRdmaNetwork().connect(a, b),
        "shm": lambda: ShmIpcNetwork().connect(a, b),
    }[kind]()
    return pingpong(env, channel, rounds=50,
                    message_bytes=SIZE).mean_us() / 1e6


def test_latency_component_breakdown(benchmark):
    spec = PAPER_TESTBED
    breakdowns = {
        "kernel": _components_kernel(spec),
        "rdma": _components_rdma(spec),
        "shm": _components_shm(spec),
    }
    measured = {}

    def run():
        for kind in breakdowns:
            measured[kind] = _measured(kind)
        return measured

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for kind, parts in breakdowns.items():
        total_model = sum(parts.values())
        rows.append([
            kind,
            *(f"{name}:{value * 1e6:.2f}" for name, value in parts.items()),
        ])
        rows.append([
            f"  ({kind})", f"model-sum {total_model * 1e6:.2f} us",
            f"measured {measured[kind] * 1e6:.2f} us", "", "",
        ])
    record(
        "E3b", f"Figure 3 — latency components at {SIZE} B (us per part)",
        fmt_table(["transport", "c1", "c2", "c3", "c4", "c5"],
                  [r + [""] * (6 - len(r)) for r in rows]),
        "components computed from specs must sum to the simulated "
        "end-to-end latency — the model is internally consistent",
    )

    # The validation: model sum ≈ measured one-way latency.
    for kind, parts in breakdowns.items():
        assert sum(parts.values()) == pytest.approx(
            measured[kind], rel=0.15
        ), kind
    # And the paper's point: the kernel's biggest component is CPU work
    # (syscalls/copies), not the wire.
    kernel = breakdowns["kernel"]
    assert kernel["syscall+stack tx"] + kernel["softirq+copy rx"] > (
        kernel["sched wakeups"]
    )

"""E21 (extension) — noisy neighbour containment via library rate limits.

Paper §1: kernel bypass means "kernel cannot provide protections like
rate limiting".  FreeFlow restores the knob in the library layer.  This
bench shows the problem and the fix: a victim pair and a noisy tenant's
4 pairs share one host's memory bus and cores; unthrottled, the noisy
tenant squeezes the victim; with a 10 Gb/s tenant cap, the victim gets
its bandwidth back while the noisy tenant's aggregate holds exactly at
its cap.
"""

import pytest

from repro import ContainerSpec
from repro.core import FreeFlowNetwork
from repro.hardware import gbps
from repro.metrics import run_stream

from common import fmt_table, make_testbed, record

NOISY_PAIRS = 4
CAP_GBPS = 10


def _run(capped: bool):
    env, cluster, __ = make_testbed(hosts=1)
    limits = {"noisy": gbps(CAP_GBPS)} if capped else {}
    network = FreeFlowNetwork(cluster, tenant_rate_limits=limits)
    host = cluster.host("host0")

    def connect(src, dst):
        def go():
            connection = yield from network.connect_containers(src, dst)
            return connection

        return env.run(until=env.process(go()))

    victim_a = cluster.submit(ContainerSpec("va", tenant="victim",
                                            pinned_host="host0"))
    victim_b = cluster.submit(ContainerSpec("vb", tenant="victim",
                                            pinned_host="host0"))
    network.attach(victim_a)
    network.attach(victim_b)
    victim = connect("va", "vb")

    noisy_pairs = []
    for i in range(NOISY_PAIRS):
        a = cluster.submit(ContainerSpec(f"na{i}", tenant="noisy",
                                         pinned_host="host0"))
        b = cluster.submit(ContainerSpec(f"nb{i}", tenant="noisy",
                                         pinned_host="host0"))
        network.attach(a)
        network.attach(b)
        noisy_pairs.append(connect(f"na{i}", f"nb{i}"))

    pairs = [(victim.a, victim.b)] + [(c.a, c.b) for c in noisy_pairs]
    result = run_stream(env, pairs, duration_s=0.03, hosts=[host])
    victim_gbps = result.pair_gbps(0)
    noisy_gbps = sum(result.pair_gbps(i) for i in range(1, len(pairs)))
    return victim_gbps, noisy_gbps


def test_noisy_neighbor(benchmark):
    rows = []
    data = {}

    def run():
        for capped in (False, True):
            victim, noisy = _run(capped)
            data[capped] = (victim, noisy)
            rows.append([
                f"{CAP_GBPS}G cap" if capped else "no cap", victim, noisy,
            ])
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)

    record(
        "E21", "extension — noisy neighbour: victim vs 4-pair noisy "
               "tenant, one host",
        fmt_table(
            ["policy", "victim Gb/s", "noisy aggregate Gb/s"],
            rows,
        ),
        "without the cap the noisy tenant's copy loops crowd the "
        "victim's cores; the library-level token bucket caps the tenant "
        "and returns the bandwidth",
    )

    uncapped_victim, uncapped_noisy = data[False]
    capped_victim, capped_noisy = data[True]
    # The cap binds the noisy tenant tightly...
    assert capped_noisy == pytest.approx(CAP_GBPS, rel=0.15)
    assert capped_noisy < uncapped_noisy / 3
    # ...and the victim recovers substantially.
    assert capped_victim > uncapped_victim * 1.2

"""E22 (extension) — rack locality on an oversubscribed fabric.

The paper's fabric assumption ("managed network fabrics") hides a
datacenter reality: the uplinks toward the core are usually
oversubscribed.  Two fabrics make the point:

* **flat** (the pre-§16 baseline): a single switch with racks and a
  4:1 oversubscribed 20 Gb/s core pipe — same host > same rack >
  cross rack.
* **fat-tree** (§16): a k=4 multi-path tree with ``core_rate_scale``
  0.25 (10 Gb/s agg-core links, 4:1 oversubscribed).  The locality
  ladder gains a rung — same host > same edge ≈ same pod > cross pod —
  because the tree is non-blocking *below* the core: only traffic that
  must climb to a core switch pays the skinny uplinks, and ECMP/flowlet
  routing spreads it over the four equal-cost core paths without ever
  reordering a flowlet.

So placement has tiers of leverage beyond co-location: shared memory on
one host, full NIC rate under an edge or inside a pod, the shared core
between pods.
"""

import pytest

from repro import ContainerSpec
from repro.cluster import ClusterOrchestrator
from repro.core import FreeFlowNetwork
from repro.hardware import Fabric, FatTreeFabric, Host
from repro.metrics import run_stream
from repro.sim import Environment

from common import fmt_table, record

CORE_GBPS = 20
#: Fat-tree agg-core capacity as a fraction of the edge links (4:1).
CORE_RATE_SCALE = 0.25


def _build_two_racks():
    env = Environment()
    fabric = Fabric(env, core_rate_bps=CORE_GBPS * 1e9)
    cluster = ClusterOrchestrator(env)
    hosts = []
    for index in range(4):
        host = Host(env, f"host{index}", fabric=fabric)
        fabric.assign_rack(host.nic, "rack-a" if index < 2 else "rack-b")
        cluster.add_host(host)
        hosts.append(host)
    network = FreeFlowNetwork(cluster)
    return env, cluster, network, hosts, fabric


def _build_fat_tree():
    """8 hosts on a k=4 tree: ports 0-3 are pod 0, ports 4-7 pod 1."""
    env = Environment()
    fabric = FatTreeFabric(env, k=4, core_rate_scale=CORE_RATE_SCALE)
    cluster = ClusterOrchestrator(env)
    hosts = []
    for index in range(8):
        host = Host(env, f"host{index}", fabric=fabric)
        cluster.add_host(host)
        hosts.append(host)
    network = FreeFlowNetwork(cluster)
    return env, cluster, network, hosts, fabric


#: placement -> [(src host, dst host)] per fabric flavour.  Each pair
#: gets its own sender NIC so the fabric, not a shared uplink, is what
#: differentiates the tiers.
FLAT_PLACEMENTS = {
    "same host": [("host0", "host0"), ("host0", "host0")],
    "same rack": [("host0", "host1"), ("host0", "host1")],
    "cross rack": [("host0", "host2"), ("host1", "host3")],
}
TREE_PLACEMENTS = {
    "same host": [("host0", "host0"), ("host0", "host0")],
    "same edge": [("host0", "host1"), ("host1", "host0")],
    "same pod": [("host0", "host2"), ("host1", "host3")],
    "cross pod": [("host0", "host4"), ("host1", "host5")],
}


def _measure(flavour: str, placement: str):
    if flavour == "flat":
        env, cluster, network, hosts, fabric = _build_two_racks()
        pairs = FLAT_PLACEMENTS[placement]
    else:
        env, cluster, network, hosts, fabric = _build_fat_tree()
        pairs = TREE_PLACEMENTS[placement]
    endpoint_pairs = []
    for i, (loc_a, loc_b) in enumerate(pairs):
        a = cluster.submit(ContainerSpec(f"a{i}", pinned_host=loc_a))
        b = cluster.submit(ContainerSpec(f"b{i}", pinned_host=loc_b))
        network.attach(a)
        network.attach(b)

        def go(i=i):
            connection = yield from network.connect_containers(
                f"a{i}", f"b{i}"
            )
            return connection

        connection = env.run(until=env.process(go()))
        endpoint_pairs.append((connection.a, connection.b))
    result = run_stream(env, endpoint_pairs, duration_s=0.02, hosts=hosts)
    reorders = fabric.reorders() if flavour == "fat-tree" else 0
    return result.gbps, reorders


def test_rack_locality(benchmark):
    rows = []
    data = {}

    def run():
        for flavour, placements in (("flat", FLAT_PLACEMENTS),
                                    ("fat-tree", TREE_PLACEMENTS)):
            for placement in placements:
                gbps, reorders = _measure(flavour, placement)
                data[(flavour, placement)] = (gbps, reorders)
                rows.append([f"{flavour}: {placement}", gbps])
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)

    record(
        "E22", "extension — 2 FreeFlow pairs per placement tier "
               f"(flat {CORE_GBPS} Gb/s core vs fat-tree k=4 at "
               f"{CORE_RATE_SCALE:g}x core rate)",
        fmt_table(["placement", "aggregate Gb/s"], rows),
        "placement leverage has tiers: shared memory on one host, full "
        "NIC rate under an edge or inside a pod, the shared "
        "oversubscribed core between racks/pods",
    )

    flat = {p: data[("flat", p)][0] for p in FLAT_PLACEMENTS}
    tree = {p: data[("fat-tree", p)][0] for p in TREE_PLACEMENTS}

    # -- flat baseline: the original E22 shape, unchanged.
    assert flat["same host"] > flat["same rack"] > flat["cross rack"]
    assert flat["cross rack"] == pytest.approx(CORE_GBPS, rel=0.12)
    assert flat["same rack"] == pytest.approx(39, rel=0.1)

    # -- fat-tree: one more rung on the ladder.
    assert tree["same host"] > tree["same edge"]
    # Non-blocking below the core: an edge hop costs no bandwidth vs
    # staying under one edge switch.
    assert tree["same pod"] == pytest.approx(tree["same edge"], rel=0.1)
    # Only pod-crossing traffic pays the 4:1 oversubscription...
    assert tree["cross pod"] < 0.6 * tree["same pod"]
    # ...but flowlet re-hashing spreads the two flows over all four
    # skinny core paths, beating the 2 x 10 Gb/s static-ECMP ceiling
    # while staying under the core's total capacity.
    assert tree["cross pod"] > 2 * CORE_RATE_SCALE * 40
    assert tree["cross pod"] <= 4 * CORE_RATE_SCALE * 40 * 1.05
    # Multi-path routing never reordered a flowlet.
    assert all(r == 0 for _, r in data.values())

"""E22 (extension) — rack locality on an oversubscribed fabric.

The paper's fabric assumption ("managed network fabrics") hides a
datacenter reality: the rack uplinks are usually oversubscribed.  On a
two-tier fabric (4 hosts, 2 racks, 4:1 oversubscribed 20 Gb/s core),
cross-rack FreeFlow/RDMA pairs share the skinny core while intra-rack
pairs keep the full 40 Gb/s NIC rate — so placement has a second tier of
leverage beyond co-location: same host > same rack > cross rack.
"""

import pytest

from repro import ContainerSpec
from repro.cluster import ClusterOrchestrator
from repro.core import FreeFlowNetwork
from repro.hardware import Fabric, Host
from repro.metrics import run_stream
from repro.sim import Environment

from common import fmt_table, record

CORE_GBPS = 20


def _build_two_racks():
    env = Environment()
    fabric = Fabric(env, core_rate_bps=CORE_GBPS * 1e9)
    cluster = ClusterOrchestrator(env)
    hosts = []
    for index in range(4):
        host = Host(env, f"host{index}", fabric=fabric)
        fabric.assign_rack(host.nic, "rack-a" if index < 2 else "rack-b")
        cluster.add_host(host)
        hosts.append(host)
    network = FreeFlowNetwork(cluster)
    return env, cluster, network, hosts


def _measure(placement: str, pairs: int = 2):
    env, cluster, network, hosts = _build_two_racks()
    endpoint_pairs = []
    for i in range(pairs):
        if placement == "same host":
            loc_a = loc_b = "host0"
        elif placement == "same rack":
            loc_a, loc_b = "host0", "host1"
        else:  # cross rack
            loc_a, loc_b = f"host{i % 2}", f"host{2 + i % 2}"
        a = cluster.submit(ContainerSpec(f"a{i}", pinned_host=loc_a))
        b = cluster.submit(ContainerSpec(f"b{i}", pinned_host=loc_b))
        network.attach(a)
        network.attach(b)

        def go(i=i):
            connection = yield from network.connect_containers(
                f"a{i}", f"b{i}"
            )
            return connection

        connection = env.run(until=env.process(go()))
        endpoint_pairs.append((connection.a, connection.b))
    result = run_stream(env, endpoint_pairs, duration_s=0.02, hosts=hosts)
    return result.gbps


def test_rack_locality(benchmark):
    rows = []
    data = {}

    def run():
        for placement in ("same host", "same rack", "cross rack"):
            gbps = _measure(placement)
            data[placement] = gbps
            rows.append([placement, gbps])
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)

    record(
        "E22", "extension — 2 FreeFlow pairs on a 2-rack fabric "
               f"({CORE_GBPS} Gb/s oversubscribed core)",
        fmt_table(["placement", "aggregate Gb/s"], rows),
        "placement leverage has tiers: shared memory on one host, full "
        "NIC rate inside a rack, the shared core across racks",
    )

    assert data["same host"] > data["same rack"] > data["cross rack"]
    # Cross-rack pairs share the 20G core.
    assert data["cross rack"] == pytest.approx(CORE_GBPS, rel=0.12)
    # Same-rack pairs each get their own 40G path (2 pairs here, but the
    # two senders share host0's uplink, so ~39 Gb/s aggregate).
    assert data["same rack"] == pytest.approx(39, rel=0.1)
"""E10 — the FreeFlow prototype vs every baseline (the paper's promise).

"Our ultimate vision is to develop a container networking solution which
provides high throughput, low latency and negligible overhead and fully
preserves container portability."  Concretely: FreeFlow should match
bare shared-memory IPC for co-located pairs and raw RDMA for cross-host
pairs, while keeping overlay-style location-independent IPs — and beat
host/bridge/overlay everywhere on throughput, latency and CPU.
"""

import pytest

from repro import ContainerSpec
from repro.baselines import (
    BridgeModeNetwork,
    HostModeNetwork,
    OverlayModeNetwork,
    RawRdmaNetwork,
    ShmIpcNetwork,
)

from common import (
    deploy_pair,
    fmt_table,
    freeflow_connect,
    pingpong,
    record,
    stream,
    make_testbed,
)


def _scenario(kind: str, intra: bool):
    env, cluster, network = make_testbed(hosts=2)
    hosts = [cluster.host("host0"), cluster.host("host1")]
    a, b = deploy_pair(
        cluster, network, "host0", "host0" if intra else "host1"
    )
    if kind == "freeflow":
        channel = freeflow_connect(env, network, "a", "b")
    elif kind == "overlay":
        channel = OverlayModeNetwork(env).connect(a, b)
    elif kind == "bridge":
        channel = BridgeModeNetwork(env).connect(a, b)
    elif kind == "host":
        channel = HostModeNetwork(env).connect(a, b, 1, 2)
    elif kind == "rdma":
        channel = RawRdmaNetwork().connect(a, b)
    else:
        channel = ShmIpcNetwork().connect(a, b)
    result = stream(env, channel, hosts, duration_s=0.04)
    latency = pingpong(env, channel)
    return result.gbps, latency.mean_us(), result.total_cpu_percent


def test_freeflow_vs_baselines(benchmark):
    intra, inter = {}, {}

    def run():
        for kind in ("freeflow", "shm-ipc", "rdma", "host", "bridge",
                     "overlay"):
            key = "shm" if kind == "shm-ipc" else kind
            intra[kind] = _scenario(key, intra=True)
            if kind != "shm-ipc":
                inter[kind] = _scenario(key, intra=False)
        return intra, inter

    benchmark.pedantic(run, rounds=1, iterations=1)

    record(
        "E10a", "FreeFlow vs baselines — intra-host pair",
        fmt_table(
            ["system", "Gb/s", "latency us", "CPU %"],
            [[k, *v] for k, v in intra.items()],
        ),
        "FreeFlow rides shared memory: matches shm-IPC, crushes the "
        "kernel modes, keeps overlay addressing",
    )
    record(
        "E10b", "FreeFlow vs baselines — inter-host pair",
        fmt_table(
            ["system", "Gb/s", "latency us", "CPU %"],
            [[k, *v] for k, v in inter.items()],
        ),
        "FreeFlow rides RDMA between its agents: link-rate throughput at "
        "a fraction of kernel TCP's CPU",
    )

    # Intra-host: FreeFlow ≈ bare shm IPC, far above every kernel mode.
    assert intra["freeflow"][0] == pytest.approx(intra["shm-ipc"][0],
                                                 rel=0.1)
    assert intra["freeflow"][0] > 1.8 * intra["host"][0]
    assert intra["freeflow"][1] < intra["bridge"][1] / 3
    # Inter-host: FreeFlow ≈ raw RDMA throughput at low CPU.
    assert inter["freeflow"][0] == pytest.approx(inter["rdma"][0], rel=0.1)
    assert inter["freeflow"][2] < inter["host"][2] / 2
    # And it beats the portable alternative (overlay) everywhere.
    assert inter["freeflow"][0] > 3 * inter["overlay"][0]
    assert inter["freeflow"][1] < inter["overlay"][1]

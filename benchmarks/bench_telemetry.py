#!/usr/bin/env python
"""Telemetry overhead benchmark: what does tracing cost the simulator?

The telemetry subsystem (``repro.telemetry``) instruments every hot
send/recv path with hooks that must be near-free when disabled and
cheap when sampling.  This harness quantifies both claims on the same
workloads ``bench_engine.py`` tracks:

* ``engine_off``     — timeout-churn events/sec with telemetry fully
  disabled (the default state).  Compared against the engine floor in
  ``--smoke`` mode: the hooks' ``ACTIVE is None`` guards must not
  regress the raw engine (<5% budget, enforced via the same floor CI
  uses for ``bench_engine.py``).
* ``shm_off``        — shm-transport messages/sec, telemetry disabled.
* ``shm_sample_0``   — telemetry *enabled* at 0% sampling: every
  message pays the guard + one RNG-free shortcut, no trace allocated.
* ``shm_sample_1``   — 1% sampling: the recommended production setting.
* ``shm_sample_100`` — 100% sampling: every message fully traced.

Each sampled row reports ``overhead_pct`` relative to ``shm_off``.
Results merge into ``BENCH_telemetry.json`` keyed by ``--label``::

    PYTHONPATH=src python benchmarks/bench_telemetry.py --label current
    PYTHONPATH=src python benchmarks/bench_telemetry.py --smoke
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path
from time import perf_counter

from repro import telemetry
from repro.hardware import Fabric, Host
from repro.sim import Environment
from repro.transports import ShmChannel

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_telemetry.json"


def bench_timeout_churn(n_procs: int, iters: int) -> dict:
    """Same hot loop as bench_engine.py: pure schedule/step throughput."""
    env = Environment()

    def churner():
        for _ in range(iters):
            yield env.timeout(1e-6)

    for _ in range(n_procs):
        env.process(churner())
    events = n_procs * iters
    start = perf_counter()
    env.run()
    wall = perf_counter() - start
    return {
        "events": events,
        "wall_s": wall,
        "events_per_sec": events / wall,
    }


def bench_shm_messages(n_msgs: int, msg_bytes: int = 4096) -> dict:
    """End-to-end shm messages/sec — the most hook-dense data path."""
    env = Environment()
    host = Host(env, "h0", fabric=Fabric(env))
    channel = ShmChannel(host)

    def sender(end):
        for _ in range(n_msgs):
            yield from end.send(msg_bytes)

    def receiver(end):
        for _ in range(n_msgs):
            yield from end.recv()

    env.process(sender(channel.a))
    done = env.process(receiver(channel.b))
    start = perf_counter()
    env.run(until=done)
    wall = perf_counter() - start
    return {
        "messages": n_msgs,
        "message_bytes": msg_bytes,
        "wall_s": wall,
        "messages_per_sec": n_msgs / wall,
    }


def _best_of(repeats: int, fn, rate_key: str) -> dict:
    best = None
    for _ in range(repeats):
        result = fn()
        if best is None or result[rate_key] > best[rate_key]:
            best = result
    best["repeats"] = repeats
    return best


def run_suite(smoke: bool, repeats: int = 3) -> dict:
    scale = 0.1 if smoke else 1.0
    n_msgs = max(2_000, int(20_000 * scale))
    results: dict[str, dict] = {}

    # Baselines: telemetry fully disabled (ACTIVE is None everywhere).
    results["engine_off"] = _best_of(
        repeats,
        lambda: bench_timeout_churn(n_procs=64, iters=max(200, int(3000 * scale))),
        rate_key="events_per_sec",
    )
    results["shm_off"] = _best_of(
        repeats,
        lambda: bench_shm_messages(n_msgs),
        rate_key="messages_per_sec",
    )

    # Sampled rows: telemetry enabled at increasing trace rates.
    for pct in (0, 1, 100):
        def traced(rate=pct / 100.0):
            with telemetry.session(sample_rate=rate) as handle:
                result = bench_shm_messages(n_msgs)
            result["traces"] = len(handle.tracer)
            return result

        row = _best_of(repeats, traced, rate_key="messages_per_sec")
        row["sample_rate"] = pct / 100.0
        baseline = results["shm_off"]["messages_per_sec"]
        row["overhead_pct"] = 100.0 * (
            1.0 - row["messages_per_sec"] / baseline
        )
        results[f"shm_sample_{pct}"] = row

    return results


def merge_and_write(path: Path, label: str, record: dict) -> None:
    data = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except (ValueError, OSError):
            data = {}
    data[label] = record
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--label",
        default="current",
        help="key under which results are stored in the JSON file",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help="JSON file to merge results into",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced workload + assert the disabled-telemetry engine "
        "rate stays above --floor (CI trip wire)",
    )
    parser.add_argument(
        "--floor",
        type=float,
        default=100_000.0,
        help="minimum acceptable events/sec with telemetry disabled "
        "(same floor bench_engine.py enforces)",
    )
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="print results without touching the JSON file",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="best-of-N repeats per configuration",
    )
    args = parser.parse_args(argv)

    results = run_suite(smoke=args.smoke, repeats=args.repeats)
    record = {
        "python": platform.python_version(),
        "smoke": args.smoke,
        "benchmarks": results,
    }

    print(f"telemetry benchmark ({'smoke' if args.smoke else 'full'} mode)")
    print(f"  engine (telemetry off) {results['engine_off']['events_per_sec']:>12,.0f} events/s")
    print(f"  shm    (telemetry off) {results['shm_off']['messages_per_sec']:>12,.0f} msgs/s")
    for pct in (0, 1, 100):
        row = results[f"shm_sample_{pct}"]
        print(
            f"  shm    (sampling {pct:>3d}%) {row['messages_per_sec']:>12,.0f} msgs/s"
            f"  ({row['overhead_pct']:+5.1f}% vs off, {row['traces']} traces)"
        )

    if not args.no_write:
        merge_and_write(args.output, args.label, record)
        print(f"  -> merged under {args.label!r} in {args.output}")

    if args.smoke:
        rate = results["engine_off"]["events_per_sec"]
        if rate < args.floor:
            print(
                f"FAIL: engine rate with telemetry disabled {rate:,.0f} "
                f"events/s below floor {args.floor:,.0f}",
                file=sys.stderr,
            )
            return 1
        print(f"  smoke floor ok ({rate:,.0f} >= {args.floor:,.0f} events/s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

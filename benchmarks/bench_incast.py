"""E20 (extension) — incast: N senders converge on one receiver host.

Datacenter apps (the paper's partition/aggregate web tier, allreduce) hit
many-to-one traffic.  This bench drives 1-6 sender hosts at a single
receiver over FreeFlow/RDMA — on the k=4 **fat-tree** fabric (senders
spread across pods, the fan-in crossing real edge/agg/core hops) and on
the legacy flat single-switch fabric (the pre-§16 baseline) — plus
host-mode kernel TCP.  All three converge to the receiver's 40 Gb/s
link: the multi-path tree is non-blocking for many-to-one, so the wall
is the receiver NIC, exactly as on the ideal switch.  The *price* still
differs by ~300×: the kernel burns a full receiver core to sustain it,
while the RDMA fan-in leaves the receiver CPU essentially idle.  Under
incast, FreeFlow's saving is pure CPU headroom for the application.
"""

import pytest

from repro import ContainerSpec
from repro.baselines import HostModeNetwork

from common import fmt_table, freeflow_connect, make_testbed, record, stream

SENDERS = (1, 2, 4, 6)


def _incast(kind: str, senders: int, fat_tree: bool = False):
    kwargs = {"fat_tree_k": 4} if fat_tree else {}
    env, cluster, network = make_testbed(hosts=senders + 1, **kwargs)
    hosts = list(cluster.hosts)
    pairs = []
    for i in range(senders):
        a = cluster.submit(
            ContainerSpec(f"src{i}", pinned_host=f"host{i + 1}")
        )
        b = cluster.submit(ContainerSpec(f"dst{i}", pinned_host="host0"))
        network.attach(a)
        network.attach(b)
        if kind == "freeflow":
            channel = freeflow_connect(env, network, f"src{i}", f"dst{i}")
        else:
            channel = HostModeNetwork(env).connect(a, b, 1 + i, 100 + i)
        pairs.append((channel.a, channel.b))
    result = stream(env, None, hosts, duration_s=0.02, pairs=pairs)
    reorders = (cluster.host("host0").nic.fabric.reorders()
                if fat_tree else 0)
    return result.gbps, result.cpu_percent["host0"], reorders


def test_incast(benchmark):
    rows = []
    data = {}

    def run():
        for senders in SENDERS:
            tree_bw, tree_cpu, reorders = _incast(
                "freeflow", senders, fat_tree=True
            )
            flat_bw, flat_cpu, _ = _incast("freeflow", senders)
            tcp_bw, tcp_cpu, _ = _incast("tcp", senders)
            data[senders] = (tree_bw, tree_cpu, flat_bw, tcp_bw, tcp_cpu,
                             reorders)
            rows.append([senders, tree_bw, flat_bw, tree_cpu,
                         tcp_bw, tcp_cpu])
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)

    record(
        "E20", "extension — incast: N sender hosts -> 1 receiver host "
               "(fat-tree k=4 vs flat switch)",
        fmt_table(
            ["senders", "fat-tree ff Gb/s", "flat ff Gb/s",
             "rx-host CPU%", "host-tcp Gb/s", "rx-host CPU%"],
            rows,
        ),
        "the multi-path tree is non-blocking for many-to-one, so both "
        "fabrics hit the receiver's 40G link; the kernel still pays a "
        "full receiver core for it while RDMA's receiver CPU stays idle "
        "— FreeFlow's incast saving is CPU headroom, not bandwidth",
    )

    # All fan-ins converge to the receiver link rate...
    assert data[4][0] == pytest.approx(39, rel=0.08)   # fat-tree
    assert data[6][0] == pytest.approx(39, rel=0.08)
    assert data[4][2] == pytest.approx(39, rel=0.08)   # flat baseline
    assert data[6][2] == pytest.approx(39, rel=0.08)
    assert data[6][3] == pytest.approx(38, rel=0.08)   # kernel TCP
    # ...the tree adds multi-path routing without ever reordering...
    assert all(entry[5] == 0 for entry in data.values())
    # ...but the CPU price differs by orders of magnitude.
    assert data[6][1] < 5            # RDMA receiver: essentially idle
    assert data[6][4] > 90           # kernel receiver: ~one full core
    assert data[6][4] > 50 * data[6][1]

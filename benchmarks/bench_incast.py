"""E20 (extension) — incast: N senders converge on one receiver host.

Datacenter apps (the paper's partition/aggregate web tier, allreduce) hit
many-to-one traffic.  This bench drives 1-6 sender hosts at a single
receiver over FreeFlow/RDMA and over host-mode kernel TCP.  Both fan-ins
converge to the receiver's 40 Gb/s link — the wall is the same — but the
*price* differs by ~300×: the kernel burns a full receiver core (plus a
sender core per host) to sustain it, while the RDMA fan-in does it with
the receiver CPU essentially idle.  Under incast, FreeFlow's saving is
pure CPU headroom for the application.
"""

import pytest

from repro import ContainerSpec
from repro.baselines import HostModeNetwork

from common import fmt_table, freeflow_connect, make_testbed, record, stream

SENDERS = (1, 2, 4, 6)


def _incast(kind: str, senders: int):
    env, cluster, network = make_testbed(hosts=senders + 1)
    receiver_host = cluster.host("host0")
    hosts = list(cluster.hosts)
    pairs = []
    for i in range(senders):
        a = cluster.submit(
            ContainerSpec(f"src{i}", pinned_host=f"host{i + 1}")
        )
        b = cluster.submit(ContainerSpec(f"dst{i}", pinned_host="host0"))
        network.attach(a)
        network.attach(b)
        if kind == "freeflow":
            channel = freeflow_connect(env, network, f"src{i}", f"dst{i}")
        else:
            channel = HostModeNetwork(env).connect(a, b, 1 + i, 100 + i)
        pairs.append((channel.a, channel.b))
    result = stream(env, None, hosts, duration_s=0.02, pairs=pairs)
    return result.gbps, result.cpu_percent["host0"]


def test_incast(benchmark):
    rows = []
    data = {}

    def run():
        for senders in SENDERS:
            ff_bw, ff_cpu = _incast("freeflow", senders)
            tcp_bw, tcp_cpu = _incast("tcp", senders)
            data[senders] = (ff_bw, ff_cpu, tcp_bw, tcp_cpu)
            rows.append([senders, ff_bw, ff_cpu, tcp_bw, tcp_cpu])
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)

    record(
        "E20", "extension — incast: N sender hosts -> 1 receiver host",
        fmt_table(
            ["senders", "freeflow Gb/s", "rx-host CPU%",
             "host-tcp Gb/s", "rx-host CPU%"],
            rows,
        ),
        "both fan-ins hit the receiver's 40G link, but the kernel pays a "
        "full receiver core for it while RDMA's receiver CPU stays idle "
        "— FreeFlow's incast saving is CPU headroom, not bandwidth",
    )

    # Both converge to the receiver link rate...
    assert data[4][0] == pytest.approx(39, rel=0.08)
    assert data[6][0] == pytest.approx(39, rel=0.08)
    assert data[6][2] == pytest.approx(38, rel=0.08)
    # ...but the CPU price differs by orders of magnitude.
    assert data[6][1] < 5            # RDMA receiver: essentially idle
    assert data[6][3] > 90           # kernel receiver: ~one full core
    assert data[6][3] > 50 * data[6][1]

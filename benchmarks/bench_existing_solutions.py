"""E8 — §2.2: existing container-networking solutions, measured.

"Docker-host is in host mode; Docker0 is in bridge mode; Weave is in
overlay mode" (the commented eval_exist_* figures).  Conclusions the
paper draws, which must hold here:

* intra-host throughput of every existing solution is < 40 Gb/s;
* host mode is close to plain processes (kernel loopback);
* all of them put a heavy load on the CPU — CPU is the bottleneck.
"""

import pytest

from repro import ContainerSpec
from repro.baselines import (
    BridgeModeNetwork,
    HostModeNetwork,
    OverlayModeNetwork,
)

from common import fmt_table, pingpong, record, stream, make_testbed


def _solution(kind: str):
    env, cluster, network = make_testbed(hosts=1)
    host = cluster.host("host0")
    a = cluster.submit(ContainerSpec("a", pinned_host="host0"))
    b = cluster.submit(ContainerSpec("b", pinned_host="host0"))
    channel = {
        "docker-host": lambda: HostModeNetwork(env).connect(a, b, 1, 2),
        "docker0 (bridge)": lambda: BridgeModeNetwork(env).connect(a, b),
        "weave (overlay)": lambda: OverlayModeNetwork(env).connect(a, b),
    }[kind]()
    result = stream(env, channel, [host], duration_s=0.04)
    latency = pingpong(env, channel)
    return result.gbps, latency.mean_us(), result.total_cpu_percent


def test_existing_solutions(benchmark):
    rows = {}

    def run():
        for kind in ("docker-host", "docker0 (bridge)", "weave (overlay)"):
            rows[kind] = _solution(kind)
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)

    record(
        "E8", "eval_exist_* — existing solutions: bw / latency / cpu",
        fmt_table(
            ["solution", "Gb/s", "latency us", "CPU %"],
            [[k, *v] for k, v in rows.items()],
        ),
        "paper conclusions: all < 40 Gb/s intra-host; heavy CPU load; "
        "CPU is the throughput bottleneck",
    )

    for kind, (gbps, __, cpu) in rows.items():
        assert gbps < 40, f"{kind} must stay below 40 Gb/s intra-host"
        assert cpu > 150, f"{kind} must be CPU-hungry"
    assert rows["docker-host"][0] > rows["docker0 (bridge)"][0]
    assert rows["docker0 (bridge)"][0] > rows["weave (overlay)"][0]

"""E14 — ablation: zero-copy agent hand-off vs a copying router.

Paper §3.2, challenge 2: "overlay routers should connect the
shared-memory channel with local containers and the kernel bypassing
channel between physical NICs to avoid overhead caused by memory
copying."  This ablation runs the same inter-host FreeFlow path with the
zero-copy hand-off on and off, at 1 and 4 concurrent pairs: the copying
router burns extra cores and memory-bus bandwidth, and under multi-pair
load that CPU pressure costs real throughput.
"""

import pytest

from repro import ContainerSpec
from repro.core import FreeFlowNetwork

from common import fmt_table, record, stream, make_testbed


def _run(zero_copy: bool, pairs: int):
    env, cluster, __ = make_testbed(hosts=2)
    network = FreeFlowNetwork(cluster, zero_copy=zero_copy)
    hosts = [cluster.host("host0"), cluster.host("host1")]
    connections = []

    def wire():
        for i in range(pairs):
            a = cluster.submit(ContainerSpec(f"a{i}", pinned_host="host0"))
            b = cluster.submit(ContainerSpec(f"b{i}", pinned_host="host1"))
            network.attach(a)
            network.attach(b)
            connection = yield from network.connect_containers(
                f"a{i}", f"b{i}"
            )
            connections.append(connection)

    env.run(until=env.process(wire()))
    result = stream(
        env, None, hosts, duration_s=0.03,
        pairs=[(c.a, c.b) for c in connections],
    )
    copies = sum(
        agent.stats.relay_copies for agent in network._agents.values()
    )
    membus = max(result.membus_util.values())
    return result.gbps, result.total_cpu_percent, copies, membus


def test_zero_copy_handoff(benchmark):
    rows = []

    def run():
        for pairs in (1, 4):
            for zero_copy in (True, False):
                gbps, cpu, copies, membus = _run(zero_copy, pairs)
                rows.append([
                    pairs, "zero-copy" if zero_copy else "copying",
                    gbps, cpu, copies, 100 * membus,
                ])
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)

    record(
        "E14", "ablation — agent hand-off: zero-copy vs copying router",
        fmt_table(
            ["pairs", "hand-off", "Gb/s", "CPU %", "agent copies",
             "membus %"],
            rows,
        ),
        "the copying router pays a memcpy per message per side: more "
        "CPU and memory-bus traffic for the same (or worse) throughput",
    )

    one_zero, one_copy, four_zero, four_copy = rows
    assert one_zero[4] == 0 and one_copy[4] > 0
    assert one_copy[3] > one_zero[3] * 1.5        # CPU cost of copies
    assert one_copy[5] > one_zero[5]              # extra membus traffic
    assert four_zero[2] >= four_copy[2] * 0.99    # never slower

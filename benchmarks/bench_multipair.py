"""E5/E6 — §2.4 "Figure 2": scaling with the number of container pairs.

* Figure 2(a): aggregate throughput vs pairs for kernel TCP, RDMA and
  shared memory, with the memory-bus bandwidth as the ceiling line;
* Figure 2(b): host CPU utilisation vs pairs;
* Figure 2(c): NIC processor utilisation vs pairs.

The shapes to reproduce: kernel TCP flattens as soon as cores saturate;
RDMA flattens at the link rate with idle host CPU but a busy NIC; shared
memory scales with cores until the copy cores are exhausted, far above
both, and bounded above by the memory bus.
"""

import pytest

from repro import ContainerSpec
from repro.baselines import BridgeModeNetwork, RawRdmaNetwork, ShmIpcNetwork
from repro.hardware import to_gbps

from common import fmt_table, record, stream, make_testbed

PAIR_COUNTS = (1, 2, 4, 8)


def _run(kind: str, pairs: int):
    env, cluster, network = make_testbed(hosts=1)
    host = cluster.host("host0")
    containers = [
        cluster.submit(ContainerSpec(f"c{i}", pinned_host="host0"))
        for i in range(2 * pairs)
    ]
    channels = []
    for i in range(pairs):
        a, b = containers[2 * i], containers[2 * i + 1]
        if kind == "kernel":
            channels.append(BridgeModeNetwork(env).connect(a, b))
        elif kind == "rdma":
            channels.append(RawRdmaNetwork().connect(a, b))
        else:
            channels.append(ShmIpcNetwork().connect(a, b))
    result = stream(
        env, None, [host], duration_s=0.03,
        pairs=[(ch.a, ch.b) for ch in channels],
    )
    return {
        "gbps": result.gbps,
        "cpu": result.total_cpu_percent,
        "nic": 100 * max(result.nic_engine_util["host0"],
                         result.link_util["host0"]),
    }


def test_multipair_scaling(benchmark):
    sweeps = {}

    def run():
        for kind in ("kernel", "rdma", "shm"):
            sweeps[kind] = [_run(kind, n) for n in PAIR_COUNTS]
        return sweeps

    benchmark.pedantic(run, rounds=1, iterations=1)

    membus_line = to_gbps(51.2e9)
    record(
        "E5", "Figure 2(a) — aggregate throughput vs number of pairs",
        fmt_table(
            ["pairs", "kernel Gb/s", "rdma Gb/s", "shm Gb/s",
             "membus ceiling"],
            [[n,
              sweeps["kernel"][i]["gbps"],
              sweeps["rdma"][i]["gbps"],
              sweeps["shm"][i]["gbps"],
              membus_line]
             for i, n in enumerate(PAIR_COUNTS)],
        ),
        "paper sketch: RDMA flat at link rate; kernel flat once cores "
        "saturate; shm scales with copy cores toward the memory-bus line",
    )
    record(
        "E6", "Figure 2(b)/(c) — CPU and NIC utilisation vs pairs",
        fmt_table(
            ["pairs", "kernel CPU%", "rdma CPU%", "shm CPU%",
             "rdma NIC%", "kernel NIC%"],
            [[n,
              sweeps["kernel"][i]["cpu"],
              sweeps["rdma"][i]["cpu"],
              sweeps["shm"][i]["cpu"],
              sweeps["rdma"][i]["nic"],
              sweeps["kernel"][i]["nic"]]
             for i, n in enumerate(PAIR_COUNTS)],
        ),
        "paper sketch: kernel CPU-bound; RDMA host-CPU idle but NIC "
        "saturated; shm burns copy cores",
    )

    kernel, rdma, shm = sweeps["kernel"], sweeps["rdma"], sweeps["shm"]
    # RDMA is link-bound at every pair count.
    for point in rdma:
        assert point["gbps"] == pytest.approx(39, rel=0.07)
    # Kernel TCP stops scaling once ~4 cores are busy.
    assert kernel[-1]["gbps"] < kernel[1]["gbps"] * 1.7
    assert kernel[-1]["cpu"] == pytest.approx(400, rel=0.1)
    # shm scales with pairs until cores run out, always above RDMA.
    assert shm[1]["gbps"] > 1.7 * shm[0]["gbps"] * 0.9
    assert shm[-1]["gbps"] > 3 * rdma[-1]["gbps"]
    # shm stays below the memory-bus ceiling.
    for point in shm:
        assert point["gbps"] <= to_gbps(51.2e9)
    # RDMA leaves the host CPU idle while its NIC saturates.
    assert rdma[-1]["cpu"] < 30
    assert rdma[-1]["nic"] > 90

#!/usr/bin/env python
"""Pure-engine microbenchmarks: how fast does the simulator itself run?

Every FreeFlow experiment funnels through the discrete-event engine in
``repro.sim``, so engine overhead caps how large a cluster and how many
messages we can simulate.  This harness measures that overhead directly
(wall-clock, not simulated time):

* ``timeout_churn``  — events/sec through ``Environment.schedule``/``step``
  (processes re-arming timeouts in a tight loop);
* ``store_handoff``  — producer/consumer pairs/sec through a ``Store``;
* ``tank_churn``     — put/get pairs/sec through a ``Tank`` level;
* ``transport_*``    — end-to-end messages/sec through each data-plane
  mechanism (SHM, RDMA, DPDK, kernel-TCP fallback) with 4 KiB messages;
* ``peak_rss_kb``    — max resident set size of the whole run.

Results are merged into ``BENCH_engine.json`` keyed by ``--label`` so the
perf trajectory is tracked PR over PR::

    PYTHONPATH=src python benchmarks/bench_engine.py --label current
    PYTHONPATH=src python benchmarks/bench_engine.py --smoke

``--smoke`` runs a reduced workload and asserts the timeout-churn rate
stays above ``--floor`` events/sec (used by CI as a perf regression trip
wire).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path
from time import perf_counter

from repro.hardware import Fabric, Host
from repro.sim import Environment, Store, Tank
from repro.transports import (
    DpdkChannel,
    RdmaChannel,
    ShmChannel,
    TcpFallbackChannel,
)

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


# -- engine microbenchmarks ------------------------------------------------


def bench_timeout_churn(n_procs: int, iters: int) -> dict:
    """Processes re-arming timeouts: the purest schedule/step hot loop."""
    env = Environment()

    def churner():
        for _ in range(iters):
            yield env.timeout(1e-6)

    for _ in range(n_procs):
        env.process(churner())
    events = n_procs * iters  # one timeout event per loop iteration
    start = perf_counter()
    env.run()
    wall = perf_counter() - start
    return {
        "events": events,
        "wall_s": wall,
        "events_per_sec": events / wall,
    }


def bench_store_handoff(n_msgs: int) -> dict:
    """One producer, one consumer, unbounded store: handoffs/sec."""
    env = Environment()
    store = Store(env)

    def producer():
        for i in range(n_msgs):
            yield store.put(i)

    def consumer():
        for _ in range(n_msgs):
            yield store.get()

    env.process(producer())
    done = env.process(consumer())
    start = perf_counter()
    env.run(until=done)
    wall = perf_counter() - start
    return {
        "handoffs": n_msgs,
        "wall_s": wall,
        "handoffs_per_sec": n_msgs / wall,
    }


def bench_tank_churn(n_ops: int) -> dict:
    """Alternating put/get on a Tank level: ops/sec (one op = put+get)."""
    env = Environment()
    tank = Tank(env, capacity=100.0)

    def churner():
        for _ in range(n_ops):
            yield tank.put(1.0)
            yield tank.get(1.0)

    done = env.process(churner())
    start = perf_counter()
    env.run(until=done)
    wall = perf_counter() - start
    return {
        "ops": n_ops,
        "wall_s": wall,
        "ops_per_sec": n_ops / wall,
    }


# -- transport message-rate benchmarks -------------------------------------


def _run_channel(env, channel, n_msgs: int, msg_bytes: int) -> dict:
    def sender(end):
        for _ in range(n_msgs):
            yield from end.send(msg_bytes)

    def receiver(end):
        for _ in range(n_msgs):
            yield from end.recv()

    env.process(sender(channel.a))
    done = env.process(receiver(channel.b))
    start = perf_counter()
    env.run(until=done)
    wall = perf_counter() - start
    return {
        "messages": n_msgs,
        "message_bytes": msg_bytes,
        "wall_s": wall,
        "messages_per_sec": n_msgs / wall,
        "sim_s": env.now,
    }


def bench_transports(n_msgs: int, msg_bytes: int = 4096) -> dict:
    results = {}

    env = Environment()
    host = Host(env, "h1", fabric=Fabric(env))
    results["transport_shm"] = _run_channel(
        env, ShmChannel(host), n_msgs, msg_bytes
    )

    env = Environment()
    fabric = Fabric(env)
    h1, h2 = Host(env, "h1", fabric=fabric), Host(env, "h2", fabric=fabric)
    results["transport_rdma"] = _run_channel(
        env, RdmaChannel(h1, h2), n_msgs, msg_bytes
    )

    env = Environment()
    fabric = Fabric(env)
    h1, h2 = Host(env, "h1", fabric=fabric), Host(env, "h2", fabric=fabric)
    results["transport_dpdk"] = _run_channel(
        env, DpdkChannel(h1, h2), n_msgs, msg_bytes
    )

    env = Environment()
    fabric = Fabric(env)
    h1, h2 = Host(env, "h1", fabric=fabric), Host(env, "h2", fabric=fabric)
    results["transport_tcp"] = _run_channel(
        env, TcpFallbackChannel(h1, h2), n_msgs, msg_bytes
    )

    return results


def peak_rss_kb() -> int:
    """Max resident set size so far, in KiB (Linux ru_maxrss unit)."""
    import resource

    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


# -- harness ---------------------------------------------------------------


def _best_of(repeats: int, fn, *args, rate_key: str):
    """Run ``fn`` ``repeats`` times, keep the best run (least noisy)."""
    best = None
    for _ in range(repeats):
        result = fn(*args)
        if best is None or result[rate_key] > best[rate_key]:
            best = result
    best["repeats"] = repeats
    return best


def run_suite(smoke: bool, repeats: int = 3) -> dict:
    scale = 0.1 if smoke else 1.0
    results = {}
    results["timeout_churn"] = _best_of(
        repeats,
        lambda: bench_timeout_churn(n_procs=64, iters=max(200, int(3000 * scale))),
        rate_key="events_per_sec",
    )
    results["store_handoff"] = _best_of(
        repeats,
        lambda: bench_store_handoff(max(5_000, int(100_000 * scale))),
        rate_key="handoffs_per_sec",
    )
    results["tank_churn"] = _best_of(
        repeats,
        lambda: bench_tank_churn(max(5_000, int(60_000 * scale))),
        rate_key="ops_per_sec",
    )
    n_msgs = max(1_000, int(15_000 * scale))
    transports = None
    for _ in range(1 if smoke else 2):
        attempt = bench_transports(n_msgs)
        if transports is None:
            transports = attempt
        else:
            for name, result in attempt.items():
                if result["messages_per_sec"] > transports[name]["messages_per_sec"]:
                    transports[name] = result
    results.update(transports)
    return results


def merge_and_write(path: Path, label: str, record: dict) -> None:
    data = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except (ValueError, OSError):
            data = {}
    data[label] = record
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--label",
        default="current",
        help="key under which results are stored in the JSON file",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help="JSON file to merge results into",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced workload + assert events/sec floor (CI trip wire)",
    )
    parser.add_argument(
        "--floor",
        type=float,
        default=100_000.0,
        help="minimum acceptable timeout-churn events/sec in --smoke mode",
    )
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="print results without touching the JSON file",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="best-of-N repeats for the engine microbenchmarks",
    )
    args = parser.parse_args(argv)

    results = run_suite(smoke=args.smoke, repeats=args.repeats)
    record = {
        "python": platform.python_version(),
        "smoke": args.smoke,
        "benchmarks": results,
        "peak_rss_kb": peak_rss_kb(),
    }

    print(f"engine benchmark ({'smoke' if args.smoke else 'full'} mode)")
    print(f"  timeout churn   {results['timeout_churn']['events_per_sec']:>12,.0f} events/s")
    print(f"  store handoff   {results['store_handoff']['handoffs_per_sec']:>12,.0f} handoffs/s")
    print(f"  tank churn      {results['tank_churn']['ops_per_sec']:>12,.0f} ops/s")
    for name in ("transport_shm", "transport_rdma", "transport_dpdk", "transport_tcp"):
        print(f"  {name:<15} {results[name]['messages_per_sec']:>12,.0f} msgs/s")
    print(f"  peak RSS        {record['peak_rss_kb']:>12,} KiB")

    if not args.no_write:
        merge_and_write(args.output, args.label, record)
        print(f"  -> merged under {args.label!r} in {args.output}")

    if args.smoke:
        rate = results["timeout_churn"]["events_per_sec"]
        if rate < args.floor:
            print(
                f"FAIL: timeout churn {rate:,.0f} events/s below floor "
                f"{args.floor:,.0f}",
                file=sys.stderr,
            )
            return 1
        print(f"  smoke floor ok ({rate:,.0f} >= {args.floor:,.0f} events/s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

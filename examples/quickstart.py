#!/usr/bin/env python3
"""Quickstart: deploy two containers and watch FreeFlow pick mechanisms.

Builds a 2-host cluster (the paper's testbed spec), deploys three
containers, and connects them through FreeFlow.  The co-located pair gets
a shared-memory channel; the cross-host pair gets RDMA — transparently,
the application code is identical.

Run:  python examples/quickstart.py
"""

from repro import ContainerSpec, quickstart_cluster
from repro.hardware import to_gbps
from repro.metrics import run_pingpong, run_stream


def main() -> None:
    env, cluster, network = quickstart_cluster(hosts=2)

    # Deploy a tiny app: web + cache together, db on the other host.
    web = cluster.submit(ContainerSpec("web", pinned_host="host0"))
    cache = cluster.submit(ContainerSpec("cache", pinned_host="host0"))
    db = cluster.submit(ContainerSpec("db", pinned_host="host1"))
    for container in (web, cache, db):
        network.attach(container)
        print(f"attached {container.name:6s} on {container.location:6s} "
              f"ip={container.ip}")

    # Connect pairs; the orchestrator's policy picks the mechanism.
    connections = {}

    def connect_all():
        connections["local"] = yield from network.connect_containers(
            "web", "cache"
        )
        connections["remote"] = yield from network.connect_containers(
            "web", "db"
        )

    setup = env.process(connect_all())
    env.run(until=setup)

    for label, connection in connections.items():
        decision = connection.decision
        print(f"{label:6s} pair -> {decision.mechanism.value.upper():4s} "
              f"({decision.reason})")

    # Measure both pairs: throughput, then latency.
    print("\nstreaming 1 MiB messages for 20 ms of simulated time...")
    for label, connection in connections.items():
        result = run_stream(
            env, [(connection.a, connection.b)],
            duration_s=0.02, hosts=list(cluster.hosts),
        )
        print(f"  {label:6s}: {result.gbps:6.1f} Gb/s   "
              f"CPU {result.total_cpu_percent:5.0f} %")

    print("\nping-pong latency (4 KiB, one way):")
    for label, connection in connections.items():
        result = run_pingpong(env, connection.a, connection.b, rounds=100)
        print(f"  {label:6s}: mean {result.mean_us():6.2f} us   "
              f"p99 {result.p99_us():6.2f} us")


if __name__ == "__main__":
    main()

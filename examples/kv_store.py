#!/usr/bin/env python3
"""Key-value store over FreeFlow sockets (paper §1's motivating workload).

A KV server container serves GET/PUT over the standard socket API; the
socket layer translates every call onto verbs (paper §4.2) and the
orchestrator picks shared memory for the co-located client and RDMA for
the remote one.  The printed latencies show why placement + FreeFlow
matter for the FaRM/Cassandra class of systems the paper cites.

Run:  python examples/kv_store.py
"""

from repro import ContainerSpec, quickstart_cluster
from repro.sim.monitor import Series
from repro.workloads import KeyValueStoreApp


def main() -> None:
    env, cluster, network = quickstart_cluster(hosts=2)

    server = cluster.submit(ContainerSpec("kv-server", pinned_host="host0"))
    local = cluster.submit(ContainerSpec("local-client",
                                         pinned_host="host0"))
    remote = cluster.submit(ContainerSpec("remote-client",
                                          pinned_host="host1"))
    for container in (server, local, remote):
        network.attach(container)

    app = KeyValueStoreApp(network, server, value_bytes=4096, keys=256)
    print(f"kv-server listening at {server.ip}:{app.port} "
          f"(values {app.value_bytes} B, zipf keyspace {app.keys})")

    stats = {}

    def run_client(name, container, operations):
        client = yield from app.client(container)
        print(f"{name}: connected via "
              f"{client.sock.mechanism.value.upper()}")
        # Preload a few keys, then do zipf-popular reads.
        for key in range(10):
            yield from client.put(key, f"value-{key}")
        before = len(app.get_latencies)
        for _ in range(operations):
            yield from client.random_get()
        samples = app.get_latencies.samples[before:]
        series = Series()
        series.extend(samples)
        stats[name] = series
        yield from client.close()

    def driver():
        yield from run_client("local ", local, 200)
        yield from run_client("remote", remote, 200)

    done = env.process(driver())
    env.run(until=done)

    print(f"\nserver handled {app.puts_served} PUTs, "
          f"{app.gets_served} GETs\n")
    print(f"{'client':8s} {'mean GET':>10s} {'p99 GET':>10s}")
    for name, series in stats.items():
        print(f"{name:8s} {series.mean() * 1e6:8.2f} us "
              f"{series.percentile(99) * 1e6:8.2f} us")
    ratio = stats["remote"].mean() / stats["local "].mean()
    print(f"\nremote/local latency ratio: {ratio:.1f}x — co-locating the "
          f"cache tier with its clients keeps GETs on shared memory")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""A containerized web service across FreeFlow (paper §2.1's example).

"A web service can include layers, such as load balancer, web server,
in-memory cache and backend database, and each layer can be a distributed
system with multiple containerized nodes."  This example deploys exactly
that — LB → 2 web servers → cache + database — lets the cluster scheduler
place the tiers, and pushes requests through the whole chain, reporting
end-to-end latency and which mechanism each tier-to-tier hop got.

Run:  python examples/web_service.py
"""

from repro import ContainerSpec, quickstart_cluster
from repro.sim.monitor import Series
from repro.sim.rand import RandomStream

REQUESTS = 300
CACHE_HIT_RATE = 0.8


def main() -> None:
    env, cluster, network = quickstart_cluster(hosts=2)

    # Let the spread scheduler place the tiers (no pinning): this is the
    # realistic case where some hops land together and some apart.
    tiers = {}
    for name in ("lb", "web1", "web2", "cache", "db"):
        container = cluster.submit(ContainerSpec(name, tenant="shop"))
        network.attach(container)
        tiers[name] = container
        print(f"scheduler placed {name:6s} on {container.location}")

    connections = {}

    def wire_up():
        for src, dst in (
            ("lb", "web1"), ("lb", "web2"),
            ("web1", "cache"), ("web2", "cache"),
            ("web1", "db"), ("web2", "db"),
        ):
            connections[(src, dst)] = yield from (
                network.connect_containers(src, dst)
            )

    env.run(until=env.process(wire_up()))
    print()
    for (src, dst), connection in connections.items():
        print(f"{src:5s} -> {dst:6s} via "
              f"{connection.mechanism.value.upper():4s} "
              f"({connection.decision.reason})")

    rng = RandomStream(7, "webservice")
    latencies = Series()

    def backend(name):
        """cache/db servers: answer every request on every connection."""
        def serve(connection):
            while True:
                request = yield from connection.b.recv()
                size = 2048 if name == "cache" else 16384
                yield from connection.b.send(size, payload=request.payload)

        for (src, dst), connection in connections.items():
            if dst == name:
                env.process(serve(connection))

    def web(name):
        def serve(connection):
            while True:
                request = yield from connection.b.recv()
                # Hit the cache; on a miss, hit the database too.
                target = ("cache" if rng.uniform(0, 1) < CACHE_HIT_RATE
                          else "db")
                backend_conn = connections[(name, target)]
                yield from backend_conn.a.send(256, payload=request.payload)
                yield from backend_conn.a.recv()
                yield from connection.b.send(8192, payload=request.payload)

        env.process(serve(connections[("lb", name)]))

    backend("cache")
    backend("db")
    web("web1")
    web("web2")

    def load_balancer():
        for index in range(REQUESTS):
            worker = "web1" if index % 2 == 0 else "web2"
            connection = connections[("lb", worker)]
            started = env.now
            yield from connection.a.send(512, payload=index)
            yield from connection.a.recv()
            latencies.add(env.now - started)

    env.run(until=env.process(load_balancer()))

    print(f"\n{REQUESTS} requests "
          f"({CACHE_HIT_RATE:.0%} cache hit rate):")
    print(f"  mean  {latencies.mean() * 1e6:7.1f} us")
    print(f"  p50   {latencies.percentile(50) * 1e6:7.1f} us")
    print(f"  p99   {latencies.percentile(99) * 1e6:7.1f} us")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Distributed training over FreeFlow MPI (paper §1: "machine learning").

Four worker containers run synchronous data-parallel training: compute,
then ring-allreduce the gradient.  The script compares two placements —
all workers packed on one host (gradients ride shared memory) versus
spread across two hosts (gradients ride RDMA) — and, for contrast, the
spread case with kernel-bypass disabled (gradients ride kernel TCP).

Run:  python examples/mpi_allreduce.py
"""

from repro import ContainerSpec, quickstart_cluster
from repro.core import PolicyConfig
from repro.workloads import ParameterServerApp

GRADIENT_BYTES = 16 * 1024 * 1024  # a 4M-parameter fp32 model
COMPUTE_S = 2e-3
STEPS = 5


def run_training(label, placement, policy_config=None):
    env, cluster, network = quickstart_cluster(
        hosts=2,
        **({"policy_config": policy_config} if policy_config else {}),
    )
    workers = []
    for index, host in enumerate(placement):
        container = cluster.submit(
            ContainerSpec(f"worker{index}", pinned_host=host)
        )
        network.attach(container)
        workers.append(container)

    app = ParameterServerApp(
        network, workers,
        gradient_bytes=GRADIENT_BYTES, compute_s=COMPUTE_S,
    )
    done = env.process(app.run(steps=STEPS))
    env.run(until=done)

    step_ms = app.stats.step_times.mean() * 1e3
    comm_ms = step_ms - COMPUTE_S * 1e3
    mechanisms = sorted({
        c.mechanism.value for c in network.connections
    })
    print(f"{label:28s} step {step_ms:7.2f} ms "
          f"(comm {comm_ms:6.2f} ms)  data plane: {', '.join(mechanisms)}")
    return step_ms


def main() -> None:
    print(f"4 workers, {GRADIENT_BYTES >> 20} MiB gradients, "
          f"{COMPUTE_S * 1e3:.0f} ms compute per step, {STEPS} steps\n")
    packed = run_training(
        "packed (one host)", ["host0"] * 4
    )
    spread = run_training(
        "spread (two hosts, RDMA)", ["host0", "host0", "host1", "host1"]
    )
    tcp = run_training(
        "spread (two hosts, TCP)",
        ["host0", "host0", "host1", "host1"],
        policy_config=PolicyConfig(allow_rdma=False, allow_dpdk=False),
    )
    print(f"\nkernel bypass cut the spread-placement step time by "
          f"{(1 - spread / tcp) * 100:.0f}% versus kernel TCP")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Host failure and container replacement under FreeFlow (paper §2.1).

"Such architecture makes it easier to upgrade the nodes or mitigate
failures, since a stopped container can be quickly replaced by a new one
on the same or another host."  This example kills a host under a serving
database container, watches the client's connection reset, replaces the
container on a surviving host, repairs the connection — and shows that
the replacement landed *co-located* with the client, so the repaired
connection upgraded from RDMA to shared memory.

Run:  python examples/failover.py
"""

from repro import ContainerSpec, quickstart_cluster
from repro.errors import ConnectionReset


def main() -> None:
    env, cluster, network = quickstart_cluster(hosts=2)
    app = cluster.submit(ContainerSpec("app", pinned_host="host0"))
    db = cluster.submit(ContainerSpec("db", pinned_host="host1"))
    network.attach(app)
    network.attach(db)

    log = []

    def scenario():
        connection = yield from network.connect_containers("app", "db")
        log.append(f"connected app->db via "
                   f"{connection.mechanism.value.upper()} "
                   f"(db on {db.location})")

        yield from connection.a.send(4096, payload="query-1")
        reply = yield from connection.b.recv()
        log.append(f"query served: {reply.payload!r}")

        # A receiver is parked waiting for the next query when the host
        # dies; it must see a reset, not hang forever.
        outcome = {}

        def parked_receiver():
            try:
                yield from connection.b.recv()
            except ConnectionReset as exc:
                outcome["reset"] = str(exc)

        env.process(parked_receiver())
        yield env.timeout(0.001)

        log.append("!! host1 fails")
        broken = network.handle_host_failure("host1")
        yield env.timeout(0.001)
        log.append(f"   {len(broken)} connection(s) reset "
                   f"({outcome.get('reset', 'receiver still parked?')})")

        replacement = cluster.submit(ContainerSpec("db"))  # scheduler picks
        network.attach(replacement)
        log.append(f"   db replaced on {replacement.location} "
                   f"ip={replacement.ip}")

        decision = yield from network.repair_connection(connection)
        log.append(f"   connection repaired via "
                   f"{decision.mechanism.value.upper()} "
                   f"({decision.reason})")

        yield from connection.a.send(4096, payload="query-2")
        reply = yield from connection.b.recv()
        log.append(f"query served after failover: {reply.payload!r}")

    env.run(until=env.process(scenario()))
    for line in log:
        print(line)


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Live migration with connection continuity (paper §7, "Discussions").

A KV server migrates from host0 to host1 while a client keeps issuing
GETs.  FreeFlow's orchestrator republishes the location, the library
re-resolves, and the connection is rebound — the client's socket never
breaks, but its GET latency changes because the mechanism changed
(shared memory before, RDMA after).

Run:  python examples/live_migration.py
"""

from repro import ContainerSpec, quickstart_cluster
from repro.core import MigrationController
from repro.sim.monitor import Series
from repro.workloads import KeyValueStoreApp

STATE_BYTES = 512e6      # container memory image
DIRTY_RATE = 150e6       # bytes/s dirtied while running


def main() -> None:
    env, cluster, network = quickstart_cluster(hosts=2)
    server = cluster.submit(ContainerSpec("kv", pinned_host="host0"))
    client_c = cluster.submit(ContainerSpec("client", pinned_host="host0"))
    network.attach(server)
    network.attach(client_c)

    app = KeyValueStoreApp(network, server, value_bytes=4096)
    controller = MigrationController(network)

    before, after = Series(), Series()
    report_box = {}

    def scenario():
        client = yield from app.client(client_c)
        yield from client.put(1, "durable")
        print(f"client connected via {client.sock.mechanism.value.upper()} "
              f"(both containers on {server.location})")

        for _ in range(100):
            started = env.now
            yield from client.get(1)
            before.add(env.now - started)

        print(f"\nmigrating kv-server to host1 "
              f"({STATE_BYTES / 1e6:.0f} MB image, "
              f"{DIRTY_RATE / 1e6:.0f} MB/s dirty rate)...")
        report = yield from controller.live_migrate(
            "kv", "host1",
            state_bytes=STATE_BYTES, dirty_rate_bytes=DIRTY_RATE,
        )
        report_box["report"] = report

        value = yield from client.get(1)
        assert value == "durable", "data must survive the move"
        for _ in range(100):
            started = env.now
            yield from client.get(1)
            after.add(env.now - started)

    env.run(until=env.process(scenario()))

    report = report_box["report"]
    print(f"  total time   {report.total_seconds * 1e3:8.1f} ms")
    print(f"  downtime     {report.downtime_seconds * 1e3:8.2f} ms")
    print(f"  pre-copy     {report.precopy_rounds} round(s), "
          f"{report.bytes_copied / 1e6:.0f} MB moved")
    changes = ", ".join(
        f"{a.value}->{b.value}" for a, b in report.mechanism_changes
    )
    print(f"  connections  {report.rebound_connections} rebound "
          f"({changes})")
    print(f"\nGET latency before: {before.mean() * 1e6:6.2f} us "
          f"(shared memory)")
    print(f"GET latency after:  {after.mean() * 1e6:6.2f} us "
          f"(RDMA across hosts)")
    print("\nthe socket survived: same IP, same connection object, new "
          "data plane")


if __name__ == "__main__":
    main()

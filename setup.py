"""Setup shim: enables legacy editable installs where `wheel` is absent.

The canonical metadata lives in pyproject.toml; this file only exists so
``python setup.py develop`` / ``pip install -e . --no-build-isolation``
work on minimal offline environments.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)

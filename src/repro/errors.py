"""Exception hierarchy for the FreeFlow reproduction.

Every library-raised error derives from :class:`FreeFlowError`, so callers
can catch the whole family; the sub-classes mirror the paper's subsystems.
"""

from __future__ import annotations

__all__ = [
    "FreeFlowError",
    "AddressError",
    "AddressExhausted",
    "RoutingError",
    "TransportError",
    "TransportUnavailable",
    "VerbsError",
    "QueuePairStateError",
    "MemoryRegionError",
    "CompletionError",
    "OrchestrationError",
    "UnknownContainer",
    "PlacementError",
    "FlowStateError",
    "LeaseError",
    "CompactedRevision",
    "EngineInvariantError",
    "SanitizerViolation",
    "DeadlockDetected",
    "SocketError",
    "ConnectionRefused",
    "ConnectionReset",
    "SocketShutdownError",
    "RingBufferError",
    "MigrationError",
]


class FreeFlowError(Exception):
    """Base class for every error raised by this library."""


# -- addressing / routing --------------------------------------------------


class AddressError(FreeFlowError):
    """Invalid or conflicting network address."""


class AddressExhausted(AddressError):
    """The IPAM pool has no free addresses left."""


class RoutingError(FreeFlowError):
    """No route to the destination container/agent."""


# -- data plane --------------------------------------------------------------


class TransportError(FreeFlowError):
    """A data-plane mechanism failed to deliver."""


class TransportUnavailable(TransportError):
    """The requested mechanism is not usable here (e.g. no RDMA NIC)."""


# -- verbs / vNIC -------------------------------------------------------------


class VerbsError(FreeFlowError):
    """Misuse of the RDMA Verbs API surface."""


class QueuePairStateError(VerbsError):
    """Operation not permitted in the queue pair's current state."""


class MemoryRegionError(VerbsError):
    """Bad memory-region key or out-of-bounds access."""


class CompletionError(VerbsError):
    """A work request completed with an error status."""


# -- orchestration -------------------------------------------------------------


class OrchestrationError(FreeFlowError):
    """Control-plane failure (orchestrator or agent)."""


class UnknownContainer(OrchestrationError):
    """The orchestrator has no record of the named container."""


class PlacementError(OrchestrationError):
    """The cluster scheduler could not place a container."""


class FlowStateError(OrchestrationError):
    """Illegal transition in the per-flow lifecycle state machine.

    Raised by :class:`repro.core.flows.FlowTable` when a caller asks for
    a transition the state machine does not permit (e.g. repairing a
    flow that never broke, or rebinding a closed flow).
    """


class LeaseError(OrchestrationError):
    """Misuse of a KV lease (unknown id, or operating on a dead lease).

    Raised by :class:`repro.cluster.kvstore.KeyValueStore` when a caller
    keepalives or attaches keys to a lease that has already expired or
    been revoked — the etcd behaviour (``ErrLeaseNotFound``) that forces
    clients to notice their session died instead of writing into a void.
    """


class CompactedRevision(OrchestrationError):
    """The requested watch revision predates the compaction horizon.

    Raised by :meth:`repro.cluster.kvstore.Watch.resync` (and
    ``watch(start_revision=...)``) when the revision history needed for a
    precise replay has been compacted away.  Callers recover the way etcd
    clients do: fall back to a full snapshot resync and diff.
    """


# -- engine / sanitizer --------------------------------------------------------


class EngineInvariantError(FreeFlowError):
    """An internal invariant of the discrete-event engine was violated.

    Raised instead of a bare ``assert`` so the check survives ``python -O``
    and names the broken invariant (simlint rule SIM007).
    """


class SanitizerViolation(EngineInvariantError):
    """A runtime sanitizer check failed (``REPRO_SANITIZE=1``).

    The sanitizer (:mod:`repro.analysis.sanitizer`) arms cheap invariant
    hooks in the engine and flow layer: monotone sim clock, globally
    ordered event pops, byte/stat conservation across channel transplants,
    and FlowTable-only flow-state transitions.
    """


class DeadlockDetected(SanitizerViolation):
    """The runtime wait-for graph found an unbreakable wait cycle.

    Raised at park time by :mod:`repro.analysis.waitfor`
    (``REPRO_WAITFOR=1``) when a process about to block on a lock
    closes a cycle of lock holders — every process in the ring waits on
    a slot held by the next, so no release can ever happen.  The message
    names each process and the resource it waits on.  Tank/store waits
    never raise (backpressure cycles can be broken by third parties);
    they show up in the idle report instead.
    """


# -- socket translation --------------------------------------------------------


class SocketError(FreeFlowError):
    """Socket-over-verbs layer error."""


class ConnectionRefused(SocketError):
    """No listener at the destination IP:port."""


class ConnectionReset(SocketError):
    """The peer endpoint went away mid-connection."""


class SocketShutdownError(SocketError):
    """I/O on a socket this end already shut down.

    Raised by ``recv`` on a half-shut socket — ``shutdown()`` was
    called locally, so no more data can ever arrive on this endpoint.
    Distinct from the generic :class:`SocketError` so callers can tell
    "you closed this yourself" from genuine misuse.
    """


class RingBufferError(SocketError):
    """Streaming-ring accounting violation (overflow/underflow/wrap).

    The credit protocol is supposed to make these unreachable; raising
    a typed error (instead of silently corrupting head/tail) turns a
    flow-control bug into a loud failure.
    """


# -- migration -------------------------------------------------------------------


class MigrationError(FreeFlowError):
    """Live migration could not complete."""


class ChannelRebound(FreeFlowError):
    """Internal signal: the channel under a connection was swapped.

    Receivers parked on the old channel are ejected with this exception
    and transparently retry on the new channel; applications never see it
    unless they bypass the connection facade.
    """

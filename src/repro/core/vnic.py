"""The virtual RDMA NIC (paper §5): verbs execution over any data plane.

"In FreeFlow, both the sender and receiver containers have a virtual
RDMA NIC" — the vNIC emulates the NIC-side structures (queue pairs,
completion queues, memory regions) and executes work requests over
whatever channel the orchestrator's policy selected:

* intra-host: the WRITE flow of the paper's Fig. 8 — the payload goes
  into a shared-memory block and the peer's vNIC is notified with the
  block's pointer;
* inter-host: the flow of Fig. 7 — the local agent performs an actual
  RDMA (or DPDK/TCP) transfer to the peer's agent, which lands the data
  in shared memory and notifies the receiving container's vNIC.

Work-request semantics implemented: SEND/RECV (two-sided, RNR-blocking
until a receive is posted), WRITE and WRITE_WITH_IMM (one-sided into a
registered remote MR, with access validation against the remote vNIC's
rkey table), READ (one-sided fetch, request/response on the same channel
pair).  Completions are pushed to the right CQ with realistic points in
time: a send-side completion fires only after the remote side has
applied the operation (plus an ack propagation delay).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

from ..errors import MemoryRegionError, QueuePairStateError, VerbsError
from ..sim.process import Interrupt
from ..telemetry import flowrecords as _flowrecords
from ..telemetry import registry as _registry
from ..transports.base import ChannelEnd, Mechanism
from .verbs import (
    CompletionQueue,
    MemoryRegion,
    Opcode,
    ProtectionDomain,
    QpState,
    QueuePair,
    WcStatus,
    WorkCompletion,
    WorkRequest,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.container import Container
    from .network import FreeFlowNetwork

__all__ = ["VirtualNic", "VNIC_POST_OVERHEAD_CYCLES", "READ_REQUEST_BYTES"]

#: FreeFlow's interception tax: extra cycles the customized verbs library
#: spends per posted WR compared to talking to a physical NIC directly.
VNIC_POST_OVERHEAD_CYCLES = 300.0

#: Size of the control message a READ sends to the responder.
READ_REQUEST_BYTES = 32


def _require_connected(qp: QueuePair) -> None:
    """Invariant: the vNIC engines only drive connected queue pairs."""
    if qp.channel_end is None:
        raise QueuePairStateError(
            f"QP{qp.qp_num} has no bound channel end — the vNIC cannot "
            "move data for an unconnected queue pair"
        )


#: Ack propagation delay by mechanism (sender WC fires this long after
#: the remote side applied the operation).
_ACK_LATENCY_S = {
    Mechanism.SHM: 0.8e-6,
    Mechanism.RDMA: 1.2e-6,
    Mechanism.DPDK: 1.5e-6,
    Mechanism.TCP: 4.0e-6,
}

_descriptor_ids = itertools.count(1)


@dataclass
class _Descriptor:
    """What actually travels on the channel for one work request."""

    kind: str  # "send" | "write" | "read_req" | "read_resp"
    wr_id: int
    length: int
    payload: Any = None
    remote_key: Optional[int] = None
    remote_offset: int = 0
    imm_data: Optional[int] = None
    #: Event the responder triggers once the op is applied; carries a
    #: WcStatus so access violations surface at the requester.
    done: Any = None
    #: For read responses: the desc_id of the originating read request.
    req_id: Optional[int] = None
    desc_id: int = field(default_factory=lambda: next(_descriptor_ids))


class VirtualNic:
    """Per-container virtual RDMA NIC + customized verbs library."""

    def __init__(self, container: "Container", network: "FreeFlowNetwork") -> None:
        self.container = container
        self.network = network
        self.env = container.env
        self._mrs_by_rkey: dict[int, MemoryRegion] = {}
        self._qps: dict[int, QueuePair] = {}
        self._pending_reads: dict[int, WorkRequest] = {}
        self.posts = 0

    # -- resource creation (standard verbs surface) -----------------------------

    def alloc_pd(self) -> ProtectionDomain:
        return ProtectionDomain(self)

    def reg_mr(self, pd: ProtectionDomain, length: int) -> MemoryRegion:
        if pd.vnic is not self:
            raise VerbsError("PD belongs to a different vNIC")
        region = MemoryRegion(pd, length)
        self._mrs_by_rkey[region.rkey] = region
        return region

    def dereg_mr(self, region: MemoryRegion) -> None:
        self._mrs_by_rkey.pop(region.rkey, None)
        region.deregister()

    def create_cq(self, depth: int = 1024,
                  poll_batch: Optional[int] = None) -> CompletionQueue:
        """A completion queue whose drain batch defaults to the host
        NIC's advertised :attr:`~repro.hardware.specs.NicSpec.cq_poll_batch`."""
        if poll_batch is None:
            poll_batch = self.container.host.nic.spec.cq_poll_batch
        return CompletionQueue(self.env, depth, poll_batch=poll_batch)

    def create_qp(
        self,
        pd: ProtectionDomain,
        send_cq: CompletionQueue,
        recv_cq: CompletionQueue,
        max_send_wr: int = 256,
    ) -> QueuePair:
        qp = QueuePair(self, pd, send_cq, recv_cq, max_send_wr)
        self._qps[qp.qp_num] = qp
        return qp

    def lookup_rkey(self, rkey: Optional[int]) -> Optional[MemoryRegion]:
        if rkey is None:
            return None
        return self._mrs_by_rkey.get(rkey)

    # -- connection plumbing (driven by FreeFlowNetwork) ---------------------------

    def bind(self, qp: QueuePair, end: ChannelEnd, remote: QueuePair) -> None:
        """Attach a connected channel end to a QP and start its engines."""
        qp.channel_end = end
        qp.remote = remote
        qp._engines = [
            self.env.process(self._sq_engine(qp)),
            self.env.process(self._rx_engine(qp)),
        ]

    def rebind(self, qp: QueuePair, end: ChannelEnd, remote: QueuePair) -> None:
        """Swap the QP onto a new channel (live-migration support, §7).

        The old engines are interrupted at their current wait point; the
        migration controller is responsible for draining in-flight work
        first (see :mod:`repro.core.migration`).
        """
        for engine in getattr(qp, "_engines", []):
            if engine.is_alive:
                engine.interrupt("rebind")
        self.bind(qp, end, remote)

    # -- posting cost ----------------------------------------------------------------

    def charge_post(self):
        """CPU cost of one post through the customized verbs library."""
        self.posts += 1
        _registry.counter_inc("repro.vnic.posts")
        host = self.container.host
        yield from host.cpu.execute(
            host.nic.spec.rdma_post_cycles + VNIC_POST_OVERHEAD_CYCLES
        )

    def kick(self, qp: QueuePair) -> None:
        """Doorbell: the SQ engine drains ``qp.sq`` on its own."""
        # The engine process is always draining; nothing to do — kept as
        # an explicit hook because real verbs has the doorbell write.

    # -- send-queue engine -------------------------------------------------------------

    def _sq_engine(self, qp: QueuePair):
        try:
            yield from self._sq_loop(qp)
        except Interrupt:
            return

    def _sq_loop(self, qp: QueuePair):
        while True:
            wr: WorkRequest = yield qp.sq.get()
            if qp.state is not QpState.RTS:
                self._complete(qp, wr, WcStatus.WR_FLUSH_ERROR, 0)
                continue
            if wr.opcode is Opcode.SEND:
                yield from self._issue(qp, wr, "send", wr.length)
            elif wr.opcode is Opcode.WRITE:
                yield from self._issue(qp, wr, "write", wr.length)
            elif wr.opcode is Opcode.WRITE_WITH_IMM:
                yield from self._issue(qp, wr, "write", wr.length, imm=True)
            elif wr.opcode is Opcode.READ:
                yield from self._issue(qp, wr, "read_req", READ_REQUEST_BYTES)
            elif wr.opcode in (Opcode.ATOMIC_CAS, Opcode.ATOMIC_FADD):
                yield from self._issue(qp, wr, "atomic_req",
                                       READ_REQUEST_BYTES)
            else:  # pragma: no cover - WorkRequest validation prevents this
                raise VerbsError(f"SQ cannot execute {wr.opcode.value}")

    def _issue(self, qp: QueuePair, wr: WorkRequest, kind: str, nbytes: int,
               imm: bool = False):
        descriptor = _Descriptor(
            kind=kind,
            wr_id=wr.wr_id,
            length=wr.length,
            payload=wr.payload,
            remote_key=wr.remote_key,
            remote_offset=wr.remote_offset,
            imm_data=wr.imm_data if (imm or wr.opcode is Opcode.SEND) else None,
        )
        if kind == "atomic_req":
            descriptor.payload = (wr.opcode, wr.compare_add, wr.swap)
        descriptor.done = self.env.event()
        _require_connected(qp)
        recorder = _flowrecords.ACTIVE
        if recorder is not None:
            recorder.on_verbs(wr.opcode.value, wr.length)
        if kind in ("read_req", "atomic_req"):
            # These complete when the response lands (rx engine); remember
            # the WR so the response can land in its local MR.
            self._pending_reads[descriptor.desc_id] = wr
        yield from qp.channel_end.send(max(1, nbytes), payload=descriptor)
        self.env.process(self._await_ack(qp, wr, descriptor))

    def _await_ack(self, qp: QueuePair, wr: WorkRequest, descriptor: _Descriptor):
        """Wait for the responder to apply the op, then complete the WR."""
        status = yield descriptor.done
        if descriptor.kind in ("read_req", "atomic_req"):
            # The rx engine completes these when the response arrives.
            return
        mechanism = qp.channel_end.mechanism
        yield self.env.timeout(_ACK_LATENCY_S[mechanism])
        if status is not WcStatus.SUCCESS:
            qp.modify(QpState.ERROR)
        self._complete(qp, wr, status, wr.length if status is WcStatus.SUCCESS else 0)

    def _complete(self, qp: QueuePair, wr: WorkRequest, status: WcStatus,
                  byte_len: int) -> None:
        if not wr.signaled and status is WcStatus.SUCCESS:
            return
        qp.send_cq.push(WorkCompletion(
            wr_id=wr.wr_id, status=status, opcode=wr.opcode,
            byte_len=byte_len, qp_num=qp.qp_num, timestamp=self.env.now,
        ))

    # -- receive/responder engine ----------------------------------------------------------

    def _rx_engine(self, qp: QueuePair):
        try:
            yield from self._rx_loop(qp)
        except Interrupt:
            return

    def _rx_loop(self, qp: QueuePair):
        while True:
            _require_connected(qp)
            message = yield from qp.channel_end.recv()
            descriptor: _Descriptor = message.payload
            if descriptor.kind == "send":
                yield from self._handle_send(qp, descriptor)
            elif descriptor.kind == "write":
                yield from self._handle_write(qp, descriptor)
            elif descriptor.kind == "read_req":
                yield from self._handle_read_request(qp, descriptor)
            elif descriptor.kind == "read_resp":
                self._handle_read_response(qp, descriptor)
            elif descriptor.kind == "atomic_req":
                yield from self._handle_atomic_request(qp, descriptor)
            elif descriptor.kind == "atomic_resp":
                self._handle_atomic_response(qp, descriptor)
            else:  # pragma: no cover - descriptors are internal
                raise VerbsError(f"unknown descriptor kind {descriptor.kind!r}")

    def _handle_send(self, qp: QueuePair, descriptor: _Descriptor):
        # RNR behaviour: block until the application posts a receive.
        recv_wr: WorkRequest = yield qp.rq.get()
        if recv_wr.local_mr is None:
            raise MemoryRegionError(
                f"RECV WR {recv_wr.wr_id} has no local memory region — "
                "WorkRequest validation admits RECVs only with a landing MR"
            )
        if descriptor.length > recv_wr.length:
            descriptor.done.succeed(WcStatus.REMOTE_INVALID_REQUEST)
            qp.recv_cq.push(WorkCompletion(
                wr_id=recv_wr.wr_id, status=WcStatus.LOCAL_LENGTH_ERROR,
                opcode=Opcode.RECV, byte_len=0, qp_num=qp.qp_num,
                timestamp=self.env.now,
            ))
            return
        recv_wr.local_mr.write(
            recv_wr.local_offset, descriptor.length, descriptor.payload
        )
        qp.recv_cq.push(WorkCompletion(
            wr_id=recv_wr.wr_id, status=WcStatus.SUCCESS, opcode=Opcode.RECV,
            byte_len=descriptor.length, qp_num=qp.qp_num,
            timestamp=self.env.now, imm_data=descriptor.imm_data,
            payload=descriptor.payload,
        ))
        descriptor.done.succeed(WcStatus.SUCCESS)

    def _handle_write(self, qp: QueuePair, descriptor: _Descriptor):
        region = self.lookup_rkey(descriptor.remote_key)
        if region is None:
            descriptor.done.succeed(WcStatus.REMOTE_ACCESS_ERROR)
            return
        try:
            region.check_range(descriptor.remote_offset, descriptor.length)
        except Exception:
            descriptor.done.succeed(WcStatus.REMOTE_ACCESS_ERROR)
            return
        region.write(descriptor.remote_offset, descriptor.length,
                     descriptor.payload)
        if descriptor.imm_data is not None:
            # WRITE_WITH_IMM consumes a receive and notifies the app.
            recv_wr: WorkRequest = yield qp.rq.get()
            qp.recv_cq.push(WorkCompletion(
                wr_id=recv_wr.wr_id, status=WcStatus.SUCCESS,
                opcode=Opcode.RECV, byte_len=descriptor.length,
                qp_num=qp.qp_num, timestamp=self.env.now,
                imm_data=descriptor.imm_data, payload=descriptor.payload,
            ))
        descriptor.done.succeed(WcStatus.SUCCESS)

    def _handle_read_request(self, qp: QueuePair, descriptor: _Descriptor):
        region = self.lookup_rkey(descriptor.remote_key)
        response = _Descriptor(
            kind="read_resp",
            wr_id=descriptor.wr_id,
            length=descriptor.length,
            req_id=descriptor.desc_id,
        )
        if region is None:
            response.imm_data = -1  # marks the access error
            descriptor.done.succeed(WcStatus.REMOTE_ACCESS_ERROR)
        else:
            try:
                region.check_range(descriptor.remote_offset, descriptor.length)
            except Exception:
                response.imm_data = -1
                descriptor.done.succeed(WcStatus.REMOTE_ACCESS_ERROR)
            else:
                response.payload = region.read(
                    descriptor.remote_offset, descriptor.length
                )
                descriptor.done.succeed(WcStatus.SUCCESS)
        _require_connected(qp)
        size = max(1, descriptor.length) if response.imm_data is None else 1
        yield from qp.channel_end.send(size, payload=response)

    def _handle_atomic_request(self, qp: QueuePair, descriptor: _Descriptor):
        """Responder side of ATOMIC_CAS / ATOMIC_FADD.

        The NIC serialises atomics on the responder, so the
        read-modify-write below is atomic by construction (the rx engine
        is a single process)."""
        opcode, compare_add, swap = descriptor.payload
        region = self.lookup_rkey(descriptor.remote_key)
        response = _Descriptor(
            kind="atomic_resp",
            wr_id=descriptor.wr_id,
            length=8,
            req_id=descriptor.desc_id,
        )
        if region is None:
            response.imm_data = -1
            descriptor.done.succeed(WcStatus.REMOTE_ACCESS_ERROR)
        else:
            try:
                old = region.atomic_value(descriptor.remote_offset)
            except Exception:
                response.imm_data = -1
                descriptor.done.succeed(WcStatus.REMOTE_ACCESS_ERROR)
            else:
                if opcode is Opcode.ATOMIC_CAS:
                    if old == compare_add:
                        region.atomic_set(descriptor.remote_offset, swap)
                else:  # ATOMIC_FADD
                    region.atomic_set(
                        descriptor.remote_offset, old + compare_add
                    )
                response.payload = old
                descriptor.done.succeed(WcStatus.SUCCESS)
        _require_connected(qp)
        yield from qp.channel_end.send(8, payload=response)

    def _handle_atomic_response(self, qp: QueuePair,
                                descriptor: _Descriptor) -> None:
        status = (
            WcStatus.SUCCESS if descriptor.imm_data is None
            else WcStatus.REMOTE_ACCESS_ERROR
        )
        wr = None
        if descriptor.req_id is not None:
            wr = self._pending_reads.pop(descriptor.req_id, None)
        opcode = wr.opcode if wr is not None else Opcode.ATOMIC_CAS
        if status is WcStatus.SUCCESS:
            if wr is not None and wr.local_mr is not None:
                # The old value lands in the requester's local MR.
                wr.local_mr.atomic_set(wr.local_offset, descriptor.payload)
        else:
            qp.modify(QpState.ERROR)
        qp.send_cq.push(WorkCompletion(
            wr_id=descriptor.wr_id, status=status, opcode=opcode,
            byte_len=8 if status is WcStatus.SUCCESS else 0,
            qp_num=qp.qp_num, timestamp=self.env.now,
            payload=descriptor.payload,
        ))

    def _handle_read_response(self, qp: QueuePair, descriptor: _Descriptor) -> None:
        status = (
            WcStatus.SUCCESS if descriptor.imm_data is None
            else WcStatus.REMOTE_ACCESS_ERROR
        )
        wr = None
        if descriptor.req_id is not None:
            wr = self._pending_reads.pop(descriptor.req_id, None)
        if status is WcStatus.SUCCESS:
            byte_len = descriptor.length
            if wr is not None and wr.local_mr is not None:
                # The NIC DMA-writes the fetched data into the local MR.
                wr.local_mr.write(wr.local_offset, byte_len, descriptor.payload)
        else:
            byte_len = 0
            qp.modify(QpState.ERROR)
        qp.send_cq.push(WorkCompletion(
            wr_id=descriptor.wr_id, status=status, opcode=Opcode.READ,
            byte_len=byte_len, qp_num=qp.qp_num, timestamp=self.env.now,
            payload=descriptor.payload,
        ))

"""Rate limiting for kernel-bypass traffic (paper §1 + §7).

The paper's intro notes that kernel bypass "offers less isolation (...
kernel cannot provide protections like rate limiting and firewalls)".
The firewall half is :mod:`repro.core.middlebox`; this module restores
the rate-limiting half: a token-bucket limiter enforced in the FreeFlow
library layer, where every bypass byte already passes.

A :class:`TokenBucket` can be shared across lanes (per-tenant limits) or
private to one connection.  Enforcement is work-conserving: senders are
delayed, never dropped — the shaping a cloud operator applies to tame a
noisy tenant without breaking it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from ..transports.base import DuplexChannel, Lane, Mechanism

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.scheduler import Environment

__all__ = ["TokenBucket", "RateLimitedLane", "limit_channel"]


class TokenBucket:
    """A classic token bucket in simulated time.

    Tokens are bytes; they accrue at ``rate_bytes_per_s`` up to
    ``burst_bytes``.  ``take`` is a generator that parks the caller until
    the requested tokens exist, then consumes them — concurrent takers
    are served in arrival order via a turnstile.
    """

    def __init__(
        self,
        env: "Environment",
        rate_bytes_per_s: float,
        burst_bytes: float = 1 << 20,
    ) -> None:
        if rate_bytes_per_s <= 0:
            raise ValueError("rate must be positive")
        if burst_bytes <= 0:
            raise ValueError("burst must be positive")
        self.env = env
        self.rate = float(rate_bytes_per_s)
        self.burst = float(burst_bytes)
        self._tokens = float(burst_bytes)
        self._last_refill = env.now
        from ..sim.resources import Resource

        self._turnstile = Resource(env, capacity=1)
        self.bytes_shaped = 0
        self.delays_imposed = 0

    def _refill(self) -> None:
        now = self.env.now
        self._tokens = min(
            self.burst, self._tokens + (now - self._last_refill) * self.rate
        )
        self._last_refill = now

    def take(self, nbytes: float):
        """Generator: consume ``nbytes`` tokens, waiting if necessary."""
        if nbytes < 0:
            raise ValueError("negative byte count")
        with self._turnstile.request() as turn:
            yield turn
            self._refill()
            if nbytes <= self._tokens:
                self._tokens -= nbytes
            else:
                # Drain what exists, then wait for exactly the deficit to
                # accrue; that accrual belongs to this request, so the
                # refill clock restarts at the wake-up instant.
                deficit = nbytes - self._tokens
                self._tokens = 0.0
                self._last_refill = self.env.now
                self.delays_imposed += 1
                yield self.env.timeout(deficit / self.rate)
                self._last_refill = self.env.now
            self.bytes_shaped += nbytes


class RateLimitedLane:
    """Lane wrapper that charges a token bucket before each send.

    Duck-types the lane surface, like
    :class:`~repro.core.middlebox.InspectedLane`, and composes with it.
    """

    def __init__(self, inner: Lane, bucket: TokenBucket) -> None:
        self.inner = inner
        self.bucket = bucket
        self.env = inner.env

    @property
    def mechanism(self) -> Mechanism:
        return self.inner.mechanism

    @property
    def stats(self):
        return self.inner.stats

    @property
    def inbox(self):
        return self.inner.inbox

    @property
    def closed(self) -> bool:
        return self.inner.closed

    @property
    def on_deliver(self):
        return self.inner.on_deliver

    @on_deliver.setter
    def on_deliver(self, hook) -> None:
        self.inner.on_deliver = hook

    def send(self, nbytes: int, payload: Any = None):
        yield from self.bucket.take(nbytes)
        message = yield from self.inner.send(nbytes, payload)
        return message

    def recv(self):
        message = yield from self.inner.recv()
        return message

    def adopt(self, message: Any) -> None:
        self.inner.adopt(message)

    def eject_receivers(self, exception: BaseException) -> None:
        self.inner.eject_receivers(exception)

    def close(self) -> None:
        self.inner.close()


def limit_channel(
    channel: DuplexChannel,
    bucket_ab: TokenBucket,
    bucket_ba: Optional[TokenBucket] = None,
) -> DuplexChannel:
    """Shape a channel: one bucket per direction (shared if one given)."""
    from ..transports.base import ChannelEnd

    channel.lane_ab = RateLimitedLane(channel.lane_ab, bucket_ab)
    channel.lane_ba = RateLimitedLane(
        channel.lane_ba, bucket_ba if bucket_ba is not None else bucket_ab
    )
    channel.a = ChannelEnd(channel.lane_ab, channel.lane_ba)
    channel.b = ChannelEnd(channel.lane_ba, channel.lane_ab)
    return channel

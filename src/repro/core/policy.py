"""The data-plane selection policy (paper §4.2, and the commented Table 1).

"Generally, one container should decide how to communicate with another
according to the latter's location, using the optimal transport for high
networking performance" (§3.1).  The decision inputs are exactly the
global state the network orchestrator maintains: container locations
(cluster orchestrator + fabric controller), NIC capabilities, and tenant
trust; the output is a :class:`~repro.transports.base.Mechanism`.

The paper's (commented-out) Table 1 gives the expected matrix, which the
deployment-cases bench (E11) regenerates:

    constraint      (a) same host   (b) two hosts   (c) same VM    (d) two VMs
    none            SharedMem       RDMA            SharedMem      RDMA
    w/o trust       TCP/IP          TCP/IP          TCP/IP         TCP/IP
    w/o RDMA NIC    SharedMem       TCP/IP          SharedMem      TCP/IP
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..cluster.container import Container
from ..transports.base import Mechanism

__all__ = ["PolicyConfig", "MechanismPolicy", "PolicyDecision"]


@dataclass(frozen=True)
class PolicyConfig:
    """Administrative constraints on mechanism selection."""

    allow_shm: bool = True
    allow_rdma: bool = True
    allow_dpdk: bool = True
    #: Relax isolation only between same-tenant containers (paper §7).
    require_trust: bool = True
    #: Prefer DPDK over kernel TCP when RDMA is absent but DPDK works.
    prefer_dpdk_fallback: bool = True
    #: Treat containers in *different* VMs on one host as co-located
    #: (requires a NetVM-style inter-VM shm path; default off, see §7).
    shm_across_vms: bool = False


@dataclass(frozen=True)
class PolicyDecision:
    """The chosen mechanism plus the reasoning trail (for debuggability)."""

    mechanism: Mechanism
    reason: str
    colocated: bool
    trusted: bool


class MechanismPolicy:
    """Pure decision logic: no I/O, trivially testable."""

    def __init__(self, config: Optional[PolicyConfig] = None) -> None:
        self.config = config or PolicyConfig()

    def decide(
        self,
        src: Container,
        dst: Container,
        capabilities: Optional[dict] = None,
    ) -> PolicyDecision:
        """Pick the best mechanism for traffic ``src -> dst``.

        ``capabilities`` optionally overrides per-host NIC capability
        bits (``{host_name: {"rdma": bool, "dpdk": bool}}``) — the
        orchestrator's registry view, which may diverge from the
        hardware when an operator disables a feature at runtime.
        """
        trusted = src.trusts(dst)
        colocated = src.colocated(dst)
        caps = capabilities or {}

        if self.config.require_trust and not trusted:
            # No isolation compromise across tenants: the kernel path is
            # the only one that keeps full namespace/middlebox semantics.
            return PolicyDecision(
                Mechanism.TCP, "untrusted peers keep full isolation",
                colocated, trusted,
            )

        if self._degraded(src, caps) or self._degraded(dst, caps):
            # Graceful degradation: an operator (or the chaos harness)
            # marked a host's bypass plumbing unreliable, so every flow
            # touching it takes the always-works kernel path until the
            # flag clears — even the co-located shm case, since the
            # FreeFlow agent on that host is suspect as a whole.
            return PolicyDecision(
                Mechanism.TCP, "degraded host: kernel TCP until healthy",
                colocated, trusted,
            )

        if colocated and self._shm_usable(src, dst):
            return PolicyDecision(
                Mechanism.SHM, "co-located and trusted: shared memory",
                colocated, trusted,
            )

        if colocated:
            # Same machine but separated by a VM boundary we may not
            # pierce: fall through to the inter-host logic, which still
            # works (the NIC hairpins locally).
            pass

        if self.config.allow_rdma and self._both_rdma(src, dst, caps):
            return PolicyDecision(
                Mechanism.RDMA, "kernel bypass via RDMA NICs",
                colocated, trusted,
            )

        if (
            self.config.allow_dpdk
            and self.config.prefer_dpdk_fallback
            and self._both_dpdk(src, dst, caps)
        ):
            return PolicyDecision(
                Mechanism.DPDK, "no RDMA; DPDK poll-mode bypass",
                colocated, trusted,
            )

        return PolicyDecision(
            Mechanism.TCP, "no usable bypass mechanism; kernel TCP fallback",
            colocated, trusted,
        )

    # -- helpers --------------------------------------------------------------

    def _shm_usable(self, src: Container, dst: Container) -> bool:
        if not self.config.allow_shm:
            return False
        if src.vm is dst.vm:
            # Same VM (or both bare-metal): plain process shared memory.
            return True
        # Different VMs (or VM vs bare-metal) on one machine need an
        # inter-VM shared-memory device (NetVM-style, paper §7).
        return self.config.shm_across_vms

    @staticmethod
    def _vm_bypass_ok(container: Container) -> bool:
        """Kernel-bypass from inside a VM needs SR-IOV passthrough."""
        return container.vm is None or container.vm.sriov

    @staticmethod
    def _degraded(container: Container, capabilities: dict) -> bool:
        """Registry ``degraded`` bit for the container's host."""
        override = capabilities.get(container.host.name)
        return bool(override and override.get("degraded"))

    @staticmethod
    def _cap(container: Container, capabilities: dict, key: str,
             default: bool) -> bool:
        """Hardware capability, unless the registry overrides it."""
        override = capabilities.get(container.host.name)
        if override is not None and key in override:
            return bool(override[key])
        return default

    def _both_rdma(self, src: Container, dst: Container,
                   capabilities: dict) -> bool:
        return (
            self._cap(src, capabilities, "rdma", src.host.rdma_capable)
            and self._cap(dst, capabilities, "rdma", dst.host.rdma_capable)
            and self._vm_bypass_ok(src)
            and self._vm_bypass_ok(dst)
        )

    def _both_dpdk(self, src: Container, dst: Container,
                   capabilities: dict) -> bool:
        return (
            self._cap(src, capabilities, "dpdk", src.host.dpdk_capable)
            and self._cap(dst, capabilities, "dpdk", dst.host.dpdk_capable)
            and self._vm_bypass_ok(src)
            and self._vm_bypass_ok(dst)
        )

"""The unified flow-lifecycle subsystem (paper §7, generalized).

FreeFlow's control plane used to scatter connection lifecycle across the
network facade, the migration controller and the failure handler: each
mutated ``FlowConnection`` fields (``failed``, ``channel``, pause flags)
directly, and each reimplemented half of pause → drain → rebind →
resume.  This module centralizes all of it:

* :class:`FlowState` / :class:`FlowTable` — an explicit per-flow state
  machine (``RESOLVING → ACTIVE ⇄ PAUSED → BROKEN → REBINDING →
  CLOSED``) with guarded transitions.  *Every* lifecycle change goes
  through :meth:`FlowTable.transition`, which emits one
  :data:`~repro.telemetry.events.FLOW_TRANSITION` control-plane event —
  so a flow's whole history is reconstructable from the event log.
  Closed flows leave the table (bounded memory, however many
  connect/close cycles an experiment runs).

* :class:`ChannelFactory` — owns the build pipeline (mechanism channel →
  middlebox wrap → per-tenant rate-limit wrap) and the *transplant* of
  delivered-but-unconsumed messages when a channel is swapped under a
  live connection.

* :class:`FlowReconciler` — a Kubernetes-controller-style loop that
  watches the KV stores for container location changes, host liveness
  and runtime NIC-capability changes, computes the affected flows from
  the FlowTable, and drives pause → drain → re-resolve → rebind → resume
  automatically.  The migration controller and the failure/repair paths
  are thin clients of these primitives.
"""

from __future__ import annotations

import enum
import itertools
from typing import TYPE_CHECKING, Optional

from ..cluster.kvstore import WatchBatch
from ..errors import (
    CompactedRevision,
    ConnectionReset,
    FlowStateError,
    FreeFlowError,
    UnknownContainer,
)
from ..sim.backoff import Backoff
from ..sim.rand import RandomStream
from ..telemetry import events as _events
from ..telemetry import flowrecords as _flowrecords
from ..transports.base import DuplexChannel, Mechanism
from .agent import build_channel

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.scheduler import Environment
    from .network import FreeFlowNetwork
    from .policy import PolicyDecision
    from .verbs import QueuePair

__all__ = [
    "FlowState",
    "FlowConnection",
    "ConnectionEnd",
    "FlowTable",
    "ChannelFactory",
    "FlowReconciler",
    "label_channel",
]


class FlowState(enum.Enum):
    """Lifecycle states of one container-to-container flow."""

    RESOLVING = "resolving"  #: opened; policy/channel not yet in place
    ACTIVE = "active"        #: channel live, senders admitted
    PAUSED = "paused"        #: facade gate closed (migration downtime)
    BROKEN = "broken"        #: an endpoint died; channel is reset
    REBINDING = "rebinding"  #: channel being swapped underneath
    CLOSED = "closed"        #: terminal; pruned from the table


#: The legal transitions.  Anything else raises :class:`FlowStateError`
#: — e.g. repairing a flow that never broke, or rebinding a closed flow.
_LEGAL: dict[FlowState, frozenset] = {
    FlowState.RESOLVING: frozenset(
        {FlowState.ACTIVE, FlowState.BROKEN, FlowState.CLOSED}),
    FlowState.ACTIVE: frozenset(
        {FlowState.PAUSED, FlowState.BROKEN, FlowState.REBINDING,
         FlowState.CLOSED}),
    FlowState.PAUSED: frozenset(
        {FlowState.ACTIVE, FlowState.BROKEN, FlowState.REBINDING,
         FlowState.CLOSED}),
    FlowState.BROKEN: frozenset(
        {FlowState.REBINDING, FlowState.CLOSED}),
    FlowState.REBINDING: frozenset(
        {FlowState.ACTIVE, FlowState.PAUSED, FlowState.BROKEN,
         FlowState.CLOSED}),
    FlowState.CLOSED: frozenset(),
}


def label_channel(flow: "FlowConnection", channel: DuplexChannel) -> None:
    """Stamp both lanes with the flow id ("f<n>:<src>-><dst>") so the
    tracer and the flight recorder attribute traffic to endpoints
    instead of anonymous per-process lane counters."""
    channel.lane_ab.flow = flow.flow_id
    channel.lane_ba.flow = flow.flow_id


def _check_transition(flow: "FlowConnection",
                      new_state: FlowState) -> FlowState:
    old = flow.state
    if new_state not in _LEGAL[old]:
        raise FlowStateError(
            f"flow {flow.flow_id}: illegal transition "
            f"{old.value} -> {new_state.value}"
        )
    return old


class ConnectionEnd:
    """Migration-stable endpoint facade over a :class:`FlowConnection`.

    Applications hold this object; it resolves the live channel on every
    call, honours the connection's pause gate, and transparently retries
    a receive that was ejected by a channel swap — which is what keeps
    connections alive across live migrations (paper §7).
    """

    def __init__(self, connection: "FlowConnection", side: str) -> None:
        if side not in ("a", "b"):
            raise ValueError(f"side must be 'a' or 'b', got {side!r}")
        self._connection = connection
        self._side = side

    def _end(self):
        channel = self._connection.channel
        return channel.a if self._side == "a" else channel.b

    @property
    def mechanism(self) -> Mechanism:
        return self._end().mechanism

    def send(self, nbytes: int, payload=None):
        yield from self._connection.wait_if_paused()
        result = yield from self._end().send(nbytes, payload)
        return result

    def recv(self):
        from ..errors import ChannelRebound
        while True:
            yield from self._connection.wait_if_paused()
            try:
                message = yield from self._end().recv()
                return message
            except ChannelRebound:
                continue


class FlowConnection:
    """One logical container-to-container flow the network tracks.

    Tracking flows centrally — with an explicit state machine — is what
    lets migration, failure handling and the reconciler rebind them when
    an endpoint moves (paper §7, "Live migration").  All state changes
    go through the owning :class:`FlowTable`; direct construction (for
    tests) yields a standalone flow whose transitions are still guarded
    but not logged.
    """

    def __init__(
        self,
        src_name: str,
        dst_name: str,
        channel: Optional[DuplexChannel],
        decision: Optional["PolicyDecision"],
        qp_a: Optional["QueuePair"] = None,
        qp_b: Optional["QueuePair"] = None,
        generation: int = 1,
        flow_id: Optional[str] = None,
        table: Optional["FlowTable"] = None,
    ) -> None:
        self.src_name = src_name
        self.dst_name = dst_name
        self.channel = channel
        self.decision = decision
        self.qp_a = qp_a
        self.qp_b = qp_b
        self.generation = generation
        self.flow_id = flow_id or f"{src_name}->{dst_name}"
        self.table = table
        self.state = (
            FlowState.ACTIVE if channel is not None else FlowState.RESOLVING
        )
        self.a = ConnectionEnd(self, "a")
        self.b = ConnectionEnd(self, "b")
        self._paused = False
        self._resume_event = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<FlowConnection {self.flow_id} {self.state.value} "
                f"gen={self.generation}>")

    @property
    def mechanism(self) -> Mechanism:
        return self.decision.mechanism

    @property
    def paused(self) -> bool:
        return self._paused

    @property
    def failed(self) -> bool:
        """Backward-compatible view: ``True`` while the flow is BROKEN."""
        return self.state is FlowState.BROKEN

    def _transition(self, new_state: FlowState, reason: str) -> None:
        if self.table is not None:
            self.table.transition(self, new_state, reason=reason)
        else:
            _check_transition(self, new_state)
            self.state = new_state

    def pause(self, env) -> None:
        """Stop admitting new sends/recvs at the facade (migration)."""
        if not self._paused:
            self._paused = True
            self._resume_event = env.event()
            if self.state is FlowState.ACTIVE:
                self._transition(FlowState.PAUSED, "pause")

    def resume(self) -> None:
        if self._paused:
            self._paused = False
            event, self._resume_event = self._resume_event, None
            if event is not None:
                event.succeed()
            if self.state is FlowState.PAUSED:
                self._transition(FlowState.ACTIVE, "resume")

    def wait_if_paused(self):
        """Generator: park until :meth:`resume` (no-op when running)."""
        while self._paused:
            yield self._resume_event

    def in_flight(self) -> int:
        """Messages accepted but not yet delivered, both directions."""
        lanes = (self.channel.lane_ab, self.channel.lane_ba)
        return sum(
            lane.stats.messages_sent - lane.stats.messages_delivered
            for lane in lanes
        )

    def close(self, reason: str = "close") -> None:
        """Terminal transition (via the table when owned by one)."""
        if self.table is not None:
            self.table.close(self, reason=reason)
        elif self.state is not FlowState.CLOSED:
            self._transition(FlowState.CLOSED, reason)
            if self.channel is not None:
                self.channel.close()


class FlowTable:
    """The authoritative registry of live flows, with guarded transitions.

    Closed flows are pruned (their ids disappear from the table and the
    per-endpoint index), so long experiments that churn connections do
    not grow memory — only the ``closed_total``/``transitions`` counters
    remember them.
    """

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self._flows: dict[str, FlowConnection] = {}
        self._by_endpoint: dict[str, list[str]] = {}
        self._seq = itertools.count(1)
        #: Lifetime counters (survive pruning).
        self.opened_total = 0
        self.closed_total = 0
        self.transitions = 0

    # -- registry -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._flows)

    def __iter__(self):
        return iter(list(self._flows.values()))

    def __contains__(self, flow) -> bool:
        if isinstance(flow, str):
            return flow in self._flows
        return self._flows.get(getattr(flow, "flow_id", None)) is flow

    def get(self, flow_id: str) -> Optional[FlowConnection]:
        return self._flows.get(flow_id)

    def open_flows(self) -> list[FlowConnection]:
        """Every non-closed flow, in creation order (BROKEN included)."""
        return list(self._flows.values())

    def flows_for(self, name: str) -> list[FlowConnection]:
        """Non-closed flows with ``name`` as either endpoint."""
        return [
            self._flows[fid]
            for fid in self._by_endpoint.get(name, ())
            if fid in self._flows
        ]

    def count(self, state: FlowState) -> int:
        return sum(1 for f in self._flows.values() if f.state is state)

    # -- lifecycle ----------------------------------------------------------

    def open(self, src_name: str, dst_name: str) -> FlowConnection:
        """Create a flow in RESOLVING (no channel yet)."""
        self.opened_total += 1
        flow_id = f"f{next(self._seq)}:{src_name}->{dst_name}"
        flow = FlowConnection(src_name, dst_name, None, None,
                              flow_id=flow_id, table=self)
        self._flows[flow_id] = flow
        for name in {src_name, dst_name}:
            self._by_endpoint.setdefault(name, []).append(flow_id)
        self.transitions += 1
        _events.emit_transition(
            self.env, flow_id, src_name, dst_name,
            "none", FlowState.RESOLVING.value, reason="open",
        )
        return flow

    def activate(self, flow: FlowConnection, channel: DuplexChannel,
                 decision: "PolicyDecision") -> FlowConnection:
        """RESOLVING → ACTIVE once the channel pipeline is built."""
        flow.channel = channel
        flow.decision = decision
        label_channel(flow, channel)
        self.transition(flow, FlowState.ACTIVE, reason="connected")
        return flow

    def transition(self, flow: FlowConnection, new_state: FlowState,
                   reason: str = "") -> FlowConnection:
        """The single gate every state change passes through."""
        old = _check_transition(flow, new_state)
        flow.state = new_state
        self.transitions += 1
        recorder = _flowrecords.ACTIVE
        if recorder is not None:
            recorder.on_transition(flow.flow_id, old.value, new_state.value,
                                   self.env.now)
        _events.emit_transition(
            self.env, flow.flow_id, flow.src_name, flow.dst_name,
            old.value, new_state.value, reason=reason,
            generation=flow.generation,
        )
        if new_state is FlowState.CLOSED:
            self.closed_total += 1
            self._forget(flow)
        return flow

    def close(self, flow: FlowConnection, reason: str = "close") -> None:
        """Terminal transition + channel teardown (idempotent)."""
        if flow.state is FlowState.CLOSED:
            return
        self.transition(flow, FlowState.CLOSED, reason=reason)
        if flow.channel is not None:
            flow.channel.close()
        flow.resume()  # never leave senders parked on a dead gate

    def _forget(self, flow: FlowConnection) -> None:
        self._flows.pop(flow.flow_id, None)
        for name in {flow.src_name, flow.dst_name}:
            ids = self._by_endpoint.get(name)
            if ids is None:
                continue
            try:
                ids.remove(flow.flow_id)
            except ValueError:
                pass
            if not ids:
                del self._by_endpoint[name]


class ChannelFactory:
    """Owns the channel construction pipeline and message transplants.

    Construction: mechanism channel (via the hosts' agents) → optional
    middlebox wrap (paper §7 security) → optional per-tenant rate-limit
    wrap (paper §1 isolation).  Previously inlined in
    ``FreeFlowNetwork._build``; extracting it gives rebind/repair one
    shared, tested pipeline.
    """

    def __init__(self, network: "FreeFlowNetwork") -> None:
        self.network = network
        self.built = 0
        self.transplanted_messages = 0

    def build(self, src_name: str, dst_name: str,
              decision: "PolicyDecision") -> DuplexChannel:
        network = self.network
        orchestrator = network.orchestrator
        src = orchestrator.lookup(src_name).container
        dst = orchestrator.lookup(dst_name).container
        src_host = orchestrator.locate(src_name)
        dst_host = orchestrator.locate(dst_name)
        channel = build_channel(
            network.agent_for(src_host),
            network.agent_for(dst_host),
            decision.mechanism,
            crosses_vm_boundary=(src.vm is not dst.vm),
        )
        if network.middlebox is not None and network.inspect(src, dst):
            from .middlebox import wrap_channel

            channel = wrap_channel(
                channel, network.middlebox, src_host, dst_host
            )
        bucket_ab = network._tenant_bucket(src.tenant)
        bucket_ba = network._tenant_bucket(dst.tenant)
        if bucket_ab is not None or bucket_ba is not None:
            from ..transports.base import ChannelEnd
            from .ratelimit import RateLimitedLane

            if bucket_ab is not None:
                channel.lane_ab = RateLimitedLane(channel.lane_ab,
                                                  bucket_ab)
            if bucket_ba is not None:
                channel.lane_ba = RateLimitedLane(channel.lane_ba,
                                                  bucket_ba)
            channel.a = ChannelEnd(channel.lane_ab, channel.lane_ba)
            channel.b = ChannelEnd(channel.lane_ba, channel.lane_ab)
        self.built += 1
        return channel

    def transplant(self, old: DuplexChannel, new: DuplexChannel) -> int:
        """Move delivered-but-unconsumed messages onto the new lanes.

        Each message is *adopted* by the corresponding new lane: its
        stats count it (so ``in_flight`` stays conserved and delivery
        counters match what the lane will actually serve) and any open
        trace is re-keyed to the live flow.  Returns the number moved.
        """
        moved = 0
        for old_lane, new_lane in (
            (old.lane_ab, new.lane_ab),
            (old.lane_ba, new.lane_ba),
        ):
            items = list(old_lane.inbox.items)
            if not items:
                continue
            old_lane.inbox.items.clear()
            for message in items:
                new_lane.adopt(message)
                moved += 1
        self.transplanted_messages += moved
        return moved


class FlowReconciler:
    """Watch-driven control loop over the FlowTable.

    Subscribes to three feeds and converges the data plane on each
    change, Kubernetes-controller style:

    * ``/network/containers/`` (network orchestrator KV) — a changed
      placement triggers pause → drain → rebind → resume of the affected
      flows; a *first* sighting of a name triggers a repair pass over
      BROKEN flows (the replacement-container story, paper §2.1).
    * ``/cluster/hosts/`` (cluster KV) — a DELETE is a host failure:
      lost containers leave the overlay and their flows go BROKEN.
    * ``/network/nics/`` (network orchestrator KV) — a runtime NIC
      capability change re-decides every flow touching the host and
      rebinds only those whose mechanism actually changed.

    The primitives (``reconcile_container``, ``host_failed``,
    ``repair_flow`` …) are also directly callable, so the migration
    controller and ``FreeFlowNetwork``'s failure API share one
    implementation whether or not the watch pumps are running.
    """

    DRAIN_POLL_S = 100e-6
    SETTLE_POLL_S = 100e-6
    #: Default watch flush window.  0.0 still batches: every delivery in
    #: the same simulated instant (a lease-expiry cascade, a rack of
    #: host DELETEs) coalesces into one WatchBatch, with no added
    #: latency for the solitary-event case.
    COALESCE_S = 0.0

    def __init__(self, network: "FreeFlowNetwork",
                 backoff: Optional[Backoff] = None,
                 coalesce_s: Optional[float] = COALESCE_S) -> None:
        self.network = network
        self.env = network.env
        self.table = network.flows
        #: Flush window handed to the three watches (None = per-event
        #: delivery, the pre-batching behaviour).
        self.coalesce_s = coalesce_s
        #: Retry schedule for rebind/repair attempts.  Seeded (stream
        #: name, not wall clock), so runs are reproducible; pass a
        #: custom :class:`~repro.sim.backoff.Backoff` to retune.
        self.backoff = backoff or Backoff(
            RandomStream(0, "reconciler.backoff")
        )
        self.running = False
        self._watches: list = []
        self._procs: list = []
        #: name -> (host, generation) last seen on the container feed.
        self._locations: dict[str, tuple] = {}
        self._busy = 0
        self.rebinds = 0
        self.repairs = 0
        self.reconciliations = 0
        self.capability_rechecks = 0
        self.failures_handled = 0
        self.retries = 0
        self.gave_up = 0
        self.resyncs = 0

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "FlowReconciler":
        """Subscribe the three watches and start their pump processes."""
        if self.running:
            return self
        self.running = True
        orchestrator = self.network.orchestrator
        containers = orchestrator.kv.watch(
            "/network/containers/", include_existing=True,
            coalesce_s=self.coalesce_s,
        )
        hosts = self.network.cluster.watch_hosts(coalesce_s=self.coalesce_s)
        capabilities = orchestrator.watch_capabilities(
            coalesce_s=self.coalesce_s
        )
        self._watches = [containers, hosts, capabilities]
        self._procs = [
            self.env.process(self._container_pump(containers)),
            self.env.process(self._host_pump(hosts)),
            self.env.process(self._capability_pump(capabilities)),
        ]
        _events.emit(self.env, "reconciler.start")
        return self

    def stop(self) -> None:
        """Cancel the watches; parked pumps become inert."""
        if not self.running:
            return
        self.running = False
        for watch in self._watches:
            watch.cancel()
            watch.queue.items.clear()
        self._watches = []
        self._procs = []
        _events.emit(self.env, "reconciler.stop")

    def resync(self) -> int:
        """Recover after suspected missed watch deliveries (reconnect).

        A lossy or stalled control-plane connection can eat watch
        events; snapshot replay (:meth:`Watch.resync`) recovers missed
        PUTs but cannot express missed DELETEs, so this first diffs KV
        truth against the reconciler's last-seen view and synthesizes
        them: hosts our flows still believe in but absent from the
        liveness registry are treated as failed, and container names we
        track but the store no longer publishes are dropped.  Then each
        live watch replays its prefix, and the ordinary pumps converge
        the rest (moved placements, repair-unblocking arrivals) exactly
        as they would live events.  Returns the number of replayed
        events; follow with :meth:`wait_settled` to await convergence.
        """
        if not self.running:
            return 0
        self.resyncs += 1
        live_hosts = {
            key.rsplit("/", 1)[-1]
            for key in self.network.cluster.kv.keys("/cluster/hosts/")
        }
        believed = {
            host for host, _gen in self._locations.values()
            if host is not None
        }
        for host_name in sorted(believed - live_hosts):
            self.host_failed(host_name)
        published = {
            key.rsplit("/", 1)[-1]
            for key in self.network.orchestrator.kv.keys(
                "/network/containers/"
            )
        }
        for name in sorted(set(self._locations) - published):
            self._locations.pop(name, None)
        replayed = 0
        for watch in self._watches:
            # Precise-first: replay exactly the missed events (DELETEs
            # included) from the store's retained history; fall back to
            # the snapshot replay once the history has been compacted
            # past our last delivered revision.
            try:
                replayed += watch.resync(since=watch.last_revision)
            except CompactedRevision:
                replayed += watch.resync()
        _events.emit(self.env, "reconciler.resync", replayed=replayed)
        return replayed

    # -- watch pumps ---------------------------------------------------------

    @staticmethod
    def _events_of(item) -> tuple:
        """Normalize a queue item: coalesced batch or single event."""
        if type(item) is WatchBatch:
            return item.events
        return (item,)

    def _container_pump(self, watch):
        while True:
            item = yield watch.queue.get()
            if not self.running:
                return
            self._busy += 1
            try:
                arrived: list[str] = []
                moved: list[str] = []
                for event in self._events_of(item):
                    name = event.key.rsplit("/", 1)[-1]
                    if event.kind == "delete":
                        self._locations.pop(name, None)
                        continue
                    placement = (event.value.get("host"),
                                 event.value.get("generation"))
                    previous = self._locations.get(name)
                    self._locations[name] = placement
                    if previous is None:
                        # New (or replayed) endpoint: may unblock repairs.
                        arrived.append(name)
                    elif previous != placement:
                        moved.append(name)
                for name in arrived:
                    yield from self._repair_pass(name)
                if moved:
                    self.reconciliations += len(moved)
                    yield from self.reconcile_containers(moved)
            finally:
                self._busy -= 1

    def _host_pump(self, watch):
        while True:
            item = yield watch.queue.get()
            if not self.running:
                return
            self._busy += 1
            try:
                recheck: list[str] = []
                for event in self._events_of(item):
                    host_name = event.key.rsplit("/", 1)[-1]
                    if event.kind == "delete":
                        # Failure (explicit or lease expiry): synchronous,
                        # so a whole-rack batch breaks every lost flow
                        # before any rebind work starts.
                        self.host_failed(host_name)
                    elif host_name not in recheck:
                        # Admission or recovery: capabilities may differ
                        # from what flows were decided with.
                        recheck.append(host_name)
                for host_name in recheck:
                    yield from self.reconcile_capability(host_name)
            finally:
                self._busy -= 1

    def _capability_pump(self, watch):
        while True:
            item = yield watch.queue.get()
            if not self.running:
                return
            self._busy += 1
            try:
                recheck: list[str] = []
                for event in self._events_of(item):
                    host_name = event.key.rsplit("/", 1)[-1]
                    if host_name not in recheck:
                        recheck.append(host_name)
                for host_name in recheck:
                    yield from self.reconcile_capability(host_name)
            finally:
                self._busy -= 1

    # -- primitives ----------------------------------------------------------

    def drain(self, flows):
        """Generator: wait until ``flows`` have no in-flight messages.

        Two consecutive quiet polls — a send that had passed the pause
        gate may still be mid-pipeline on the first quiet sample.
        """
        quiet = 0
        while quiet < 2:
            live = [f for f in flows
                    if f.channel is not None
                    and f.state is not FlowState.CLOSED]
            if any(f.in_flight() > 0 for f in live):
                quiet = 0
            else:
                quiet += 1
            yield self.env.timeout(self.DRAIN_POLL_S)

    def _rebind_with_retry(self, flow: FlowConnection, reraise: bool = False):
        """Generator: :meth:`FreeFlowNetwork.rebind` with seeded backoff.

        A failed rebind leaves the flow BROKEN (the rebind path's own
        failure transition), so each retry is a legal BROKEN → REBINDING
        attempt after a jittered-exponential wait.  Returns the fresh
        decision; returns ``None`` when the flow moved on underneath us
        (:class:`FlowStateError`: closed, or claimed by another handler)
        or when retries are exhausted — the flow is then left BROKEN for
        a later repair pass.  With ``reraise=True`` exhaustion re-raises
        the last error instead (the contract of the direct repair API).
        """
        attempt = 0
        while True:
            try:
                decision = yield from self.network.rebind(flow)
                return decision
            except FlowStateError:
                if reraise:
                    raise
                return None
            except FreeFlowError as exc:
                if self.backoff.exhausted(attempt):
                    self.gave_up += 1
                    _events.emit(
                        self.env, "flow.rebind.abandon", flow=flow.flow_id,
                        error=type(exc).__name__, attempts=attempt + 1,
                    )
                    if reraise:
                        raise
                    return None
                self.retries += 1
                yield self.env.timeout(self.backoff.delay(attempt))
                attempt += 1

    def reconcile_container(self, name: str):
        """Generator: an endpoint moved — converge its flows.

        Singleton form of :meth:`reconcile_containers`; kept as the
        direct API the migration controller calls.
        """
        changes = yield from self.reconcile_containers((name,))
        return changes

    def reconcile_containers(self, names):
        """Generator: a batch of endpoints moved — converge their flows.

        Pauses (if not already paused), drains, rebinds and resumes
        every ACTIVE/PAUSED flow touching any of ``names`` — one
        pause → drain → rebind → resume cycle for the whole batch, so a
        coalesced watch delivery costs one drain wait instead of one per
        event.  Flows the caller paused stay paused (the migration
        controller owns its downtime window).  Returns
        ``[(flow, old, new)]`` mechanism changes.
        """
        network = self.network
        affected: list = []
        seen: set[int] = set()
        for name in names:
            network.invalidate(name)
            for flow in self.table.flows_for(name):
                if id(flow) in seen:
                    continue
                seen.add(id(flow))
                if flow.state in (FlowState.ACTIVE, FlowState.PAUSED):
                    affected.append(flow)
        changes: list = []
        if not affected:
            return changes
        paused_by_me = [flow for flow in affected if not flow.paused]
        for flow in paused_by_me:
            flow.pause(self.env)
        yield from self.drain(affected)
        for flow in affected:
            old = flow.mechanism
            decision = yield from self._rebind_with_retry(flow)
            if decision is None:
                continue
            self.rebinds += 1
            if decision.mechanism is not old:
                changes.append((flow, old, decision.mechanism))
        for flow in paused_by_me:
            flow.resume()
        return changes

    def reconcile_capability(self, host_name: str):
        """Generator: a host's registry capabilities changed.

        Re-decides every ACTIVE/PAUSED flow with an endpoint on the
        host; only flows whose fresh decision picks a *different*
        mechanism are paused/drained/rebound — e.g. disabling RDMA moves
        inter-host RDMA flows to kernel TCP while co-located shm pairs
        stay untouched.  Returns ``[(flow, old, new)]``.
        """
        self.capability_rechecks += 1
        network = self.network
        orchestrator = network.orchestrator
        stale: list = []
        fresh_by_id: dict[int, object] = {}
        for flow in self.table.open_flows():
            if flow.state not in (FlowState.ACTIVE, FlowState.PAUSED):
                continue
            try:
                hosts = {
                    orchestrator.lookup(flow.src_name).host_name,
                    orchestrator.lookup(flow.dst_name).host_name,
                }
            except UnknownContainer:
                continue
            if host_name not in hosts:
                continue
            network.invalidate(flow.src_name)
            network.invalidate(flow.dst_name)
            fresh = orchestrator.decide(flow.src_name, flow.dst_name)
            if fresh.mechanism is not flow.mechanism:
                stale.append(flow)
                fresh_by_id[id(flow)] = fresh.mechanism
        changes: list = []
        if not stale:
            return changes
        paused_by_me = [flow for flow in stale if not flow.paused]
        for flow in paused_by_me:
            flow.pause(self.env)
        yield from self.drain(stale)
        for flow in stale:
            old = flow.mechanism
            decision = yield from self._rebind_with_retry(flow)
            if decision is None:
                continue
            self.rebinds += 1
            changes.append((flow, old, decision.mechanism))
        for flow in paused_by_me:
            flow.resume()
        return changes

    def host_failed(self, host_name: str,
                    force_emit: bool = False) -> list[FlowConnection]:
        """A host died: evict its endpoints, break their flows.

        Synchronous and idempotent — safe to call both directly (the
        ``FreeFlowNetwork.handle_host_failure`` client) and from the
        host-liveness pump reacting to the same failure.  Returns the
        flows newly transitioned to BROKEN.
        """
        network = self.network
        orchestrator = network.orchestrator
        lost = orchestrator.containers_on(host_name)
        for name in lost:
            network._vnics.pop(name, None)
            orchestrator.deregister(name)
            network.invalidate(name)
            self._locations.pop(name, None)
        network._agents.pop(host_name, None)
        broken: list[FlowConnection] = []
        seen: set[int] = set()
        # Per-endpoint index instead of a full flow-table scan: a dead
        # host costs O(its containers' flows), not O(all flows) — at
        # 100k fleet-wide flows the difference is the whole budget.
        for name in lost:
            for flow in self.table.flows_for(name):
                if id(flow) in seen:
                    continue
                seen.add(id(flow))
                if flow.state in (FlowState.BROKEN, FlowState.CLOSED):
                    continue
                self.table.transition(flow, FlowState.BROKEN,
                                      reason=f"host {host_name} failed")
                if flow.channel is not None:
                    for lane in (flow.channel.lane_ab,
                                 flow.channel.lane_ba):
                        lane.eject_receivers(
                            ConnectionReset(f"host {host_name} failed")
                        )
                    flow.channel.close()
                broken.append(flow)
        if lost or broken or force_emit:
            self.failures_handled += 1
            _events.emit(self.env, "host.failure", host=host_name,
                         containers_lost=len(lost),
                         connections_broken=len(broken))
        return broken

    def repair_flow(self, flow: FlowConnection):
        """Generator: rebind a BROKEN flow whose endpoints are back.

        The state machine enforces legality: repairing a flow that never
        broke raises :class:`~repro.errors.FlowStateError` at the
        BROKEN → REBINDING gate.  Transient build failures retry on the
        seeded backoff schedule; exhaustion re-raises the last error.
        """
        decision = yield from self._rebind_with_retry(flow, reraise=True)
        self.repairs += 1
        _events.emit(self.env, "flow.repair", src=flow.src_name,
                     dst=flow.dst_name,
                     mechanism=decision.mechanism.value)
        return decision

    def _repair_pass(self, name: str):
        """Generator: a newly attached endpoint may unblock repairs."""
        network = self.network
        for flow in list(self.table.flows_for(name)):
            if flow.state is not FlowState.BROKEN:
                continue
            if (flow.src_name in network._vnics
                    and flow.dst_name in network._vnics):
                yield from self.repair_flow(flow)

    def wait_settled(self, name: Optional[str] = None):
        """Generator: park until the reconciler has converged.

        Converged = no queued watch events, no handler mid-flight, and
        no (matching) flow in a transitional state — for two consecutive
        polls, so an event consumed but not yet handled cannot slip
        through the gap.
        """
        quiet = 0
        while quiet < 2:
            yield self.env.timeout(self.SETTLE_POLL_S)
            if self._busy or any(w.has_pending() for w in self._watches):
                quiet = 0
                continue
            flows = (self.table.flows_for(name) if name is not None
                     else self.table.open_flows())
            if any(f.state is FlowState.REBINDING for f in flows):
                quiet = 0
                continue
            quiet += 1

"""Socket API translated onto RDMA Verbs (paper §4.2's abstraction).

"There are already libraries available to translate TCP/IP [rsocket]
and MPI APIs to RDMA Verbs semantics" — this module is that translation
layer for sockets: ``listen``/``accept``/``connect`` plus byte-stream
``send``/``recv``, implemented entirely with verbs SEND/RECV on a
connected queue pair.

Translation costs are explicit so bench E16 can measure the tax:

* a fixed per-call CPU cost (:data:`SOCKET_TRANSLATION_CYCLES`);
* a bounce-buffer copy for *small* sends (below
  :data:`ZERO_COPY_THRESHOLD_BYTES`), mirroring how rsocket copies small
  payloads into pre-registered buffers but maps large ones zero-copy.

Flow control falls out of verbs semantics: the receiving socket keeps a
window of pre-posted RECVs and reposts one per consumed message, so a
slow receiver exerts RNR backpressure on the sender.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import TYPE_CHECKING, Any, Optional

from ..errors import ConnectionRefused, SocketError
from ..netstack.packet import EndpointAddr
from ..sim.resources import Store
from ..telemetry import registry as _registry
from .verbs import Opcode, WorkRequest

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.container import Container
    from .network import FreeFlowNetwork

__all__ = [
    "SOCKET_TRANSLATION_CYCLES",
    "ZERO_COPY_THRESHOLD_BYTES",
    "SocketLayer",
    "FreeFlowListener",
    "FreeFlowSocket",
]

#: CPU cycles per socket call spent translating to verbs semantics.
SOCKET_TRANSLATION_CYCLES = 500.0

#: Sends below this size are copied into a registered bounce buffer;
#: larger sends are transferred zero-copy (rsocket riomap behaviour).
ZERO_COPY_THRESHOLD_BYTES = 16 * 1024

#: Largest single verbs SEND a socket issues; bigger writes fragment.
MAX_FRAGMENT_BYTES = 1024 * 1024

#: Pre-posted receive window per socket (messages).
RECV_CREDITS = 64

#: Immediate-data tag marking a FIN (orderly shutdown) control message.
FIN_IMM = 0x46494E


class _Fin:
    """Sentinel payload for the FIN control message."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<FIN>"


_FIN = _Fin()

_wr_ids = itertools.count(1)


class SocketLayer:
    """Per-network registry of listening sockets."""

    def __init__(self, network: "FreeFlowNetwork") -> None:
        self.network = network
        self.env = network.env
        self._listeners: dict[EndpointAddr, "FreeFlowListener"] = {}

    def socket(self, container: "Container") -> "FreeFlowSocket":
        """An unconnected socket owned by ``container``."""
        return FreeFlowSocket(self, container)

    def listen(
        self, container: "Container", port: int, backlog: int = 16
    ) -> "FreeFlowListener":
        """Bind+listen on (container's overlay IP, port)."""
        if container.ip is None:
            raise SocketError(
                f"{container.name} has no overlay IP; attach it first"
            )
        addr = EndpointAddr(container.ip, port)
        if addr in self._listeners:
            raise SocketError(f"address {addr} already in use")
        listener = FreeFlowListener(self, container, addr, backlog)
        self._listeners[addr] = listener
        return listener

    def _lookup_listener(self, addr: EndpointAddr) -> "FreeFlowListener":
        listener = self._listeners.get(addr)
        if listener is None or listener.closed:
            raise ConnectionRefused(f"nothing listening at {addr}")
        return listener

    def _unbind(self, addr: EndpointAddr) -> None:
        self._listeners.pop(addr, None)


class FreeFlowListener:
    """A passive socket: accepts inbound FreeFlow connections."""

    def __init__(
        self,
        layer: SocketLayer,
        container: "Container",
        addr: EndpointAddr,
        backlog: int,
    ) -> None:
        self.layer = layer
        self.container = container
        self.addr = addr
        self.closed = False
        self._pending: Store = Store(layer.env, capacity=backlog)

    def accept(self):
        """Blocking accept (generator): returns a connected socket."""
        if self.closed:
            raise SocketError("listener is closed")
        sock = yield self._pending.get()
        return sock

    def _enqueue(self, sock: "FreeFlowSocket"):
        yield self._pending.put(sock)

    def close(self) -> None:
        self.closed = True
        self.layer._unbind(self.addr)


class FreeFlowSocket:
    """A connected byte-stream over verbs SEND/RECV."""

    def __init__(self, layer: SocketLayer, container: "Container") -> None:
        self.layer = layer
        self.container = container
        self.env = layer.env
        self.vnic = layer.network.vnic(container.name)
        self.connected = False
        self.closed = False
        self.peer_addr: Optional[EndpointAddr] = None
        self.local_addr: Optional[EndpointAddr] = None
        self._qp = None
        self._recv_mr = None
        self._rx_buffer: deque = deque()  # (remaining_bytes, payload)
        self._rx_wc: Optional[Store] = None
        self.mechanism = None
        #: Set once the peer performed an orderly shutdown (FIN seen).
        self.peer_closed = False

    # -- connection setup ------------------------------------------------------------

    def _make_endpoint(self):
        pd = self.vnic.alloc_pd()
        send_cq = self.vnic.create_cq()
        recv_cq = self.vnic.create_cq(depth=4 * RECV_CREDITS)
        qp = self.vnic.create_qp(pd, send_cq, recv_cq)
        mr = self.vnic.reg_mr(pd, MAX_FRAGMENT_BYTES)
        return qp, mr

    def connect(self, ip: str, port: int):
        """Active open (generator): rendezvous through the orchestrator."""
        if self.connected:
            raise SocketError("socket is already connected")
        record = self.layer.network.orchestrator.lookup_by_ip(ip)
        addr = EndpointAddr(ip, port)
        listener = self.layer._lookup_listener(addr)
        if listener.container is not record.container:
            raise SocketError(
                f"listener at {addr} does not belong to the IP's owner"
            )
        server_sock = FreeFlowSocket(self.layer, listener.container)

        self._qp, self._recv_mr = self._make_endpoint()
        server_sock._qp, server_sock._recv_mr = server_sock._make_endpoint()

        decision = yield from self.layer.network.connect(
            self._qp, server_sock._qp
        )
        self.mechanism = server_sock.mechanism = decision.mechanism
        for sock in (self, server_sock):
            sock._post_initial_credits()
            sock.connected = True
        self.peer_addr = addr
        self.local_addr = EndpointAddr(self.container.ip or "0.0.0.0", 0)
        server_sock.local_addr = addr
        server_sock.peer_addr = self.local_addr
        yield from listener._enqueue(server_sock)
        return decision

    def _post_initial_credits(self) -> None:
        if self._qp is None or self._recv_mr is None:
            raise SocketError(
                "socket has no queue pair / receive region — initial "
                "credits are only posted after the connect handshake "
                "allocated both"
            )
        for _ in range(RECV_CREDITS):
            self._qp.post_recv(WorkRequest(
                opcode=Opcode.RECV, length=MAX_FRAGMENT_BYTES,
                wr_id=next(_wr_ids), local_mr=self._recv_mr,
            ))

    # -- data transfer ---------------------------------------------------------------

    def send(self, nbytes: int, payload: Any = None):
        """Write ``nbytes`` to the stream (generator; returns bytes sent)."""
        self._require_open()
        if nbytes <= 0:
            raise SocketError(f"send size must be positive, got {nbytes}")
        host = self.container.host
        remaining = nbytes
        first = True
        _registry.counter_inc("repro.socket.sends")
        _registry.counter_inc("repro.socket.send_bytes", nbytes)
        while remaining > 0:
            fragment = min(remaining, MAX_FRAGMENT_BYTES)
            yield from host.cpu.execute(SOCKET_TRANSLATION_CYCLES)
            if fragment < ZERO_COPY_THRESHOLD_BYTES:
                # Bounce-buffer copy into registered memory.
                _registry.counter_inc("repro.socket.bounce_copies")
                yield from host.memcpy(fragment)
            wr = WorkRequest(
                opcode=Opcode.SEND, length=fragment,
                wr_id=next(_wr_ids),
                payload=payload if first else None,
                signaled=False,
            )
            yield from self._qp.post_send(wr)
            remaining -= fragment
            first = False
        return nbytes

    def recv(self, max_bytes: int = 1 << 30):
        """Read up to ``max_bytes`` from the stream (generator).

        Returns ``(nbytes, payload)`` where payload is the application
        object attached to the first consumed message (stream semantics:
        fragments may be combined or split exactly like TCP).  After the
        peer shuts down, returns ``(0, None)`` — the classic EOF.
        """
        self._require_open()
        if max_bytes <= 0:
            raise SocketError(f"recv size must be positive, got {max_bytes}")
        host = self.container.host
        _registry.counter_inc("repro.socket.recvs")
        yield from host.cpu.execute(SOCKET_TRANSLATION_CYCLES)
        if not self._rx_buffer:
            if self.peer_closed:
                return 0, None
            yield from self._fill_rx_buffer()
            if not self._rx_buffer and self.peer_closed:
                return 0, None
        got = 0
        payload = None
        while self._rx_buffer and got < max_bytes:
            remaining, data = self._rx_buffer[0]
            take = min(remaining, max_bytes - got)
            got += take
            if payload is None:
                payload = data
            if take == remaining:
                self._rx_buffer.popleft()
            else:
                self._rx_buffer[0] = (remaining - take, data)
        return got, payload

    def recv_exactly(self, nbytes: int):
        """Loop :meth:`recv` until exactly ``nbytes`` arrived (generator)."""
        got = 0
        payload = None
        while got < nbytes:
            chunk, data = yield from self.recv(nbytes - got)
            if payload is None:
                payload = data
            got += chunk
        return got, payload

    def _fill_rx_buffer(self):
        """Block for the next completed RECV and repost its credit."""
        if self._qp is None:
            raise SocketError(
                "socket has no queue pair — receives require a connected "
                "socket (invariant: _require_open precedes buffer fills)"
            )
        wc = yield from self._qp.recv_cq.wait()
        if not wc.ok:
            raise SocketError(f"receive failed: {wc.status.value}")
        if wc.payload is _FIN or wc.imm_data == FIN_IMM:
            self.peer_closed = True
            return
        self._rx_buffer.append((wc.byte_len, wc.payload))
        self._qp.post_recv(WorkRequest(
            opcode=Opcode.RECV, length=MAX_FRAGMENT_BYTES,
            wr_id=next(_wr_ids), local_mr=self._recv_mr,
        ))

    def _require_open(self) -> None:
        if self.closed:
            raise SocketError("socket is closed")
        if not self.connected:
            raise SocketError("socket is not connected")

    def shutdown(self):
        """Orderly shutdown (generator): sends FIN; the peer's next
        ``recv`` after draining buffered data returns EOF."""
        if not self.connected or self.closed:
            self.close()
            return
        yield from self.container.host.cpu.execute(SOCKET_TRANSLATION_CYCLES)
        yield from self._qp.post_send(WorkRequest(
            opcode=Opcode.SEND, length=1, wr_id=next(_wr_ids),
            payload=_FIN, imm_data=FIN_IMM, signaled=False,
        ))
        self.close()

    def close(self) -> None:
        """Abrupt local close (no FIN); use :meth:`shutdown` for EOF."""
        self.closed = True
        self.connected = False

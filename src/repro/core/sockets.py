"""Socket API translated onto RDMA Verbs (paper §4.2's abstraction).

"There are already libraries available to translate TCP/IP [rsocket]
and MPI APIs to RDMA Verbs semantics" — this module is that translation
layer for sockets: ``listen``/``accept``/``connect`` plus byte-stream
``send``/``recv``.

Two data paths are implemented:

* the **streaming path** (default; TSoR-style): each direction of a
  connection owns a :class:`~repro.core.ringbuf.RingBuffer` inside a
  pre-registered MR on the receiver.  ``send()`` appends bytes to a
  staging queue and rings a doorbell; a per-socket flusher coalesces
  everything staged into **one** RDMA ``WRITE_WITH_IMM`` that carries
  the batch and the new tail pointer, so many small sends cost one
  post + one NIC op.  The receiver's dispatcher drains completions in
  batches (:meth:`CompletionQueue.wait_batch`) and wakes every parked
  ``recv`` in a single scheduler pass.  Flow control is credit-based:
  ring space is debited at ``send`` time from a credit tank and the
  receiver advertises consumed bytes back (one 8-byte WRITE per
  ~quarter ring), so a slow consumer backpressures the sender without
  per-message handshakes.  Sends at or above
  :data:`ZERO_COPY_THRESHOLD_BYTES` bypass the ring entirely — a
  direct WRITE into a bulk landing MR — with a FIFO send lock keeping
  the two paths in order.

* the **legacy path** (``SocketLayer(network, streaming=False)``): one
  verbs SEND per ``send()`` fragment and one blocking ``cq.wait()``
  per received message — the per-message regime the streaming path
  exists to beat; kept as the measured baseline for
  ``benchmarks/bench_api_translation.py --rpc`` (BENCH_sockets.json).

Translation costs stay explicit so bench E16 can measure the tax: a
fixed per-call CPU cost (:data:`SOCKET_TRANSLATION_CYCLES`) and a
bounce copy into registered memory for ring-path bytes (aggregated to
one ``memcpy`` per flushed batch).
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import TYPE_CHECKING, Any, Optional

from ..errors import (
    ConnectionRefused,
    EngineInvariantError,
    SocketError,
    SocketShutdownError,
)
from ..netstack.packet import EndpointAddr
from ..sim.resources import Resource, Store, Tank
from ..telemetry import registry as _registry
from .ringbuf import RingBuffer
from .verbs import Opcode, WorkRequest

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.container import Container
    from .network import FreeFlowNetwork

__all__ = [
    "SOCKET_TRANSLATION_CYCLES",
    "ZERO_COPY_THRESHOLD_BYTES",
    "MAX_FRAGMENT_BYTES",
    "RECV_CREDITS",
    "RECV_MAX_BYTES",
    "RING_BYTES",
    "CREDIT_RETURN_BYTES",
    "RING_WRITE_PIPELINE",
    "SocketLayer",
    "FreeFlowListener",
    "FreeFlowSocket",
]

#: CPU cycles per socket call spent translating to verbs semantics.
SOCKET_TRANSLATION_CYCLES = 500.0

#: Sends below this size go through the ring (bounce copy into the
#: registered window); larger sends are transferred zero-copy with a
#: direct WRITE (rsocket riomap behaviour).
ZERO_COPY_THRESHOLD_BYTES = 16 * 1024

#: Largest single verbs transfer a socket issues; bigger writes fragment.
MAX_FRAGMENT_BYTES = 1024 * 1024

#: Pre-posted receive window per socket (messages).
RECV_CREDITS = 64

#: Default ``recv`` cap: effectively "everything buffered".  1 GiB is
#: deliberately far above any single buffered amount (the ring is
#: :data:`RING_BYTES` and large transfers fragment at
#: :data:`MAX_FRAGMENT_BYTES`), so the default preserves classic
#: ``recv`` semantics — return whatever is available — without a magic
#: number buried in the signature.
RECV_MAX_BYTES = 1 << 30

#: Per-direction streaming ring capacity (the receiver-side window the
#: credit protocol hands out).
RING_BYTES = 256 * 1024

#: The receiver advertises freed ring space once this many consumed
#: bytes accumulate — one credit WRITE per quarter ring instead of one
#: ack per message.  Deadlock-free because a blocked sender implies at
#: least ``RING_BYTES - ZERO_COPY_THRESHOLD_BYTES`` un-advertised bytes
#: sit at the receiver, far above this threshold, so consuming them is
#: guaranteed to trigger an update.
CREDIT_RETURN_BYTES = RING_BYTES // 4

#: Ring WRITEs the flusher keeps in flight before reaping send
#: completions.  This is the coalescing governor: the flusher paces
#: itself to the channel's actual drain rate, so while one WRITE is on
#: the wire new ``send()`` calls pile into the staging queue and the
#: next WRITE carries all of them.  Large enough to cover the ack
#: latency (the channel never idles), small enough that backpressure
#: reaches the stager within a few batches.
RING_WRITE_PIPELINE = 4

#: Size of the control MR each socket exposes (credit cell + FIN cell).
_CTRL_BYTES = 16
_CTRL_CREDIT_OFFSET = 0
_CTRL_FIN_OFFSET = 8
_CREDIT_MSG_BYTES = 8

#: Immediate-data tags for the streaming protocol's control plane.
FIN_IMM = 0x46494E     # "FIN": orderly shutdown
DATA_IMM = 0x444154    # "DAT": coalesced ring batch
LARGE_IMM = 0x4C4752   # "LGR": zero-copy large transfer
CREDIT_IMM = 0x435244  # "CRD": cumulative-consumed credit update


class _Fin:
    """Sentinel payload for the FIN control message."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<FIN>"


_FIN = _Fin()


class _RingBatch:
    """Payload of one coalesced ring WRITE: the application chunks it
    carries, in stream order.  ``chunks`` is ``[(nbytes, payload)]``;
    the WRITE's ``length`` is their sum and doubles as the tail-pointer
    advance the receiver applies (piggybacked tail update)."""

    __slots__ = ("chunks",)

    def __init__(self, chunks: list) -> None:
        self.chunks = chunks

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<RingBatch {len(self.chunks)} chunks>"


_wr_ids = itertools.count(1)


class SocketLayer:
    """Per-network registry of listening sockets.

    ``streaming`` selects the data path for every socket the layer
    creates: the ring-buffered streaming protocol (default) or the
    legacy one-SEND-per-message translation.
    """

    def __init__(self, network: "FreeFlowNetwork",
                 streaming: bool = True) -> None:
        self.network = network
        self.env = network.env
        self.streaming = streaming
        self._listeners: dict[EndpointAddr, "FreeFlowListener"] = {}

    def socket(self, container: "Container") -> "FreeFlowSocket":
        """An unconnected socket owned by ``container``."""
        return FreeFlowSocket(self, container)

    def listen(
        self, container: "Container", port: int, backlog: int = 16
    ) -> "FreeFlowListener":
        """Bind+listen on (container's overlay IP, port)."""
        if container.ip is None:
            raise SocketError(
                f"{container.name} has no overlay IP; attach it first"
            )
        addr = EndpointAddr(container.ip, port)
        if addr in self._listeners:
            raise SocketError(f"address {addr} already in use")
        listener = FreeFlowListener(self, container, addr, backlog)
        self._listeners[addr] = listener
        return listener

    def _lookup_listener(self, addr: EndpointAddr) -> "FreeFlowListener":
        listener = self._listeners.get(addr)
        if listener is None or listener.closed:
            raise ConnectionRefused(f"nothing listening at {addr}")
        return listener

    def _unbind(self, addr: EndpointAddr) -> None:
        self._listeners.pop(addr, None)


class FreeFlowListener:
    """A passive socket: accepts inbound FreeFlow connections."""

    def __init__(
        self,
        layer: SocketLayer,
        container: "Container",
        addr: EndpointAddr,
        backlog: int,
    ) -> None:
        self.layer = layer
        self.container = container
        self.addr = addr
        self.closed = False
        self._pending: Store = Store(layer.env, capacity=backlog)

    def accept(self):
        """Blocking accept (generator): returns a connected socket."""
        if self.closed:
            raise SocketError("listener is closed")
        sock = yield self._pending.get()
        return sock

    def _enqueue(self, sock: "FreeFlowSocket"):
        yield self._pending.put(sock)

    def close(self) -> None:
        self.closed = True
        self.layer._unbind(self.addr)


class FreeFlowSocket:
    """A connected byte-stream over verbs (streaming WRITEs or SEND/RECV)."""

    def __init__(self, layer: SocketLayer, container: "Container") -> None:
        self.layer = layer
        self.container = container
        self.env = layer.env
        self.vnic = layer.network.vnic(container.name)
        self.streaming = layer.streaming
        self.connected = False
        self.closed = False
        self.peer_addr: Optional[EndpointAddr] = None
        self.local_addr: Optional[EndpointAddr] = None
        self._qp = None
        self._recv_mr = None
        #: (remaining_bytes, payload, from_ring) in stream order.
        self._rx_buffer: deque = deque()
        self.mechanism = None
        #: Set once the peer performed an orderly shutdown (FIN seen).
        self.peer_closed = False
        #: Set once we sent our FIN (shutdown() called locally).
        self._fin_sent = False
        # -- streaming state (populated by the connect handshake) -----
        self._rx_ring: Optional[RingBuffer] = None   # our inbound window
        self._tx_ring: Optional[RingBuffer] = None   # mirror of peer's
        self._rx_ring_mr = None
        self._bulk_mr = None
        self._ctrl_mr = None
        self._peer_ring_rkey: Optional[int] = None
        self._peer_bulk_rkey: Optional[int] = None
        self._peer_ctrl_rkey: Optional[int] = None
        self._tx_credits: Optional[Tank] = None
        self._tx_lock: Optional[Resource] = None
        self._staged: deque = deque()   # (nbytes, payload) awaiting flush
        self._staged_bytes = 0
        self._ring_writes_in_flight = 0
        #: Bytes between credit debit and staging (a sender parked in
        #: ``_send_ring`` holds its grant for one scheduler step before
        #: appending); the sanitizer's ring-conservation check uses this
        #: to bound the debit/staged gap exactly.
        self._credit_debt_pending = 0
        self._doorbell = None
        self._flush_busy = False
        self._idle_waiters: list = []
        self._rx_waiters: list = []
        self._rx_error: Optional[SocketError] = None
        #: Cumulative ring bytes this side consumed / already advertised.
        self._ring_consumed = 0
        self._credits_returned = 0
        #: Highest cumulative-consumed counter seen from the peer.
        self._peer_consumed_seen = 0

    # -- connection setup ------------------------------------------------------------

    def _make_endpoint(self) -> None:
        pd = self.vnic.alloc_pd()
        send_cq = self.vnic.create_cq()
        recv_cq = self.vnic.create_cq(depth=4 * RECV_CREDITS)
        self._qp = self.vnic.create_qp(pd, send_cq, recv_cq)
        self._recv_mr = self.vnic.reg_mr(pd, MAX_FRAGMENT_BYTES)
        if self.streaming:
            self._rx_ring_mr = self.vnic.reg_mr(pd, RING_BYTES)
            self._rx_ring = RingBuffer(RING_BYTES, region=self._rx_ring_mr)
            self._bulk_mr = self.vnic.reg_mr(pd, MAX_FRAGMENT_BYTES)
            self._ctrl_mr = self.vnic.reg_mr(pd, _CTRL_BYTES)

    def _wire_streaming_peer(self, peer: "FreeFlowSocket") -> None:
        """Exchange ring/bulk/control rkeys (the connect-time handshake
        a real implementation would carry in the CM private data)."""
        self._peer_ring_rkey = peer._rx_ring_mr.rkey
        self._peer_bulk_rkey = peer._bulk_mr.rkey
        self._peer_ctrl_rkey = peer._ctrl_mr.rkey
        self._tx_ring = RingBuffer(RING_BYTES)
        self._tx_credits = Tank(
            self.env, capacity=RING_BYTES, initial=RING_BYTES,
            label=f"socket.{self.container.name}.tx-credits")
        self._tx_lock = Resource(
            self.env, capacity=1,
            label=f"socket.{self.container.name}.tx-lock")
        self._doorbell = self.env.event()

    def _start_streaming(self) -> None:
        self.env.process(self._flusher())
        self.env.process(self._dispatcher())

    def connect(self, ip: str, port: int):
        """Active open (generator): rendezvous through the orchestrator."""
        if self.connected:
            raise SocketError("socket is already connected")
        record = self.layer.network.orchestrator.lookup_by_ip(ip)
        addr = EndpointAddr(ip, port)
        listener = self.layer._lookup_listener(addr)
        if listener.container is not record.container:
            raise SocketError(
                f"listener at {addr} does not belong to the IP's owner"
            )
        server_sock = FreeFlowSocket(self.layer, listener.container)

        self._make_endpoint()
        server_sock._make_endpoint()

        decision = yield from self.layer.network.connect(
            self._qp, server_sock._qp
        )
        self.mechanism = server_sock.mechanism = decision.mechanism
        if self.streaming:
            self._wire_streaming_peer(server_sock)
            server_sock._wire_streaming_peer(self)
        for sock in (self, server_sock):
            sock._post_initial_credits()
            sock.connected = True
            if sock.streaming:
                sock._start_streaming()
        self.peer_addr = addr
        self.local_addr = EndpointAddr(self.container.ip or "0.0.0.0", 0)
        server_sock.local_addr = addr
        server_sock.peer_addr = self.local_addr
        yield from listener._enqueue(server_sock)
        return decision

    def _post_initial_credits(self) -> None:
        if self._qp is None or self._recv_mr is None:
            raise SocketError(
                "socket has no queue pair / receive region — initial "
                "credits are only posted after the connect handshake "
                "allocated both"
            )
        for _ in range(RECV_CREDITS):
            self._qp.post_recv(WorkRequest(
                opcode=Opcode.RECV, length=MAX_FRAGMENT_BYTES,
                wr_id=next(_wr_ids), local_mr=self._recv_mr,
            ))

    # -- data transfer ---------------------------------------------------------------

    def send(self, nbytes: int, payload: Any = None):
        """Write ``nbytes`` to the stream (generator; returns bytes sent)."""
        self._require_open()
        if nbytes <= 0:
            raise SocketError(f"send size must be positive, got {nbytes}")
        _registry.counter_inc("repro.socket.sends")
        _registry.counter_inc("repro.socket.send_bytes", nbytes)
        if not self.streaming:
            yield from self._send_legacy(nbytes, payload)
            return nbytes
        host = self.container.host
        # FIFO lock: ring-path and zero-copy sends stay in stream order.
        with self._tx_lock.request() as claim:
            yield claim
            yield from host.cpu.execute(SOCKET_TRANSLATION_CYCLES)
            if nbytes >= ZERO_COPY_THRESHOLD_BYTES:
                yield from self._send_large(nbytes, payload)
            else:
                yield from self._send_ring(nbytes, payload)
        return nbytes

    def _send_ring(self, nbytes: int, payload: Any):
        """Small send: debit ring credits, stage, ring the doorbell."""
        self._credit_debt_pending += nbytes
        yield self._tx_credits.get(nbytes)
        self._credit_debt_pending -= nbytes
        self._staged.append((nbytes, payload))
        self._staged_bytes += nbytes
        _registry.counter_inc("repro.socket.ring_appends")
        if not self._doorbell.triggered:
            self._doorbell.succeed()

    def _send_large(self, nbytes: int, payload: Any):
        """Zero-copy send: drain the ring first (ordering), then WRITE
        straight into the peer's bulk MR, fragmenting at
        :data:`MAX_FRAGMENT_BYTES`."""
        yield from self._await_tx_idle()
        remaining = nbytes
        first = True
        while remaining > 0:
            fragment = min(remaining, MAX_FRAGMENT_BYTES)
            _registry.counter_inc("repro.socket.large_writes")
            yield from self._qp.post_send(WorkRequest(
                opcode=Opcode.WRITE_WITH_IMM, length=fragment,
                wr_id=next(_wr_ids), remote_key=self._peer_bulk_rkey,
                remote_offset=0, payload=payload if first else None,
                imm_data=LARGE_IMM, signaled=False,
            ))
            remaining -= fragment
            first = False

    def _send_legacy(self, nbytes: int, payload: Any):
        """Per-message path: one verbs SEND (and one translation charge +
        bounce copy) per fragment."""
        host = self.container.host
        remaining = nbytes
        first = True
        while remaining > 0:
            fragment = min(remaining, MAX_FRAGMENT_BYTES)
            yield from host.cpu.execute(SOCKET_TRANSLATION_CYCLES)
            if fragment < ZERO_COPY_THRESHOLD_BYTES:
                _registry.counter_inc("repro.socket.bounce_copies")
                yield from host.memcpy(fragment)
            yield from self._qp.post_send(WorkRequest(
                opcode=Opcode.SEND, length=fragment,
                wr_id=next(_wr_ids),
                payload=payload if first else None,
                signaled=False,
            ))
            remaining -= fragment
            first = False

    # -- streaming: sender-side flusher --------------------------------------------

    def _flusher(self):
        """Doorbell-driven coalescer: one pass drains everything staged
        into as few WRITEs as wrap boundaries allow."""
        while True:
            yield self._doorbell
            self._doorbell = self.env.event()
            self._flush_busy = True
            try:
                yield from self._flush_staged()
            finally:
                self._flush_busy = False
                self._notify_tx_idle()

    def _flush_staged(self):
        host = self.container.host
        while self._staged:
            if self._ring_writes_in_flight >= RING_WRITE_PIPELINE:
                # Pace to the channel: while we wait for a completion,
                # more sends stage up and the next batch grows — this
                # wait is where the coalescing actually comes from.
                yield from self._reap_ring_writes()
                continue
            take, chunks = self._collect_batch()
            _registry.counter_inc("repro.socket.ring_writes")
            _registry.counter_inc("repro.socket.ring_write_bytes", take)
            # Reserve the ring range in the same scheduler step as the
            # un-staging (ring conservation stays checkable), then do
            # one aggregated bounce copy into the registered window.
            offset = self._tx_ring.append(take)
            yield from host.memcpy(take)
            yield from self._qp.post_send(WorkRequest(
                opcode=Opcode.WRITE_WITH_IMM, length=take,
                wr_id=next(_wr_ids), remote_key=self._peer_ring_rkey,
                remote_offset=offset, payload=_RingBatch(chunks),
                imm_data=DATA_IMM, signaled=True,
            ))
            self._ring_writes_in_flight += 1

    def _reap_ring_writes(self):
        """Drain one burst of ring-WRITE send completions (batched)."""
        wcs = yield from self._qp.send_cq.wait_batch()
        self._ring_writes_in_flight -= len(wcs)
        for wc in wcs:
            if not wc.ok:
                self._rx_error = SocketError(
                    f"ring write failed: {wc.status.value}"
                )

    def _collect_batch(self) -> tuple:
        """Pop staged chunks up to the wrap boundary (and the fragment
        cap) so the batch lands in one contiguous MR range."""
        budget = min(self._tx_ring.contiguous(), self._staged_bytes,
                     MAX_FRAGMENT_BYTES)
        chunks: list = []
        take = 0
        while self._staged and take < budget:
            n, p = self._staged[0]
            piece = min(n, budget - take)
            if piece == n:
                self._staged.popleft()
                chunks.append((n, p))
            else:
                # Split at the boundary; the payload rides the first
                # piece (stream semantics attach it to the first byte).
                self._staged[0] = (n - piece, None)
                chunks.append((piece, p))
            take += piece
        self._staged_bytes -= take
        return take, chunks

    def _tx_idle(self) -> bool:
        return not self._staged and not self._flush_busy

    def _await_tx_idle(self):
        """Generator: park until the flusher drained every staged byte
        (zero-copy sends and FIN must not overtake ring data)."""
        while not self._tx_idle():
            event = self.env.event()
            self._idle_waiters.append(event)
            yield event

    def _notify_tx_idle(self) -> None:
        if self._tx_idle() and self._idle_waiters:
            waiters = list(self._idle_waiters)
            self._idle_waiters.clear()
            for event in waiters:
                event.succeed()

    # -- streaming: receiver-side dispatcher ----------------------------------------

    def _dispatcher(self):
        """Batched completion pump: one CQ wake applies a whole burst of
        landed WRITEs and wakes every parked ``recv`` in one pass."""
        while True:
            wcs = yield from self._qp.recv_cq.wait_batch()
            self._apply_completions(wcs)

    def _apply_completions(self, wcs: list) -> int:
        """Apply one drained CQE batch; returns the receives reposted.

        Kept as a plain (non-generator) method so the runtime sanitizer
        can wrap it and re-check ring conservation after every batch.
        """
        reposts = 0
        for wc in wcs:
            if not wc.ok:
                self._rx_error = SocketError(
                    f"receive failed: {wc.status.value}"
                )
                continue
            reposts += 1
            imm = wc.imm_data
            if imm == DATA_IMM:
                batch: _RingBatch = wc.payload
                # Piggybacked tail update: the WRITE's byte count *is*
                # the producer's tail advance.
                self._rx_ring.append(wc.byte_len)
                for n, p in batch.chunks:
                    self._rx_buffer.append((n, p, True))
            elif imm == LARGE_IMM:
                self._rx_buffer.append((wc.byte_len, wc.payload, False))
            elif imm == CREDIT_IMM:
                self._apply_credit(wc.payload)
            elif imm == FIN_IMM or wc.payload is _FIN:
                self.peer_closed = True
            else:
                # Legacy SEND from a non-streaming peer: plain data.
                self._rx_buffer.append((wc.byte_len, wc.payload, False))
        if reposts and not self.closed:
            for _ in range(reposts):
                self._qp.post_recv(WorkRequest(
                    opcode=Opcode.RECV, length=MAX_FRAGMENT_BYTES,
                    wr_id=next(_wr_ids), local_mr=self._recv_mr,
                ))
        self._wake_receivers()
        return reposts

    def _apply_credit(self, peer_consumed: int) -> None:
        """Credit update: the peer's cumulative-consumed counter.

        Cumulative (not delta) so a duplicate or reordered update can
        never mint credits; only forward progress refills the tank.
        """
        delta = peer_consumed - self._peer_consumed_seen
        if delta <= 0:
            return
        self._peer_consumed_seen = peer_consumed
        self._tx_ring.release(delta)
        refill = self._tx_credits.put(delta)
        if not refill.triggered:
            raise EngineInvariantError(
                "credit refill exceeded ring capacity — the peer "
                "advertised more consumed bytes than were ever sent"
            )

    def _wake_receivers(self) -> None:
        if self._rx_waiters:
            waiters = list(self._rx_waiters)
            self._rx_waiters.clear()
            for event in waiters:
                event.succeed()

    def recv(self, max_bytes: int = RECV_MAX_BYTES):
        """Read up to ``max_bytes`` from the stream (generator).

        Returns ``(nbytes, payload)`` where payload is the application
        object attached to the first consumed message (stream semantics:
        fragments may be combined or split exactly like TCP).  After the
        peer shuts down, returns ``(0, None)`` — the classic EOF.
        """
        self._require_open(receiving=True)
        if max_bytes <= 0:
            raise SocketError(f"recv size must be positive, got {max_bytes}")
        host = self.container.host
        _registry.counter_inc("repro.socket.recvs")
        yield from host.cpu.execute(SOCKET_TRANSLATION_CYCLES)
        if not self.streaming:
            if not self._rx_buffer:
                if self.peer_closed:
                    return 0, None
                yield from self._fill_rx_buffer()
                if not self._rx_buffer and self.peer_closed:
                    return 0, None
        else:
            while not self._rx_buffer:
                if self._rx_error is not None:
                    raise self._rx_error
                if self.peer_closed:
                    return 0, None
                event = self.env.event()
                self._rx_waiters.append(event)
                yield event
        got, payload, ring_bytes = self._consume_rx(max_bytes)
        if ring_bytes:
            yield from self._return_credits()
        return got, payload

    def _consume_rx(self, max_bytes: int) -> tuple:
        """Pop up to ``max_bytes`` from the reassembly buffer; releases
        ring space for ring-path bytes.  Plain method (sanitizer hook).
        """
        got = 0
        payload = None
        ring_bytes = 0
        while self._rx_buffer and got < max_bytes:
            remaining, data, from_ring = self._rx_buffer[0]
            take = min(remaining, max_bytes - got)
            got += take
            if from_ring:
                ring_bytes += take
            if payload is None:
                payload = data
            if take == remaining:
                self._rx_buffer.popleft()
            else:
                self._rx_buffer[0] = (remaining - take, data, from_ring)
        if ring_bytes:
            self._rx_ring.release(ring_bytes)
            self._ring_consumed += ring_bytes
        return got, payload, ring_bytes

    def _return_credits(self):
        """Advertise consumed ring bytes back to the sender — batched to
        one 8-byte WRITE per :data:`CREDIT_RETURN_BYTES` (see that
        constant for the no-deadlock argument; per-message acks are
        exactly what this path exists to avoid)."""
        owed = self._ring_consumed - self._credits_returned
        if owed < CREDIT_RETURN_BYTES or self.peer_closed or self.closed:
            return
        self._credits_returned = self._ring_consumed
        _registry.counter_inc("repro.socket.credit_updates")
        yield from self._qp.post_send(WorkRequest(
            opcode=Opcode.WRITE_WITH_IMM, length=_CREDIT_MSG_BYTES,
            wr_id=next(_wr_ids), remote_key=self._peer_ctrl_rkey,
            remote_offset=_CTRL_CREDIT_OFFSET,
            payload=self._ring_consumed, imm_data=CREDIT_IMM,
            signaled=False,
        ))

    def recv_exactly(self, nbytes: int):
        """Loop :meth:`recv` until exactly ``nbytes`` arrived (generator)."""
        got = 0
        payload = None
        while got < nbytes:
            chunk, data = yield from self.recv(nbytes - got)
            if payload is None:
                payload = data
            got += chunk
        return got, payload

    def _fill_rx_buffer(self):
        """Legacy path: block for the next completed RECV and repost its
        credit (the one-``wait()``-per-message pattern SIM008 flags; the
        streaming dispatcher replaces it)."""
        if self._qp is None:
            raise SocketError(
                "socket has no queue pair — receives require a connected "
                "socket (invariant: _require_open precedes buffer fills)"
            )
        # The measured per-message baseline the streaming path is
        # benchmarked against — deliberately unbatched.
        # simlint: disable=SIM008
        wc = yield from self._qp.recv_cq.wait()
        if not wc.ok:
            raise SocketError(f"receive failed: {wc.status.value}")
        if wc.payload is _FIN or wc.imm_data == FIN_IMM:
            self.peer_closed = True
            return
        self._rx_buffer.append((wc.byte_len, wc.payload, False))
        self._qp.post_recv(WorkRequest(
            opcode=Opcode.RECV, length=MAX_FRAGMENT_BYTES,
            wr_id=next(_wr_ids), local_mr=self._recv_mr,
        ))

    def _require_open(self, receiving: bool = False) -> None:
        if self.closed:
            if receiving and self._fin_sent:
                raise SocketShutdownError(
                    "recv on a half-shut socket: this end already called "
                    "shutdown(), no more data can arrive"
                )
            raise SocketError("socket is closed")
        if not self.connected:
            raise SocketError("socket is not connected")

    def shutdown(self):
        """Orderly shutdown (generator): flushes anything still in the
        ring, then sends FIN; the peer's next ``recv`` after draining
        buffered data returns EOF."""
        if not self.connected or self.closed:
            self.close()
            return
        self._fin_sent = True
        yield from self.container.host.cpu.execute(SOCKET_TRANSLATION_CYCLES)
        if self.streaming:
            # Take the send lock so the FIN orders after every send that
            # already entered the stream, then wait out the flusher —
            # bytes still in the ring must reach the peer before EOF.
            with self._tx_lock.request() as claim:
                yield claim
                yield from self._await_tx_idle()
                yield from self._qp.post_send(WorkRequest(
                    opcode=Opcode.WRITE_WITH_IMM, length=1,
                    wr_id=next(_wr_ids), remote_key=self._peer_ctrl_rkey,
                    remote_offset=_CTRL_FIN_OFFSET, payload=_FIN,
                    imm_data=FIN_IMM, signaled=False,
                ))
        else:
            yield from self._qp.post_send(WorkRequest(
                opcode=Opcode.SEND, length=1, wr_id=next(_wr_ids),
                payload=_FIN, imm_data=FIN_IMM, signaled=False,
            ))
        self.close()

    def close(self) -> None:
        """Abrupt local close (no FIN); use :meth:`shutdown` for EOF."""
        self.closed = True
        self.connected = False

"""Live container migration with connection continuity (paper §7).

"FreeFlow could be a key enabler for containers to achieve both
high-performance and capability for live migration.  It will require
the network library to interact with the orchestrator more frequently,
and may require maintaining additional per-connection state within the
library."

The controller implements the classic pre-copy algorithm on top of the
simulated fabric:

1. **pre-copy** — the container's memory image streams to the target
   host over RDMA (or TCP if the NICs cannot), while it keeps running
   and dirtying pages at ``dirty_rate``;
2. **iterate** — each round re-sends what was dirtied during the
   previous round, until the remainder fits under the downtime budget
   or the iteration cap is hit;
3. **stop-and-copy** — the container pauses; its connections drain
   their in-flight messages; the final dirty set is copied; the cluster
   record flips; the network orchestrator republishes the location; all
   of the container's connections are re-resolved and rebound (possibly
   changing mechanism — e.g. a former shm pair becomes an RDMA pair);
4. **resume** — paused senders continue on the new channels.

The measured *downtime* is step 3's wall-clock span, which bench E15
reports alongside total migration time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..cluster.container import ContainerStatus
from ..errors import MigrationError, TransportUnavailable
from ..transports.rdma import RdmaLane
from ..transports.tcpip import TcpFallbackChannel
from .network import FreeFlowNetwork

if TYPE_CHECKING:  # pragma: no cover
    from ..hardware.host import Host

__all__ = ["MigrationReport", "MigrationController"]


@dataclass
class MigrationReport:
    """What one live migration cost."""

    container: str
    source: str
    destination: str
    total_seconds: float
    downtime_seconds: float
    precopy_rounds: int
    bytes_copied: float
    rebound_connections: int
    mechanism_changes: list = field(default_factory=list)


class MigrationController:
    """Coordinates cluster, network orchestrator and agents for §7."""

    def __init__(
        self,
        network: FreeFlowNetwork,
        max_precopy_rounds: int = 8,
        downtime_target_bytes: float = 16 * 1024 * 1024,
    ) -> None:
        self.network = network
        self.cluster = network.cluster
        self.env = network.env
        self.max_precopy_rounds = max_precopy_rounds
        self.downtime_target_bytes = downtime_target_bytes

    def live_migrate(
        self,
        name: str,
        destination: str,
        state_bytes: float = 1e9,
        dirty_rate_bytes: float = 200e6,
    ):
        """Generator: migrate ``name`` to ``destination`` host/VM name."""
        container = self.cluster.container(name)
        if container.status is not ContainerStatus.RUNNING:
            raise MigrationError(f"{name} is not running")
        src_host = container.host
        dst_host = self._destination_host(destination)
        if dst_host is src_host:
            raise MigrationError(f"{name} is already on {destination}")

        start = self.env.now
        bytes_copied = 0.0
        container.status = ContainerStatus.MIGRATING

        # -- pre-copy rounds (container keeps running) ---------------------
        remaining = float(state_bytes)
        rounds = 0
        while rounds < self.max_precopy_rounds:
            rounds += 1
            round_started = self.env.now
            yield from self._bulk_copy(src_host, dst_host, remaining)
            bytes_copied += remaining
            elapsed = self.env.now - round_started
            remaining = min(float(state_bytes), dirty_rate_bytes * elapsed)
            if remaining <= self.downtime_target_bytes:
                break

        # -- stop-and-copy (downtime window) -----------------------------------
        downtime_started = self.env.now
        reconciler = self.network.reconciler
        paused = [
            c for c in self.network.connections
            if name in (c.src_name, c.dst_name) and not c.failed
        ]
        for connection in paused:
            connection.pause(self.env)
        yield from reconciler.drain(paused)
        yield from self._bulk_copy(src_host, dst_host, remaining)
        bytes_copied += remaining

        old_mechanisms = {id(c): c.mechanism for c in paused}
        self.cluster.relocate(name, destination)
        self.network.orchestrator.refresh_location(name)
        self.network.invalidate(name)

        # The reconciler rebinds the paused flows: via its watch pump
        # when it is running (the relocate above published the new
        # placement), else by invoking the primitive directly.  Flows a
        # controller paused stay paused until *we* reopen the gate, so
        # the downtime window below remains ours to measure.
        if reconciler.running:
            yield from reconciler.wait_settled(name)
        else:
            yield from reconciler.reconcile_container(name)

        mechanism_changes = []
        for connection in paused:
            old = old_mechanisms[id(connection)]
            if connection.mechanism is not old:
                mechanism_changes.append((old, connection.mechanism))
        container.status = ContainerStatus.RUNNING
        for connection in paused:
            connection.resume()
        downtime = self.env.now - downtime_started

        return MigrationReport(
            container=name,
            source=src_host.name,
            destination=destination,
            total_seconds=self.env.now - start,
            downtime_seconds=downtime,
            precopy_rounds=rounds,
            bytes_copied=bytes_copied,
            rebound_connections=len(paused),
            mechanism_changes=mechanism_changes,
        )

    # -- helpers --------------------------------------------------------------

    def _destination_host(self, destination: str) -> "Host":
        for host in self.cluster.hosts:
            if host.name == destination:
                return host
        # Maybe it is a VM name; the cluster resolves that on relocate.
        try:
            vm = self.cluster.fabric_controller.vm(destination)
            return vm.host
        except Exception:
            raise MigrationError(
                f"unknown migration destination {destination!r}"
            ) from None

    def _bulk_copy(self, src: "Host", dst: "Host", nbytes: float):
        """Stream ``nbytes`` of VM/container state between two hosts."""
        if nbytes <= 0:
            return
        try:
            lane = RdmaLane(src, dst)
        except TransportUnavailable:
            lane = TcpFallbackChannel(src, dst).lane_ab
        chunk = 4 * 1024 * 1024
        total = max(1, int(-(-nbytes // 1)))  # ceil to whole bytes
        total_chunks = -(-total // chunk)

        def _sink():
            for _ in range(total_chunks):
                yield from lane.recv()

        # Drain concurrently: the send window is smaller than the state
        # image, so the sink must run while the sender is still pushing.
        sink = self.env.process(_sink())
        remaining = total
        while remaining > 0:
            size = min(chunk, remaining)
            yield from lane.send(size)
            remaining -= size
        yield sink
        lane.close()

"""FreeFlow's network orchestrator: the centralized control plane (S8).

Paper §4.2: "The network orchestrator of FreeFlow maintains three kinds
of global information: the location of each container (from cluster
orchestrator), the assigned IP of each container and the capabilities of
host NICs.  If containers are running on top of VMs, the network
orchestrator also needs to know which physical machine each VM is
located (from fabric controllers)."

This class is exactly that: it *derives* its state from the cluster
orchestrator + fabric controller (it is not a second source of truth),
assigns overlay IPs via the IPAM, answers location/mechanism queries —
with a modelled RPC latency, since the paper's library keeps "pulling
the newest container location information" over the network — and pushes
change notifications through KV-store watches so agents and libraries
can cache without going stale forever.

Ownership split (see DESIGN.md "Two orchestrators"): the **cluster**
orchestrator (:class:`repro.cluster.orchestrator.ClusterOrchestrator`)
owns container *lifecycle and placement* — hosts, VMs, submit/stop,
relocation, host failure.  This **network** orchestrator owns the
*network view* derived from it — overlay IPs, location/capability
queries, the mechanism policy.  Nothing network-related lives in the
cluster orchestrator, and this class never places or moves containers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..cluster.container import Container
from ..cluster.kvstore import KeyValueStore, Watch
from ..cluster.orchestrator import ClusterOrchestrator
from ..errors import UnknownContainer
from ..netstack.addressing import IpPool, OverlaySubnets
from ..telemetry import events as _events
from ..transports.base import Mechanism
from .policy import MechanismPolicy, PolicyConfig, PolicyDecision

if TYPE_CHECKING:  # pragma: no cover
    from ..hardware.host import Host

__all__ = ["ContainerRecord", "NetworkOrchestrator"]


@dataclass
class ContainerRecord:
    """What the orchestrator knows about one registered container."""

    container: Container
    ip: str
    generation: int

    @property
    def host_name(self) -> str:
        return self.container.host.name


class NetworkOrchestrator:
    """Centralized location/IP/capability registry plus policy engine."""

    def __init__(
        self,
        cluster: ClusterOrchestrator,
        policy: Optional[MechanismPolicy] = None,
        subnets: Optional[OverlaySubnets] = None,
        query_latency_s: float = 50e-6,
    ) -> None:
        self.env = cluster.env
        self.cluster = cluster
        self.policy = policy or MechanismPolicy()
        self.subnets = subnets or OverlaySubnets()
        #: Modelled RPC round-trip to the orchestrator service.  The
        #: caching ablation (E13) varies the effective cost of queries.
        self.query_latency_s = query_latency_s
        self.kv = KeyValueStore(cluster.env)
        self._records: dict[str, ContainerRecord] = {}
        self._ip_index: dict[str, str] = {}  # ip -> container name
        #: host name -> {container name -> None}: the per-host shard of
        #: the records, so host-failure handling touches only the dead
        #: host's containers instead of scanning the fleet.  Re-keyed on
        #: :meth:`refresh_location` (the publish step of a migration).
        self._host_index: dict[str, dict[str, None]] = {}
        self._host_of: dict[str, str] = {}  # container name -> indexed host
        #: Runtime NIC-capability overrides, host name -> partial caps
        #: dict (e.g. ``{"rdma": False}``).  The registry view can
        #: diverge from the hardware when an operator drains a NIC.
        self._nic_overrides: dict[str, dict] = {}
        self.queries_served = 0

    # -- registration (control plane writes) --------------------------------------

    def register(self, container: Container) -> ContainerRecord:
        """Admit a container to the overlay: allocate/pin its IP."""
        if container.name in self._records:
            raise ValueError(f"container {container.name!r} already registered")
        pool = self.subnets.pool(container.tenant)
        ip = pool.allocate(container.spec.requested_ip)
        container.ip = ip
        record = ContainerRecord(container, ip, container.generation)
        self._records[container.name] = record
        self._ip_index[ip] = container.name
        self._index_host(container.name, record.host_name)
        self._publish(record)
        _events.emit(self.env, "container.register",
                     container=container.name, ip=ip,
                     host=record.host_name)
        return record

    def deregister(self, name: str) -> None:
        record = self._records.pop(name, None)
        if record is None:
            return
        self._ip_index.pop(record.ip, None)
        self._unindex_host(name)
        self.subnets.pool(record.container.tenant).release(record.ip)
        record.container.ip = None
        self.kv.delete(f"/network/containers/{name}")
        _events.emit(self.env, "container.deregister", container=name,
                     ip=record.ip)

    def refresh_location(self, name: str) -> ContainerRecord:
        """Re-sync a record after the cluster moved the container."""
        record = self._record(name)
        record.generation = record.container.generation
        self._index_host(name, record.host_name)
        self._publish(record)
        _events.emit(self.env, "container.relocate", container=name,
                     host=record.host_name,
                     generation=record.generation)
        return record

    def _publish(self, record: ContainerRecord) -> None:
        self.kv.put(f"/network/containers/{record.container.name}", {
            "ip": record.ip,
            "host": record.host_name,
            "generation": record.generation,
        })

    # -- queries (what libraries/agents call at connection time) ---------------------

    def _record(self, name: str) -> ContainerRecord:
        try:
            return self._records[name]
        except KeyError:
            raise UnknownContainer(f"{name!r} is not registered") from None

    def lookup(self, name: str) -> ContainerRecord:
        """Synchronous (zero-latency) lookup — for tests and local use."""
        return self._record(name)

    def lookup_by_ip(self, ip: str) -> ContainerRecord:
        name = self._ip_index.get(ip)
        if name is None:
            raise UnknownContainer(f"no container owns IP {ip}")
        return self._record(name)

    def query_location(self, name: str):
        """RPC-shaped location query (generator): costs a round trip."""
        yield self.env.timeout(self.query_latency_s)
        self.queries_served += 1
        record = self._record(name)
        return record

    def query_mechanism(self, src_name: str, dst_name: str):
        """RPC-shaped policy query (generator): which mechanism to use.

        One round trip answers both endpoints' locations plus the
        decision, matching the orchestrator flow in the paper's Fig. 7
        sketch (query Mesos/fabric controller, then flag the mechanism).
        """
        yield self.env.timeout(self.query_latency_s)
        self.queries_served += 1
        return self.decide(src_name, dst_name)

    def decide(self, src_name: str, dst_name: str) -> PolicyDecision:
        """Synchronous policy decision from current global state."""
        src = self._record(src_name).container
        dst = self._record(dst_name).container
        return self.policy.decide(src, dst, capabilities=self._nic_overrides)

    def nic_capabilities(self, host_name: str) -> dict:
        """The third kind of global information (§4.2).

        Merges the hardware truth with any runtime overrides set via
        :meth:`set_nic_capability` — callers see the registry view the
        policy engine actually decides with.
        """
        host = self.cluster.host(host_name)
        caps = {
            "model": host.nic.spec.model,
            "rdma": host.rdma_capable,
            "dpdk": host.dpdk_capable,
            "link_rate_bps": host.nic.spec.link_rate_bps,
        }
        caps.update(self._nic_overrides.get(host_name, {}))
        return caps

    def set_nic_capability(
        self,
        host_name: str,
        rdma: Optional[bool] = None,
        dpdk: Optional[bool] = None,
        degraded: Optional[bool] = None,
    ) -> dict:
        """Change a host's NIC capability bits in the registry at runtime.

        Models an operator draining (or re-enabling) a bypass feature —
        e.g. disabling RDMA on a host ahead of a firmware upgrade.  The
        ``degraded`` bit is the blunter instrument: it forces every flow
        touching the host onto kernel TCP regardless of the other bits
        (see :meth:`MechanismPolicy.decide`).  The merged view is
        published under ``/network/nics/<host>`` so the flow reconciler
        can re-decide affected flows; existing channels are *not* torn
        down here (policy is control plane, not enforcement).
        """
        self.cluster.host(host_name)  # validate the name
        override = self._nic_overrides.setdefault(host_name, {})
        if rdma is not None:
            override["rdma"] = bool(rdma)
        if dpdk is not None:
            override["dpdk"] = bool(dpdk)
        if degraded is not None:
            override["degraded"] = bool(degraded)
        caps = self.nic_capabilities(host_name)
        self.kv.put(f"/network/nics/{host_name}", {
            "rdma": caps["rdma"],
            "dpdk": caps["dpdk"],
            "degraded": bool(caps.get("degraded", False)),
        })
        _events.emit(self.env, "nic.capability", host=host_name,
                     rdma=caps["rdma"], dpdk=caps["dpdk"],
                     degraded=bool(caps.get("degraded", False)))
        return caps

    def _index_host(self, name: str, host_name: str) -> None:
        old = self._host_of.get(name)
        if old == host_name:
            return
        if old is not None:
            shard = self._host_index.get(old)
            if shard is not None:
                shard.pop(name, None)
                if not shard:
                    del self._host_index[old]
        self._host_of[name] = host_name
        self._host_index.setdefault(host_name, {})[name] = None

    def _unindex_host(self, name: str) -> None:
        host_name = self._host_of.pop(name, None)
        if host_name is None:
            return
        shard = self._host_index.get(host_name)
        if shard is not None:
            shard.pop(name, None)
            if not shard:
                del self._host_index[host_name]

    def containers_on(self, host_name: str) -> list[str]:
        """Names of registered containers recorded on ``host_name`` —
        served from the per-host index, O(containers on that host)."""
        return list(self._host_index.get(host_name, ()))

    def watch_container(self, name: str) -> Watch:
        """Subscribe to placement/IP changes of one container."""
        return self.kv.watch(f"/network/containers/{name}")

    def watch_capabilities(self, coalesce_s: Optional[float] = None) -> Watch:
        """Subscribe to runtime NIC-capability changes (all hosts)."""
        return self.kv.watch("/network/nics/", coalesce_s=coalesce_s)

    # -- convenience --------------------------------------------------------------

    def locate(self, name: str) -> "Host":
        """Physical host (resolving VMs through the fabric controller)."""
        return self.cluster.locate(name)

"""Per-connection ring buffer over a registered memory region.

TSoR-style socket streaming treats the byte stream as a circular
producer/consumer window inside one pre-registered MR: the sender
appends coalesced batches with RDMA WRITEs at ``tail % capacity`` and
the receiver releases space as the application consumes, advertising
the freed bytes back as credits.  This module holds only the
*accounting* — cumulative head/tail offsets, wrap arithmetic and the
conservation invariant ``0 <= tail - head <= capacity`` — because in
the simulation the payload itself rides the verbs descriptors.  Both
sides of a connection keep one :class:`RingBuffer`:

* the **receiver** mirrors its own ring (tail advanced by the
  dispatcher on each landed WRITE, head advanced by ``recv``);
* the **sender** mirrors the *remote* ring (tail advanced at flush
  time to pick the WRITE target offset, head advanced on each credit
  update), so ``free`` equals the credits it may still spend.

Every advance is bounds-checked and raises
:class:`~repro.errors.RingBufferError` on violation; the runtime
sanitizer (``REPRO_SANITIZE=1``) additionally cross-checks the ring
against the socket's buffered bytes after every dispatch/consume.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..errors import RingBufferError

if TYPE_CHECKING:  # pragma: no cover
    from .verbs import MemoryRegion

__all__ = ["RingBuffer"]


class RingBuffer:
    """Byte accounting for one circular window of ``capacity`` bytes.

    ``head`` and ``tail`` are *cumulative* stream offsets (they never
    wrap); physical offsets are derived modulo ``capacity``.  This
    keeps the arithmetic overflow-free in the simulation and makes the
    conservation counters (``bytes_appended``/``bytes_released``)
    trivially equal to ``tail``/``head``.
    """

    __slots__ = ("capacity", "region", "head", "tail")

    def __init__(self, capacity: int,
                 region: Optional["MemoryRegion"] = None) -> None:
        if capacity <= 0:
            raise RingBufferError(
                f"ring capacity must be positive, got {capacity}"
            )
        if region is not None and capacity > region.length:
            raise RingBufferError(
                f"ring capacity {capacity} exceeds the backing MR of "
                f"{region.length} bytes"
            )
        self.capacity = capacity
        #: The registered MR the ring lives in (None for the sender-side
        #: mirror of a remote ring — it only has the rkey).
        self.region = region
        self.head = 0  # cumulative bytes consumed/released
        self.tail = 0  # cumulative bytes appended/written

    # -- observers ---------------------------------------------------------

    @property
    def used(self) -> int:
        """Bytes appended but not yet released."""
        return self.tail - self.head

    @property
    def free(self) -> int:
        """Bytes of window space still available to the producer."""
        return self.capacity - self.used

    @property
    def bytes_appended(self) -> int:
        return self.tail

    @property
    def bytes_released(self) -> int:
        return self.head

    def offset(self) -> int:
        """Physical offset of the next append inside the region."""
        return self.tail % self.capacity

    def contiguous(self) -> int:
        """Bytes appendable before the write would cross the wrap
        boundary (callers split batches here so every WRITE targets one
        contiguous ``[offset, offset+n)`` range of the MR)."""
        return self.capacity - self.offset()

    # -- mutators ----------------------------------------------------------

    def append(self, nbytes: int) -> int:
        """Advance the tail by ``nbytes``; returns the physical offset
        the appended run starts at."""
        if nbytes <= 0:
            raise RingBufferError(
                f"ring append must be positive, got {nbytes}"
            )
        if nbytes > self.free:
            raise RingBufferError(
                f"ring overflow: append of {nbytes} bytes with only "
                f"{self.free} free (capacity {self.capacity}) — the "
                f"credit protocol must prevent this"
            )
        if nbytes > self.contiguous():
            raise RingBufferError(
                f"append of {nbytes} bytes crosses the wrap boundary "
                f"({self.contiguous()} contiguous); split the batch"
            )
        start = self.offset()
        self.tail += nbytes
        return start

    def release(self, nbytes: int) -> None:
        """Advance the head by ``nbytes`` (consumer freed that much)."""
        if nbytes <= 0:
            raise RingBufferError(
                f"ring release must be positive, got {nbytes}"
            )
        if nbytes > self.used:
            raise RingBufferError(
                f"ring underflow: release of {nbytes} bytes with only "
                f"{self.used} in use — released bytes were never "
                f"appended"
            )
        self.head += nbytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<RingBuffer {self.used}/{self.capacity}B used "
                f"head={self.head} tail={self.tail}>")

"""FreeFlow's per-host network agent: the customized overlay router (S9).

Paper §3.2 — the agent replaces the classic overlay router's data plane
with two new features: "(1) the traffic between routers and its local
containers goes through shared-memory instead of software bridge; and
(2) the traffic between different routers is delivered via kernel
bypassing techniques, e.g. RDMA or DPDK, if the hardware on the hosts is
capable."

The key data-plane challenge (§3.2) is connecting the container-facing
shared-memory channel to the inter-host kernel-bypass channel *without
extra copies*.  Both variants are implemented:

* ``zero_copy=True`` (FreeFlow) — the agent posts RDMA/DPDK work straight
  from/into the container's shared ring; the only byte-touching CPU work
  is the sender writing its data into the ring.
* ``zero_copy=False`` (copying-router ablation, bench E14) — the agent
  memcpys between the ring and a private transfer buffer on each side,
  like a conventional proxy.

Intra-host pairs never reach the agent's relay path at all: the agent
simply wires a container-to-container shared-memory lane (paper Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

from ..errors import TransportError, TransportUnavailable
from ..sim.resources import Store, Tank
from ..transports.base import DuplexChannel, Lane, Mechanism
from ..transports.dpdk import DpdkLane
from ..transports.rdma import RdmaLane
from ..transports.shmem import ShmLane
from ..transports.tcpip import TcpFallbackChannel

if TYPE_CHECKING:  # pragma: no cover
    from ..hardware.host import Host
    from ..netstack.packet import Message

__all__ = ["AgentStats", "FreeFlowAgent", "RelayLane", "build_channel"]


@dataclass
class AgentStats:
    """Relay counters for one agent."""

    messages_relayed: int = 0
    bytes_relayed: int = 0
    relay_copies: int = 0


class FreeFlowAgent:
    """One network agent per host, coordinating the local data planes."""

    def __init__(self, host: "Host", zero_copy: bool = True) -> None:
        self.env = host.env
        self.host = host
        self.zero_copy = zero_copy
        self.stats = AgentStats()

    # -- channel factories -------------------------------------------------------

    def local_channel(self) -> DuplexChannel:
        """Shared-memory channel between two containers on this host."""
        return DuplexChannel(ShmLane(self.host), ShmLane(self.host))

    def relay_lane(
        self,
        peer: "FreeFlowAgent",
        mechanism: Mechanism,
        window_bytes: int = 8 * 1024 * 1024,
    ) -> "RelayLane":
        """One direction of an inter-host FreeFlow path toward ``peer``."""
        backing = self._backing_lane(peer, mechanism, window_bytes)
        return RelayLane(self, peer, backing)

    def _backing_lane(
        self,
        peer: "FreeFlowAgent",
        mechanism: Mechanism,
        window_bytes: int,
    ) -> Lane:
        if mechanism is Mechanism.RDMA:
            return RdmaLane(self.host, peer.host, window_bytes)
        if mechanism is Mechanism.DPDK:
            return DpdkLane(self.host, peer.host, window_bytes)
        if mechanism is Mechanism.TCP:
            channel = TcpFallbackChannel(self.host, peer.host,
                                         window_bytes=window_bytes)
            return channel.lane_ab
        raise TransportUnavailable(
            f"agents do not relay over {mechanism.value!r}"
        )


class RelayLane(Lane):
    """container → local ring → agent → [RDMA/DPDK/TCP] → agent → container.

    The lane's mechanism reports the backing (inter-host) mechanism; the
    shared-memory hand-offs at both edges are part of the FreeFlow design
    rather than a separate mechanism.
    """

    def __init__(
        self,
        src_agent: FreeFlowAgent,
        dst_agent: FreeFlowAgent,
        backing: Lane,
    ) -> None:
        super().__init__(src_agent.env, backing.mechanism)
        if src_agent.host is dst_agent.host:
            raise ValueError("relay lanes are for inter-host pairs")
        self.src_agent = src_agent
        self.dst_agent = dst_agent
        self.backing = backing
        # Each relayed message delivers once on the backing lane and once
        # here; only the relay (the flow-labelled lane) feeds the flight
        # recorder.
        backing.record_deliveries = False
        src_shm = src_agent.host.spec.shm
        dst_shm = dst_agent.host.spec.shm
        self.src_spec = src_shm
        self.dst_spec = dst_shm
        self.src_ring = Tank(self.env, capacity=src_shm.ring_bytes)
        self.dst_ring = Tank(self.env, capacity=dst_shm.ring_bytes)
        src_agent.host.memory.allocate(src_shm.ring_bytes)
        dst_agent.host.memory.allocate(dst_shm.ring_bytes)
        self._tx: Store = Store(self.env)
        self.env.process(self._agent_tx_worker())
        self.env.process(self._agent_rx_worker())

    # -- container-side send --------------------------------------------------------

    def send(self, nbytes: int, payload: Any = None):
        """The sending container writes into its shared ring and notifies
        the agent — identical cost structure to the intra-host fast path."""
        if self.closed:
            raise TransportError("relay lane closed")
        if nbytes > self.src_spec.ring_bytes:
            raise TransportError(
                f"message of {nbytes} B exceeds ring size "
                f"{self.src_spec.ring_bytes} B"
            )
        message = self.make_message(nbytes, payload)
        trace = self._trace_of(message)
        host = self.src_agent.host
        mark = self.env.now
        yield from host.cpu.execute(self.src_spec.per_message_cycles)
        yield self.src_ring.put(max(1, nbytes))
        if trace is not None:
            trace.add("queue", mark, self.env.now)
            mark = self.env.now
        # The ring reservation deliberately outlives this scope: the
        # bytes ARE the message's storage until the TX agent worker
        # repays them (src_ring.get) after relaying onto the backing
        # lane.  Nothing on this path raises mid-copy in the model.
        # simlint: disable=SIM012
        yield from host.memcpy(nbytes)
        if trace is not None:
            trace.add("copy", mark, self.env.now)
            mark = self.env.now
        yield from host.cpu.execute(self.src_spec.notify_cycles)
        yield self.env.timeout(self.src_spec.notify_latency_s)
        if trace is not None:
            trace.add("kernel", mark, self.env.now)
        self._tx.put(message)
        return message

    # -- agent relay stages ------------------------------------------------------------

    def _agent_tx_worker(self):
        """Sender-side agent: ring → backing transport."""
        while True:
            message = yield self._tx.get()
            trace = self._trace_of(message)
            if not self.src_agent.zero_copy:
                # Conventional proxy: copy out of the ring first.
                mark = self.env.now
                yield from self.src_agent.host.memcpy(message.size_bytes)
                if trace is not None:
                    trace.add("copy", mark, self.env.now)
                self.src_agent.stats.relay_copies += 1
            # The backing lane traces its own (inner) message; on the
            # relay's trace the backing flight shows up as "wait".
            yield from self.backing.send(message.size_bytes, payload=message)
            # The payload left the ring (DMA'd or copied): free the slot.
            yield self.src_ring.get(max(1, message.size_bytes))
            self.src_agent.stats.messages_relayed += 1
            self.src_agent.stats.bytes_relayed += message.size_bytes

    def _agent_rx_worker(self):
        """Receiver-side agent: backing transport → ring → container."""
        while True:
            wrapped = yield from self.backing.recv()
            message: "Message" = wrapped.payload
            trace = self._trace_of(message)
            mark = self.env.now
            message.meta["ring"] = self.dst_ring
            yield self.dst_ring.put(max(1, message.size_bytes))
            if trace is not None:
                trace.add("queue", mark, self.env.now)
                mark = self.env.now
            if not self.dst_agent.zero_copy:
                # Receiver-ring hand-off: the reservation is repaid by
                # the consuming container (ring.get via message.meta
                # ["ring"]) when it drains its inbox, not on this path.
                # simlint: disable=SIM012
                yield from self.dst_agent.host.memcpy(message.size_bytes)
                self.dst_agent.stats.relay_copies += 1
                if trace is not None:
                    trace.add("copy", mark, self.env.now)
                    mark = self.env.now
            yield from self.dst_agent.host.cpu.execute(
                self.dst_spec.notify_cycles
            )
            yield self.env.timeout(self.dst_spec.notify_latency_s)
            if trace is not None:
                trace.add("kernel", mark, self.env.now)
            self.dst_agent.stats.messages_relayed += 1
            self.dst_agent.stats.bytes_relayed += message.size_bytes
            self.deliver(message)

    # -- container-side receive -----------------------------------------------------------

    def recv(self):
        """The receiving container consumes from its shared ring."""
        message = yield self.inbox.get()
        trace = self._trace_of(message)
        mark = self.env.now
        yield from self.dst_agent.host.cpu.execute(
            self.dst_spec.per_message_cycles
        )
        ring = message.meta.pop("ring", self.dst_ring)
        yield ring.get(max(1, message.size_bytes))
        if trace is not None:
            trace.add("consume", mark, self.env.now)
        self._finish_trace(message)
        return message

    def close(self) -> None:
        if not self.closed:
            self.src_agent.host.memory.free(self.src_spec.ring_bytes)
            self.dst_agent.host.memory.free(self.dst_spec.ring_bytes)
            self.backing.close()
        super().close()


def build_channel(
    src_agent: FreeFlowAgent,
    dst_agent: FreeFlowAgent,
    mechanism: Mechanism,
    window_bytes: int = 8 * 1024 * 1024,
    crosses_vm_boundary: bool = False,
) -> DuplexChannel:
    """Assemble the duplex FreeFlow channel for a container pair.

    ``Mechanism.SHM`` requires both agents on the same host and yields a
    direct container-to-container shared-memory channel; when the pair
    sits in *different VMs* on that host (``crosses_vm_boundary``), the
    channel is a NetVM-style vhost shared-memory path instead (paper §7:
    "perhaps using NetVM").  ``Mechanism.TCP`` is the
    *isolation-preserving* fallback: it goes straight through the
    kernel path with no shared-memory hand-off (untrusted pairs must not
    touch the agents' rings), intra-host or inter-host alike.  RDMA/DPDK
    yield a pair of agent relay lanes over the kernel-bypass transport.
    """
    if mechanism is Mechanism.SHM:
        if src_agent.host is not dst_agent.host:
            raise TransportUnavailable(
                "shared memory needs both containers on one host"
            )
        if crosses_vm_boundary:
            from ..baselines.netvm import NetVmChannel

            return NetVmChannel(src_agent.host)
        return src_agent.local_channel()
    if mechanism is Mechanism.TCP:
        return TcpFallbackChannel(
            src_agent.host, dst_agent.host, window_bytes=window_bytes
        )
    return DuplexChannel(
        src_agent.relay_lane(dst_agent, mechanism, window_bytes),
        dst_agent.relay_lane(src_agent, mechanism, window_bytes),
    )

"""MPI translated onto RDMA Verbs (paper §4.2 and §6).

"The same concepts described for FreeFlow can also be applicable for MPI
run-time libraries.  This can be achieved either by layering the MPI
implementation on top of FreeFlow..." — this module is that layering: a
rank-addressed communicator whose point-to-point primitives are verbs
SEND/RECV on policy-chosen channels, plus the standard collectives built
from them (barrier, bcast, reduce, allreduce, gather, allgather).

Collective algorithms are the textbook ones so their cost structure is
realistic:

* barrier — dissemination (⌈log2 n⌉ rounds);
* bcast — binomial tree;
* reduce/allreduce — ring reduce-scatter + allgather (bandwidth-optimal);
* gather/allgather — linear gather / ring allgather.

Tag matching uses the lane's filtered receive, preserving per-pair FIFO
as MPI requires.
"""

from __future__ import annotations

import itertools
import math
from typing import TYPE_CHECKING, Any, Callable, Optional

from ..errors import FreeFlowError
from ..sim.resources import Store
from ..telemetry import registry as _registry
from .verbs import Opcode, WorkRequest

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.container import Container
    from .network import FreeFlowNetwork

__all__ = ["MPI_TRANSLATION_CYCLES", "Communicator", "PendingRequest", "RankEndpoint"]

#: CPU cycles per MPI call spent translating onto verbs.
MPI_TRANSLATION_CYCLES = 400.0

_wr_ids = itertools.count(1)


class PendingRequest:
    """A non-blocking operation handle (the MPI_Request analogue).

    Returned by :meth:`RankEndpoint.isend` / :meth:`RankEndpoint.irecv`;
    resolve it with :meth:`wait` (generator) or test :attr:`done`.
    """

    def __init__(self, process) -> None:
        self._process = process

    @property
    def done(self) -> bool:
        return self._process.processed or not self._process.is_alive

    def wait(self):
        """Generator: block until the operation finishes; returns its
        result (``(nbytes, payload)`` for receives, None for sends)."""
        result = yield self._process
        return result


class RankEndpoint:
    """One rank's handle: owns its QPs to every peer (built lazily)."""

    def __init__(self, comm: "Communicator", rank: int,
                 container: "Container") -> None:
        self.comm = comm
        self.rank = rank
        self.container = container
        self.env = container.env
        self.vnic = comm.network.vnic(container.name)
        #: peer rank -> (qp, recv_mr)
        self._endpoints: dict[int, tuple] = {}
        #: peer rank -> Store of (tag, nbytes, payload) awaiting recv
        self._inboxes: dict[int, Store] = {}
        self._pumps: set[int] = set()

    # -- plumbing ---------------------------------------------------------------

    def _inbox(self, peer: int) -> Store:
        if peer not in self._inboxes:
            self._inboxes[peer] = Store(self.env)
        return self._inboxes[peer]

    def _ensure_link(self, peer: int):
        """Connect QPs to ``peer`` on first use (generator).

        Concurrent first-touches from both ranks are serialised through a
        per-pair latch so exactly one QP pair is built per rank pair.
        """
        if peer in self._endpoints:
            return
        key = (min(self.rank, peer), max(self.rank, peer))
        latch = self.comm._linking.get(key)
        if latch is not None:
            yield latch
            return
        latch = self.env.event()
        self.comm._linking[key] = latch
        other = self.comm.endpoint(peer)
        qp_a, mr_a = self._make_qp()
        qp_b, mr_b = other._make_qp()
        yield from self.comm.network.connect(qp_a, qp_b)
        for qp, mr in ((qp_a, mr_a), (qp_b, mr_b)):
            self._post_credits(qp, mr)
        self._endpoints[peer] = (qp_a, mr_a)
        other._endpoints[self.rank] = (qp_b, mr_b)
        self._start_pump(peer)
        other._start_pump(self.rank)
        del self.comm._linking[key]
        latch.succeed()

    def _make_qp(self):
        pd = self.vnic.alloc_pd()
        qp = self.vnic.create_qp(pd, self.vnic.create_cq(), self.vnic.create_cq())
        mr = self.vnic.reg_mr(pd, 1 << 30)
        return qp, mr

    @staticmethod
    def _post_credits(qp, mr, credits: int = 128) -> None:
        """Pre-post receive buffers once the QP can accept them (≥ INIT)."""
        for _ in range(credits):
            qp.post_recv(WorkRequest(
                opcode=Opcode.RECV, length=1 << 30,
                wr_id=next(_wr_ids), local_mr=mr,
            ))

    def _start_pump(self, peer: int) -> None:
        if peer in self._pumps:
            return
        self._pumps.add(peer)
        self.env.process(self._pump(peer))

    def _pump(self, peer: int):
        """Move completed RECVs into the tag-matchable inbox."""
        qp, mr = self._endpoints[peer]
        inbox = self._inbox(peer)
        while True:
            wc = yield from qp.recv_cq.wait()
            if not wc.ok:
                raise FreeFlowError(f"MPI receive failed: {wc.status.value}")
            tag, payload = wc.payload
            inbox.put((tag, wc.byte_len, payload))
            qp.post_recv(WorkRequest(
                opcode=Opcode.RECV, length=1 << 30,
                wr_id=next(_wr_ids), local_mr=mr,
            ))

    # -- point-to-point -------------------------------------------------------------

    def send(self, dest: int, nbytes: int, payload: Any = None, tag: int = 0):
        """MPI_Send (generator)."""
        self.comm._check_rank(dest)
        if dest == self.rank:
            raise FreeFlowError("a rank does not send to itself")
        _registry.counter_inc("repro.mpi.sends")
        _registry.counter_inc("repro.mpi.send_bytes", max(1, nbytes))
        yield from self.container.host.cpu.execute(MPI_TRANSLATION_CYCLES)
        yield from self._ensure_link(dest)
        qp, _ = self._endpoints[dest]
        yield from qp.post_send(WorkRequest(
            opcode=Opcode.SEND, length=max(1, nbytes),
            wr_id=next(_wr_ids), payload=(tag, payload), signaled=False,
        ))

    def recv(self, source: int, tag: Optional[int] = None):
        """MPI_Recv (generator): returns ``(nbytes, payload)``."""
        self.comm._check_rank(source)
        _registry.counter_inc("repro.mpi.recvs")
        yield from self.container.host.cpu.execute(MPI_TRANSLATION_CYCLES)
        yield from self._ensure_link(source)
        inbox = self._inbox(source)
        predicate = None if tag is None else (lambda item: item[0] == tag)
        got_tag, nbytes, payload = yield inbox.get(predicate)
        return nbytes, payload

    def sendrecv(self, dest: int, nbytes: int, payload: Any,
                 source: int, tag: int = 0):
        """Concurrent send+recv (generator), as collectives need."""
        send_proc = self.env.process(self.send(dest, nbytes, payload, tag))
        nrecv, precv = yield from self.recv(source, tag)
        yield send_proc
        return nrecv, precv

    # -- non-blocking point-to-point -------------------------------------------

    def isend(self, dest: int, nbytes: int, payload: Any = None,
              tag: int = 0) -> PendingRequest:
        """MPI_Isend: returns immediately with a waitable request."""
        return PendingRequest(
            self.env.process(self.send(dest, nbytes, payload, tag))
        )

    def irecv(self, source: int, tag: Optional[int] = None) -> PendingRequest:
        """MPI_Irecv: returns immediately with a waitable request."""
        return PendingRequest(
            self.env.process(self.recv(source, tag))
        )

    def waitall(self, requests):
        """Generator: resolve every request; returns their results."""
        results = []
        for request in requests:
            result = yield from request.wait()
            results.append(result)
        return results

    # -- collectives ------------------------------------------------------------------

    def barrier(self, tag_base: int = 1 << 20):
        """Dissemination barrier (generator)."""
        n = self.comm.size
        rounds = max(1, math.ceil(math.log2(n))) if n > 1 else 0
        for k in range(rounds):
            dist = 1 << k
            dest = (self.rank + dist) % n
            source = (self.rank - dist) % n
            yield from self.sendrecv(dest, 1, None, source, tag=tag_base + k)

    def bcast(self, root: int, nbytes: int, payload: Any = None,
              tag: int = 1 << 21):
        """Binomial-tree broadcast (generator): returns the payload."""
        n = self.comm.size
        rel = (self.rank - root) % n
        mask = 1
        value = payload if self.rank == root else None
        # Receive phase: wait for the parent.
        while mask < n:
            if rel & mask:
                source = (self.rank - mask) % n
                __, value = yield from self.recv(source, tag=tag)
                break
            mask <<= 1
        # Send phase: fan out to children.
        mask >>= 1
        while mask > 0:
            if rel + mask < n and not (rel & mask):
                dest = (self.rank + mask) % n
                yield from self.send(dest, nbytes, value, tag=tag)
            mask >>= 1
        return value

    def allreduce(self, value: float, nbytes: int,
                  op: Callable[[float, float], float] = lambda a, b: a + b,
                  tag: int = 1 << 22):
        """Ring allreduce (generator): returns the reduced value.

        The data volume per step is ``nbytes / n`` (reduce-scatter then
        allgather), matching the bandwidth-optimal algorithm used by real
        MPI/NCCL — so the bench's scaling with rank count is honest.
        """
        n = self.comm.size
        if n == 1:
            return value
        chunk = max(1, nbytes // n)
        right = (self.rank + 1) % n
        left = (self.rank - 1) % n
        # Reduce-scatter phase: n-1 steps of chunk-sized exchanges.  Each
        # rank forwards the *original* contribution it last received, so
        # after n-1 steps every original value has been folded in once.
        result = value
        outgoing = value
        for step in range(n - 1):
            __, incoming = yield from self.sendrecv(
                right, chunk, outgoing, left, tag=tag + step
            )
            result = op(result, incoming)
            outgoing = incoming
        # Allgather phase: n-1 more chunk-sized steps circulate the
        # reduced chunks (cost only; scalars are already complete).
        for step in range(n - 1):
            yield from self.sendrecv(
                right, chunk, result, left, tag=tag + n + step
            )
        return result

    def reduce(self, root: int, value: float, nbytes: int,
               op: Callable[[float, float], float] = lambda a, b: a + b,
               tag: int = 1 << 25):
        """Binomial-tree reduce (generator): root returns the result.

        The reversed broadcast tree: leaves send first, each internal
        node folds its subtree before passing the partial up — log2(n)
        rounds of ``nbytes`` messages.
        """
        n = self.comm.size
        rel = (self.rank - root) % n
        accumulated = value
        mask = 1
        # Absorb children (they have rel | mask set and are in range).
        while mask < n:
            if rel & mask:
                break
            child = rel + mask
            if child < n:
                source = (child + root) % n
                __, incoming = yield from self.recv(source, tag=tag)
                accumulated = op(accumulated, incoming)
            mask <<= 1
        # Then pass the partial to the parent (unless we are the root).
        if rel != 0:
            parent = ((rel & (rel - 1)) + root) % n
            yield from self.send(parent, nbytes, accumulated, tag=tag)
            return None
        return accumulated

    def scatter(self, root: int, nbytes: int, values=None,
                tag: int = 1 << 26):
        """Linear scatter (generator): each rank returns its slice."""
        n = self.comm.size
        if self.rank == root:
            if values is None or len(values) != n:
                raise FreeFlowError(
                    f"root must supply exactly {n} values to scatter"
                )
            for dest in range(n):
                if dest == root:
                    continue
                yield from self.send(dest, nbytes, values[dest], tag=tag)
            return values[root]
        __, value = yield from self.recv(root, tag=tag)
        return value

    def gather(self, root: int, nbytes: int, payload: Any,
               tag: int = 1 << 23):
        """Linear gather (generator): root returns the list by rank."""
        n = self.comm.size
        if self.rank == root:
            gathered: list[Any] = [None] * n
            gathered[root] = payload
            for source in range(n):
                if source == root:
                    continue
                __, value = yield from self.recv(source, tag=tag)
                gathered[source] = value
            return gathered
        yield from self.send(root, nbytes, payload, tag=tag)
        return None

    def allgather(self, nbytes: int, payload: Any, tag: int = 1 << 24):
        """Ring allgather (generator): everyone returns the full list."""
        n = self.comm.size
        gathered: list[Any] = [None] * n
        gathered[self.rank] = payload
        current = (self.rank, payload)
        right = (self.rank + 1) % n
        left = (self.rank - 1) % n
        for step in range(n - 1):
            __, incoming = yield from self.sendrecv(
                right, nbytes, current, left, tag=tag + step
            )
            source, value = incoming
            gathered[source] = value
            current = incoming
        return gathered


class Communicator:
    """An MPI_COMM_WORLD over FreeFlow: containers become ranks."""

    def __init__(self, network: "FreeFlowNetwork",
                 containers: list["Container"]) -> None:
        if not containers:
            raise FreeFlowError("a communicator needs at least one rank")
        names = {c.name for c in containers}
        if len(names) != len(containers):
            raise FreeFlowError("duplicate containers in communicator")
        self.network = network
        self._linking: dict[tuple[int, int], Any] = {}
        self._endpoints = [
            RankEndpoint(self, rank, container)
            for rank, container in enumerate(containers)
        ]

    @property
    def size(self) -> int:
        return len(self._endpoints)

    def endpoint(self, rank: int) -> RankEndpoint:
        self._check_rank(rank)
        return self._endpoints[rank]

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise FreeFlowError(
                f"rank {rank} outside communicator of size {self.size}"
            )

"""RDMA Verbs API objects (paper §4.2's network abstraction).

FreeFlow picks Verbs as *the* data-transfer abstraction because it is
"flexible for upper-layer APIs" (sockets and MPI translate onto it) and
"flexible to under-layer data-plane mechanism" (its semantics map onto
real RDMA, onto TCP, and — via its "memory copying APIs" — onto shared
memory).  This module provides the API surface the paper's Fig. 5
pseudo-code uses:

* :class:`ProtectionDomain` / :class:`MemoryRegion` — registered buffers
  with local/remote keys and bounds checking;
* :class:`CompletionQueue` — poll or block for work completions;
* :class:`QueuePair` — the RESET→INIT→RTR→RTS state machine with
  ``post_send`` / ``post_recv`` for SEND/RECV/WRITE/READ(+IMM).

Execution of work requests happens in :mod:`repro.core.vnic`, which
binds each connected QP to whatever FreeFlow channel the policy chose.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

from ..errors import (
    CompletionError,
    MemoryRegionError,
    QueuePairStateError,
    VerbsError,
)
from ..sim.resources import Store
from ..telemetry import registry as _registry

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.scheduler import Environment
    from .vnic import VirtualNic

__all__ = [
    "CQ_POLL_BATCH",
    "QpState",
    "Opcode",
    "WcStatus",
    "ProtectionDomain",
    "MemoryRegion",
    "WorkRequest",
    "WorkCompletion",
    "CompletionQueue",
    "QueuePair",
]

_pd_ids = itertools.count(1)
_mr_keys = itertools.count(0x1000)
_qp_nums = itertools.count(100)

#: Default completion batch: one :meth:`CompletionQueue.poll` /
#: :meth:`CompletionQueue.wait_batch` drains up to this many CQEs in a
#: single pass.  The value is load-bearing for the streaming socket
#: path (it bounds how many WRITE notifications one dispatcher wake
#: amortises), so it is exposed as a NIC capability
#: (:attr:`repro.hardware.specs.NicSpec.cq_poll_batch`) rather than
#: buried as a keyword default; observed batch sizes are published on
#: the ``repro.verbs.cq.batch`` histogram.
CQ_POLL_BATCH = 16


class QpState(enum.Enum):
    RESET = "RESET"
    INIT = "INIT"
    RTR = "RTR"  # ready to receive
    RTS = "RTS"  # ready to send
    ERROR = "ERROR"


class Opcode(enum.Enum):
    SEND = "SEND"
    RECV = "RECV"
    WRITE = "WRITE"
    WRITE_WITH_IMM = "WRITE_WITH_IMM"
    READ = "READ"
    ATOMIC_CAS = "ATOMIC_CAS"
    ATOMIC_FADD = "ATOMIC_FADD"


class WcStatus(enum.Enum):
    SUCCESS = "SUCCESS"
    LOCAL_LENGTH_ERROR = "LOCAL_LENGTH_ERROR"
    REMOTE_ACCESS_ERROR = "REMOTE_ACCESS_ERROR"
    REMOTE_INVALID_REQUEST = "REMOTE_INVALID_REQUEST"
    WR_FLUSH_ERROR = "WR_FLUSH_ERROR"


class ProtectionDomain:
    """Groups MRs and QPs that may work together."""

    def __init__(self, vnic: "VirtualNic") -> None:
        self.vnic = vnic
        self.pd_id = next(_pd_ids)
        self.regions: list["MemoryRegion"] = []

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<PD {self.pd_id} of {self.vnic.container.name}>"


class MemoryRegion:
    """A registered buffer: bounds, keys and (simulated) contents.

    Contents are tracked as ``offset -> payload`` so functional tests can
    verify one-sided WRITE/READ semantics without allocating gigabytes.
    """

    def __init__(self, pd: ProtectionDomain, length: int) -> None:
        if length <= 0:
            raise MemoryRegionError(f"MR length must be positive, got {length}")
        self.pd = pd
        self.length = length
        self.lkey = next(_mr_keys)
        self.rkey = next(_mr_keys)
        self.data: dict[int, Any] = {}
        self.bytes_written = 0
        self.valid = True
        pd.regions.append(self)

    def check_range(self, offset: int, length: int) -> None:
        if not self.valid:
            raise MemoryRegionError("memory region was deregistered")
        if offset < 0 or length < 0 or offset + length > self.length:
            raise MemoryRegionError(
                f"access [{offset}, {offset + length}) outside MR of "
                f"{self.length} bytes"
            )

    def write(self, offset: int, length: int, payload: Any) -> None:
        self.check_range(offset, length)
        self.data[offset] = payload
        self.bytes_written += length

    def read(self, offset: int, length: int) -> Any:
        self.check_range(offset, length)
        return self.data.get(offset)

    # -- 64-bit atomic cells (for ATOMIC_CAS / ATOMIC_FADD) ----------------

    def atomic_value(self, offset: int) -> int:
        """Current value of the 8-byte atomic cell at ``offset``."""
        self.check_range(offset, 8)
        value = self.data.get(offset, 0)
        if not isinstance(value, int):
            raise MemoryRegionError(
                f"offset {offset} holds non-integer data; atomics need a "
                f"64-bit cell"
            )
        return value

    def atomic_set(self, offset: int, value: int) -> None:
        self.check_range(offset, 8)
        self.data[offset] = int(value)
        self.bytes_written += 8

    def deregister(self) -> None:
        self.valid = False
        if self in self.pd.regions:
            self.pd.regions.remove(self)


@dataclass
class WorkRequest:
    """One entry for a send or receive queue."""

    opcode: Opcode
    length: int = 0
    wr_id: int = 0
    local_mr: Optional[MemoryRegion] = None
    local_offset: int = 0
    remote_key: Optional[int] = None
    remote_offset: int = 0
    payload: Any = None
    imm_data: Optional[int] = None
    signaled: bool = True
    #: Atomics: the compare value (CAS) or the addend (FADD).
    compare_add: int = 0
    #: Atomics: the swap value (CAS only).
    swap: int = 0

    def __post_init__(self) -> None:
        if self.length < 0:
            raise VerbsError(f"negative WR length {self.length}")
        atomic = self.opcode in (Opcode.ATOMIC_CAS, Opcode.ATOMIC_FADD)
        needs_remote = atomic or self.opcode in (
            Opcode.WRITE, Opcode.WRITE_WITH_IMM, Opcode.READ
        )
        if needs_remote and self.remote_key is None:
            raise VerbsError(f"{self.opcode.value} needs remote_key")
        if self.opcode is Opcode.RECV and self.local_mr is None:
            raise VerbsError("RECV needs a local MR to land data in")
        if atomic and self.length not in (0, 8):
            raise VerbsError("atomics operate on 8-byte cells")


@dataclass(frozen=True)
class WorkCompletion:
    """One completion-queue entry."""

    wr_id: int
    status: WcStatus
    opcode: Opcode
    byte_len: int
    qp_num: int
    timestamp: float
    imm_data: Optional[int] = None
    payload: Any = None

    @property
    def ok(self) -> bool:
        return self.status is WcStatus.SUCCESS


class CompletionQueue:
    """Completion delivery: non-blocking :meth:`poll` or blocking wait.

    ``poll_batch`` is the default drain size for :meth:`poll` and
    :meth:`wait_batch`; the vNIC seeds it from the host NIC's
    :attr:`~repro.hardware.specs.NicSpec.cq_poll_batch` capability.
    """

    def __init__(self, env: "Environment", depth: int = 1024,
                 poll_batch: int = CQ_POLL_BATCH) -> None:
        if depth <= 0:
            raise VerbsError(f"CQ depth must be positive, got {depth}")
        if poll_batch <= 0:
            raise VerbsError(
                f"CQ poll batch must be positive, got {poll_batch}"
            )
        self.env = env
        self.depth = depth
        self.poll_batch = poll_batch
        self._cqes: Store = Store(env)
        self.overflowed = False

    def __len__(self) -> int:
        return len(self._cqes.items)

    def push(self, wc: WorkCompletion) -> None:
        if len(self._cqes.items) >= self.depth:
            # Real NICs move the QP to error on CQ overrun; surfacing the
            # bug loudly beats silently dropping completions.
            self.overflowed = True
            _registry.counter_inc("repro.verbs.cq_overflows")
            raise CompletionError(
                f"CQ overrun (depth {self.depth}); poll more often"
            )
        self._cqes.put(wc)

    def poll(self, max_entries: Optional[int] = None) -> list[WorkCompletion]:
        """Non-blocking: drain up to ``max_entries`` completions
        (default: this CQ's :attr:`poll_batch`)."""
        if max_entries is None:
            max_entries = self.poll_batch
        if max_entries <= 0:
            raise VerbsError("max_entries must be positive")
        polled = []
        while len(polled) < max_entries:
            wc = self._cqes.try_get()
            if wc is None:
                break
            polled.append(wc)
        if polled:
            _registry.histogram_observe("repro.verbs.cq.batch",
                                        float(len(polled)))
        return polled

    def wait(self):
        """Blocking (generator): return the next completion.

        Per-completion waits in a loop are the pattern simlint SIM008
        flags — prefer :meth:`wait_batch` on any hot path.
        """
        wc = yield self._cqes.get()
        return wc

    def wait_batch(self, max_entries: Optional[int] = None):
        """Blocking (generator): wait for at least one completion, then
        drain whatever else is already queued, up to ``max_entries``
        (default :attr:`poll_batch`).

        One wake services a whole burst — callers wake all their
        waiters in a single scheduler pass instead of paying one
        park/unpark round-trip per work request.
        """
        if max_entries is None:
            max_entries = self.poll_batch
        if max_entries <= 0:
            raise VerbsError("max_entries must be positive")
        first = yield self._cqes.get()
        batch = [first]
        while len(batch) < max_entries:
            wc = self._cqes.try_get()
            if wc is None:
                break
            batch.append(wc)
        _registry.histogram_observe("repro.verbs.cq.batch",
                                    float(len(batch)))
        return batch


class QueuePair:
    """A reliable-connected queue pair on a virtual NIC."""

    def __init__(
        self,
        vnic: "VirtualNic",
        pd: ProtectionDomain,
        send_cq: CompletionQueue,
        recv_cq: CompletionQueue,
        max_send_wr: int = 256,
    ) -> None:
        if pd.vnic is not vnic:
            raise VerbsError("PD belongs to a different vNIC")
        self.vnic = vnic
        self.pd = pd
        self.send_cq = send_cq
        self.recv_cq = recv_cq
        self.qp_num = next(_qp_nums)
        self.state = QpState.RESET
        self.max_send_wr = max_send_wr
        self.sq: Store = Store(vnic.env, capacity=max_send_wr)
        self.rq: Store = Store(vnic.env)
        #: Set when the vNIC connects this QP to a peer.
        self.remote: Optional["QueuePair"] = None
        self.channel_end = None

    # -- state machine --------------------------------------------------------------

    _TRANSITIONS = {
        QpState.RESET: {QpState.INIT, QpState.ERROR},
        QpState.INIT: {QpState.RTR, QpState.ERROR},
        QpState.RTR: {QpState.RTS, QpState.ERROR},
        QpState.RTS: {QpState.ERROR, QpState.RESET},
        QpState.ERROR: {QpState.RESET},
    }

    def modify(self, new_state: QpState) -> None:
        allowed = self._TRANSITIONS[self.state]
        if new_state not in allowed:
            raise QueuePairStateError(
                f"QP{self.qp_num}: illegal transition "
                f"{self.state.value} -> {new_state.value}"
            )
        self.state = new_state
        if new_state is QpState.ERROR:
            self._flush()

    def _flush(self) -> None:
        """Error state: flush outstanding receives with WR_FLUSH_ERROR."""
        while True:
            wr = self.rq.try_get()
            if wr is None:
                break
            self.recv_cq.push(WorkCompletion(
                wr_id=wr.wr_id, status=WcStatus.WR_FLUSH_ERROR,
                opcode=Opcode.RECV, byte_len=0, qp_num=self.qp_num,
                timestamp=self.vnic.env.now,
            ))

    # -- posting --------------------------------------------------------------------

    def post_send(self, wr: WorkRequest):
        """Queue a send-side WR (generator; returns after SQ admission)."""
        if self.state is not QpState.RTS:
            raise QueuePairStateError(
                f"QP{self.qp_num} must be RTS to send (is {self.state.value})"
            )
        if wr.opcode is Opcode.RECV:
            raise VerbsError("RECV work requests go to post_recv()")
        if wr.local_mr is not None:
            wr.local_mr.check_range(wr.local_offset, wr.length)
        yield from self.vnic.charge_post()
        yield self.sq.put(wr)
        self.vnic.kick(self)

    def post_recv(self, wr: WorkRequest) -> None:
        """Queue a receive buffer (non-blocking, allowed from INIT up)."""
        if self.state in (QpState.RESET, QpState.ERROR):
            raise QueuePairStateError(
                f"QP{self.qp_num} cannot accept receives in {self.state.value}"
            )
        if wr.opcode is not Opcode.RECV:
            raise VerbsError(f"post_recv got a {wr.opcode.value} WR")
        if wr.local_mr is None:
            raise MemoryRegionError(
                f"RECV WR {wr.wr_id} has no local memory region — "
                "WorkRequest validation admits RECVs only with a landing MR"
            )
        wr.local_mr.check_range(wr.local_offset, wr.length)
        self.rq.put(wr)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<QP {self.qp_num} {self.state.value}>"

"""FreeFlowNetwork: the whole system assembled (paper Fig. 4(b)).

One object wires together the three gray boxes of the paper's
architecture figure:

* the **network orchestrator** (extends the cluster orchestrator with
  location/IP/capability queries),
* one **network agent per host** (the customized overlay router), and
* per-container **vNICs + customized network library** (verbs, with
  socket and MPI translations layered on top).

Typical use::

    net = FreeFlowNetwork(cluster)
    vnic_a = net.attach(container_a)      # IP assigned, agent ready
    vnic_b = net.attach(container_b)
    decision = yield from net.connect(qp_a, qp_b)   # policy + channel

The library-side *location cache* (TTL-based) implements the paper's
"keeps pulling the newest container location information from the
network orchestrator" with a knob the caching ablation (E13) sweeps:
``cache_ttl_s=0`` forces a round trip to the orchestrator per
connection; a positive TTL amortises it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..cluster.container import Container
from ..cluster.orchestrator import ClusterOrchestrator
from ..errors import ChannelRebound, OrchestrationError
from ..telemetry import events as _events
from ..telemetry import registry as _registry
from ..transports.base import DuplexChannel, Mechanism
from .agent import FreeFlowAgent, build_channel
from .orchestrator import NetworkOrchestrator
from .policy import MechanismPolicy, PolicyConfig, PolicyDecision
from .verbs import QpState, QueuePair
from .vnic import VirtualNic

if TYPE_CHECKING:  # pragma: no cover
    from ..hardware.host import Host

__all__ = ["FreeFlowNetwork", "FlowConnection"]


class ConnectionEnd:
    """Migration-stable endpoint facade over a :class:`FlowConnection`.

    Applications hold this object; it resolves the live channel on every
    call, honours the connection's pause gate, and transparently retries
    a receive that was ejected by a channel swap — which is what keeps
    connections alive across live migrations (paper §7).
    """

    def __init__(self, connection: "FlowConnection", side: str) -> None:
        if side not in ("a", "b"):
            raise ValueError(f"side must be 'a' or 'b', got {side!r}")
        self._connection = connection
        self._side = side

    def _end(self):
        channel = self._connection.channel
        return channel.a if self._side == "a" else channel.b

    @property
    def mechanism(self) -> Mechanism:
        return self._end().mechanism

    def send(self, nbytes: int, payload=None):
        yield from self._connection.wait_if_paused()
        result = yield from self._end().send(nbytes, payload)
        return result

    def recv(self):
        while True:
            yield from self._connection.wait_if_paused()
            try:
                message = yield from self._end().recv()
                return message
            except ChannelRebound:
                continue


@dataclass
class FlowConnection:
    """A logical container-to-container connection the network tracks.

    Tracking connections centrally is what lets migration rebind them
    when an endpoint moves (paper §7, "Live migration").
    """

    src_name: str
    dst_name: str
    channel: DuplexChannel
    decision: PolicyDecision
    qp_a: Optional[QueuePair] = None
    qp_b: Optional[QueuePair] = None
    generation: int = 1
    failed: bool = False

    def __post_init__(self) -> None:
        self.a = ConnectionEnd(self, "a")
        self.b = ConnectionEnd(self, "b")
        self._paused = False
        self._resume_event = None

    @property
    def mechanism(self) -> Mechanism:
        return self.decision.mechanism

    @property
    def paused(self) -> bool:
        return self._paused

    def pause(self, env) -> None:
        """Stop admitting new sends/recvs at the facade (migration)."""
        if not self._paused:
            self._paused = True
            self._resume_event = env.event()

    def resume(self) -> None:
        if self._paused:
            self._paused = False
            event, self._resume_event = self._resume_event, None
            if event is not None:
                event.succeed()

    def wait_if_paused(self):
        """Generator: park until :meth:`resume` (no-op when running)."""
        while self._paused:
            yield self._resume_event

    def in_flight(self) -> int:
        """Messages accepted but not yet delivered, both directions."""
        lanes = (self.channel.lane_ab, self.channel.lane_ba)
        return sum(
            lane.stats.messages_sent - lane.stats.messages_delivered
            for lane in lanes
        )


class FreeFlowNetwork:
    """The FreeFlow control plane plus per-host agents."""

    def __init__(
        self,
        cluster: ClusterOrchestrator,
        policy: Optional[MechanismPolicy] = None,
        policy_config: Optional[PolicyConfig] = None,
        zero_copy: bool = True,
        cache_ttl_s: float = 1.0,
        query_latency_s: float = 50e-6,
        middlebox=None,
        inspect=None,
        tenant_rate_limits=None,
    ) -> None:
        if policy is None:
            policy = MechanismPolicy(policy_config)
        elif policy_config is not None:
            raise ValueError("pass either policy or policy_config, not both")
        if inspect is not None and middlebox is None:
            raise ValueError("an inspect predicate needs a middlebox")
        self.env = cluster.env
        self.cluster = cluster
        self.zero_copy = zero_copy
        self.cache_ttl_s = cache_ttl_s
        self.orchestrator = NetworkOrchestrator(
            cluster, policy, query_latency_s=query_latency_s
        )
        #: Optional inline IDS/IPS (paper §7) and the predicate deciding
        #: which container pairs it applies to (default: all pairs).
        self.middlebox = middlebox
        self.inspect = inspect if inspect is not None else (
            (lambda src, dst: True) if middlebox is not None else None
        )
        #: Per-tenant egress caps in bytes/s (paper §1: bypass loses the
        #: kernel's rate-limiting — FreeFlow restores it in the library).
        self.tenant_rate_limits = dict(tenant_rate_limits or {})
        self._tenant_buckets: dict[str, object] = {}
        self._agents: dict[str, FreeFlowAgent] = {}
        self._vnics: dict[str, VirtualNic] = {}
        self._cache: dict[tuple[str, str], tuple[PolicyDecision, float]] = {}
        self.connections: list[FlowConnection] = []
        self.cache_hits = 0
        self.cache_misses = 0
        registry = _registry.ACTIVE
        if registry is not None:
            registry.register_network(self)

    # -- agents ------------------------------------------------------------------

    def agent_for(self, host: "Host") -> FreeFlowAgent:
        """Get (or start) the network agent on ``host``."""
        agent = self._agents.get(host.name)
        if agent is None or agent.host is not host:
            agent = FreeFlowAgent(host, zero_copy=self.zero_copy)
            self._agents[host.name] = agent
        return agent

    # -- container attach ----------------------------------------------------------

    def attach(self, container: Container) -> VirtualNic:
        """Admit a container: allocate its overlay IP, create its vNIC."""
        if container.name in self._vnics:
            raise OrchestrationError(
                f"container {container.name!r} already attached"
            )
        self.orchestrator.register(container)
        self.agent_for(container.host)
        vnic = VirtualNic(container, self)
        self._vnics[container.name] = vnic
        _events.emit(self.env, "container.attach", container=container.name,
                     host=container.host.name, ip=container.ip)
        return vnic

    def detach(self, name: str) -> None:
        self._vnics.pop(name, None)
        self.orchestrator.deregister(name)
        self.invalidate(name)
        _events.emit(self.env, "container.detach", container=name)

    def vnic(self, name: str) -> VirtualNic:
        try:
            return self._vnics[name]
        except KeyError:
            raise OrchestrationError(f"{name!r} is not attached") from None

    # -- mechanism resolution (the library's orchestrator query) ---------------------

    def resolve(self, src_name: str, dst_name: str):
        """Policy decision with library-side caching (generator)."""
        key = (src_name, dst_name)
        if self.cache_ttl_s > 0:
            cached = self._cache.get(key)
            if cached is not None and cached[1] > self.env.now:
                self.cache_hits += 1
                return cached[0]
        self.cache_misses += 1
        decision = yield from self.orchestrator.query_mechanism(
            src_name, dst_name
        )
        _events.emit(self.env, "policy.decision", src=src_name, dst=dst_name,
                     mechanism=decision.mechanism.value,
                     reason=decision.reason)
        if self.cache_ttl_s > 0:
            self._cache[key] = (decision, self.env.now + self.cache_ttl_s)
        return decision

    def invalidate(self, name: str) -> None:
        """Drop every cached decision involving ``name`` (migration)."""
        stale = [k for k in self._cache if name in k]
        for key in stale:
            del self._cache[key]

    def enable_auto_invalidation(self) -> None:
        """Invalidate cached decisions whenever a container's published
        location changes (paper §7: the library "interact[s] with the
        orchestrator more frequently" once migration is in play).

        Uses a watch on the orchestrator's KV store, so the library
        learns about moves push-style instead of waiting out the TTL.
        """
        if getattr(self, "_watcher", None) is not None:
            return
        watch = self.orchestrator.kv.watch("/network/containers/")

        def pump():
            while True:
                event = yield watch.queue.get()
                name = event.key.rsplit("/", 1)[-1]
                self.invalidate(name)

        self._watcher = self.env.process(pump())

    # -- connection setup ---------------------------------------------------------------

    def connect_containers(self, src_name: str, dst_name: str):
        """Raw FreeFlow channel between two containers (generator).

        Benchmarks use this to measure the data plane without verbs-layer
        overhead; the verbs path goes through :meth:`connect`.
        """
        decision = yield from self.resolve(src_name, dst_name)
        channel = self._build(src_name, dst_name, decision)
        connection = FlowConnection(src_name, dst_name, channel, decision)
        self.connections.append(connection)
        _events.emit(self.env, "flow.connect", src=src_name, dst=dst_name,
                     mechanism=decision.mechanism.value)
        return connection

    def connect(self, qp_a: QueuePair, qp_b: QueuePair):
        """Connect two queue pairs through the policy-chosen channel.

        Performs the standard verbs state dance (INIT → RTR → RTS) on
        both QPs, so the application code looks exactly like the paper's
        Fig. 5 pseudo-code.
        """
        src = qp_a.vnic.container
        dst = qp_b.vnic.container
        decision = yield from self.resolve(src.name, dst.name)
        channel = self._build(src.name, dst.name, decision)
        for qp in (qp_a, qp_b):
            if qp.state is QpState.RESET:
                qp.modify(QpState.INIT)
            if qp.state is QpState.INIT:
                qp.modify(QpState.RTR)
            if qp.state is QpState.RTR:
                qp.modify(QpState.RTS)
        qp_a.vnic.bind(qp_a, channel.a, qp_b)
        qp_b.vnic.bind(qp_b, channel.b, qp_a)
        connection = FlowConnection(
            src.name, dst.name, channel, decision, qp_a=qp_a, qp_b=qp_b
        )
        self.connections.append(connection)
        _events.emit(self.env, "flow.connect", src=src.name, dst=dst.name,
                     mechanism=decision.mechanism.value, verbs=True)
        return decision

    def _build(
        self, src_name: str, dst_name: str, decision: PolicyDecision
    ) -> DuplexChannel:
        src = self.orchestrator.lookup(src_name).container
        dst = self.orchestrator.lookup(dst_name).container
        src_host = self.orchestrator.locate(src_name)
        dst_host = self.orchestrator.locate(dst_name)
        channel = build_channel(
            self.agent_for(src_host),
            self.agent_for(dst_host),
            decision.mechanism,
            crosses_vm_boundary=(src.vm is not dst.vm),
        )
        if self.middlebox is not None and self.inspect(src, dst):
            from .middlebox import wrap_channel

            channel = wrap_channel(
                channel, self.middlebox, src_host, dst_host
            )
        bucket_ab = self._tenant_bucket(src.tenant)
        bucket_ba = self._tenant_bucket(dst.tenant)
        if bucket_ab is not None or bucket_ba is not None:
            from .ratelimit import RateLimitedLane, limit_channel
            from ..transports.base import ChannelEnd

            if bucket_ab is not None:
                channel.lane_ab = RateLimitedLane(channel.lane_ab,
                                                  bucket_ab)
            if bucket_ba is not None:
                channel.lane_ba = RateLimitedLane(channel.lane_ba,
                                                  bucket_ba)
            channel.a = ChannelEnd(channel.lane_ab, channel.lane_ba)
            channel.b = ChannelEnd(channel.lane_ba, channel.lane_ab)
        return channel

    def _tenant_bucket(self, tenant: str):
        """The shared token bucket for a rate-limited tenant (or None)."""
        limit = self.tenant_rate_limits.get(tenant)
        if limit is None:
            return None
        bucket = self._tenant_buckets.get(tenant)
        if bucket is None:
            from .ratelimit import TokenBucket

            bucket = TokenBucket(self.env, rate_bytes_per_s=limit)
            self._tenant_buckets[tenant] = bucket
        return bucket

    # -- failure handling (§2.1 failure-mitigation story) -----------------------

    def handle_host_failure(self, host_name: str) -> list[FlowConnection]:
        """React to a dead host: lost containers leave the overlay and
        every connection touching them is reset.

        Returns the failed connections so the application (or a
        controller) can repair them once replacements are running.
        """
        from ..errors import ConnectionReset

        lost = self.cluster.fail_host(host_name)
        for name in lost:
            self._vnics.pop(name, None)
            self.orchestrator.deregister(name)
            self.invalidate(name)
        self._agents.pop(host_name, None)
        broken = [
            connection for connection in self.connections
            if not connection.failed
            and (connection.src_name in lost or connection.dst_name in lost)
        ]
        for connection in broken:
            connection.failed = True
            for lane in (connection.channel.lane_ab,
                         connection.channel.lane_ba):
                lane.eject_receivers(
                    ConnectionReset(f"host {host_name} failed")
                )
            connection.channel.close()
        _events.emit(self.env, "host.failure", host=host_name,
                     containers_lost=len(lost),
                     connections_broken=len(broken))
        return broken

    def repair_connection(self, connection: FlowConnection):
        """Rebuild a failed connection once both endpoints exist again
        (generator).  The caller resubmits + re-attaches the replacement
        container first; this re-resolves (possibly a new mechanism,
        since the replacement may land elsewhere) and swaps the channel.
        """
        if not connection.failed:
            raise OrchestrationError("connection has not failed")
        # Both endpoints must be attached again.
        self.vnic(connection.src_name)
        self.vnic(connection.dst_name)
        decision = yield from self.rebind(connection)
        connection.failed = False
        _events.emit(self.env, "flow.repair", src=connection.src_name,
                     dst=connection.dst_name,
                     mechanism=decision.mechanism.value)
        return decision

    # -- migration hook ---------------------------------------------------------------

    def rebind(self, connection: FlowConnection):
        """Re-resolve and rebuild a connection after an endpoint moved.

        Generator: costs an orchestrator query (the cache entry was
        invalidated by the migration controller).
        """
        decision = yield from self.resolve(
            connection.src_name, connection.dst_name
        )
        channel = self._build(
            connection.src_name, connection.dst_name, decision
        )
        old = connection.channel
        # Transplant delivered-but-unconsumed messages so nothing is lost,
        # then eject receivers still parked on the old lanes — they retry
        # against the new channel through the ConnectionEnd facade.
        for old_lane, new_lane in (
            (old.lane_ab, channel.lane_ab),
            (old.lane_ba, channel.lane_ba),
        ):
            for item in list(old_lane.inbox.items):
                new_lane.inbox.put(item)
            old_lane.inbox.items.clear()
        connection.channel = channel
        connection.decision = decision
        connection.generation += 1
        if connection.qp_a is not None and connection.qp_b is not None:
            connection.qp_a.vnic.rebind(
                connection.qp_a, channel.a, connection.qp_b
            )
            connection.qp_b.vnic.rebind(
                connection.qp_b, channel.b, connection.qp_a
            )
        else:
            for old_lane in (old.lane_ab, old.lane_ba):
                old_lane.eject_receivers(ChannelRebound("channel was rebound"))
        old.close()
        _events.emit(self.env, "flow.rebind", src=connection.src_name,
                     dst=connection.dst_name,
                     mechanism=decision.mechanism.value,
                     generation=connection.generation)
        return decision

"""FreeFlowNetwork: the whole system assembled (paper Fig. 4(b)).

One object wires together the three gray boxes of the paper's
architecture figure:

* the **network orchestrator** (extends the cluster orchestrator with
  location/IP/capability queries),
* one **network agent per host** (the customized overlay router), and
* per-container **vNICs + customized network library** (verbs, with
  socket and MPI translations layered on top).

Typical use::

    net = FreeFlowNetwork(cluster)
    vnic_a = net.attach(container_a)      # IP assigned, agent ready
    vnic_b = net.attach(container_b)
    decision = yield from net.connect(qp_a, qp_b)   # policy + channel

Flow lifecycle lives in :mod:`repro.core.flows`: every connection is a
:class:`~repro.core.flows.FlowConnection` registered in the network's
:class:`~repro.core.flows.FlowTable`, channels are built by its
:class:`~repro.core.flows.ChannelFactory`, and the watch-driven
:class:`~repro.core.flows.FlowReconciler` (``net.reconciler.start()``)
converges flows automatically when containers move, hosts die or NIC
capabilities change.  ``handle_host_failure``/``repair_connection``
remain as thin clients of the reconciler's primitives.

The library-side *location cache* (TTL-based) implements the paper's
"keeps pulling the newest container location information from the
network orchestrator" with a knob the caching ablation (E13) sweeps:
``cache_ttl_s=0`` forces a round trip to the orchestrator per
connection; a positive TTL amortises it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..cluster.container import Container
from ..cluster.orchestrator import ClusterOrchestrator
from ..errors import ChannelRebound, OrchestrationError
from ..telemetry import events as _events
from ..telemetry import registry as _registry
from .agent import FreeFlowAgent
from .flows import (
    ChannelFactory,
    ConnectionEnd,
    FlowConnection,
    FlowReconciler,
    FlowState,
    FlowTable,
    label_channel,
)
from .orchestrator import NetworkOrchestrator
from .policy import MechanismPolicy, PolicyConfig, PolicyDecision
from .verbs import QpState, QueuePair
from .vnic import VirtualNic

if TYPE_CHECKING:  # pragma: no cover
    from ..hardware.host import Host

__all__ = ["FreeFlowNetwork", "FlowConnection", "ConnectionEnd",
           "FlowState"]


class FreeFlowNetwork:
    """The FreeFlow control plane plus per-host agents."""

    def __init__(
        self,
        cluster: ClusterOrchestrator,
        policy: Optional[MechanismPolicy] = None,
        policy_config: Optional[PolicyConfig] = None,
        zero_copy: bool = True,
        cache_ttl_s: float = 1.0,
        query_latency_s: float = 50e-6,
        middlebox=None,
        inspect=None,
        tenant_rate_limits=None,
    ) -> None:
        if policy is None:
            policy = MechanismPolicy(policy_config)
        elif policy_config is not None:
            raise ValueError("pass either policy or policy_config, not both")
        if inspect is not None and middlebox is None:
            raise ValueError("an inspect predicate needs a middlebox")
        self.env = cluster.env
        self.cluster = cluster
        self.zero_copy = zero_copy
        self.cache_ttl_s = cache_ttl_s
        self.orchestrator = NetworkOrchestrator(
            cluster, policy, query_latency_s=query_latency_s
        )
        #: Optional inline IDS/IPS (paper §7) and the predicate deciding
        #: which container pairs it applies to (default: all pairs).
        self.middlebox = middlebox
        self.inspect = inspect if inspect is not None else (
            (lambda src, dst: True) if middlebox is not None else None
        )
        #: Per-tenant egress caps in bytes/s (paper §1: bypass loses the
        #: kernel's rate-limiting — FreeFlow restores it in the library).
        self.tenant_rate_limits = dict(tenant_rate_limits or {})
        self._tenant_buckets: dict[str, object] = {}
        self._agents: dict[str, FreeFlowAgent] = {}
        self._vnics: dict[str, VirtualNic] = {}
        self._cache: dict[tuple[str, str], tuple[PolicyDecision, float]] = {}
        #: The flow-lifecycle subsystem (see repro.core.flows).
        self.flows = FlowTable(self.env)
        self.factory = ChannelFactory(self)
        self.reconciler = FlowReconciler(self)
        self.cache_hits = 0
        self.cache_misses = 0
        registry = _registry.ACTIVE
        if registry is not None:
            registry.register_network(self)

    @property
    def connections(self) -> list[FlowConnection]:
        """Open flows (BROKEN included), creation-ordered.

        A view over the FlowTable: closed flows are pruned there, so
        this no longer grows without bound across connect/close churn.
        """
        return self.flows.open_flows()

    # -- agents ------------------------------------------------------------------

    def agent_for(self, host: "Host") -> FreeFlowAgent:
        """Get (or start) the network agent on ``host``."""
        agent = self._agents.get(host.name)
        if agent is None or agent.host is not host:
            agent = FreeFlowAgent(host, zero_copy=self.zero_copy)
            self._agents[host.name] = agent
        return agent

    # -- container attach ----------------------------------------------------------

    def attach(self, container: Container) -> VirtualNic:
        """Admit a container: allocate its overlay IP, create its vNIC."""
        if container.name in self._vnics:
            raise OrchestrationError(
                f"container {container.name!r} already attached"
            )
        self.orchestrator.register(container)
        self.agent_for(container.host)
        vnic = VirtualNic(container, self)
        self._vnics[container.name] = vnic
        _events.emit(self.env, "container.attach", container=container.name,
                     host=container.host.name, ip=container.ip)
        return vnic

    def detach(self, name: str) -> None:
        """Remove a container from the overlay, closing its flows."""
        from ..errors import ConnectionReset

        for flow in self.flows.flows_for(name):
            if flow.channel is not None:
                for lane in (flow.channel.lane_ab, flow.channel.lane_ba):
                    lane.eject_receivers(
                        ConnectionReset(f"{name} detached")
                    )
            self.flows.close(flow, reason=f"{name} detached")
        self._vnics.pop(name, None)
        self.orchestrator.deregister(name)
        self.invalidate(name)
        _events.emit(self.env, "container.detach", container=name)

    def vnic(self, name: str) -> VirtualNic:
        try:
            return self._vnics[name]
        except KeyError:
            raise OrchestrationError(f"{name!r} is not attached") from None

    # -- mechanism resolution (the library's orchestrator query) ---------------------

    def resolve(self, src_name: str, dst_name: str):
        """Policy decision with library-side caching (generator)."""
        key = (src_name, dst_name)
        if self.cache_ttl_s > 0:
            cached = self._cache.get(key)
            if cached is not None and cached[1] > self.env.now:
                self.cache_hits += 1
                return cached[0]
        self.cache_misses += 1
        decision = yield from self.orchestrator.query_mechanism(
            src_name, dst_name
        )
        _events.emit(self.env, "policy.decision", src=src_name, dst=dst_name,
                     mechanism=decision.mechanism.value,
                     reason=decision.reason)
        if self.cache_ttl_s > 0:
            self._cache[key] = (decision, self.env.now + self.cache_ttl_s)
        return decision

    def invalidate(self, name: str) -> None:
        """Drop every cached decision involving ``name`` (migration)."""
        stale = [k for k in self._cache if name in k]
        for key in stale:
            del self._cache[key]

    def enable_auto_invalidation(self) -> None:
        """Invalidate cached decisions whenever a container's published
        location changes (paper §7: the library "interact[s] with the
        orchestrator more frequently" once migration is in play).

        Uses a watch on the orchestrator's KV store, so the library
        learns about moves push-style instead of waiting out the TTL.
        """
        if getattr(self, "_watcher", None) is not None:
            return
        watch = self.orchestrator.kv.watch("/network/containers/")

        def pump():
            while True:
                event = yield watch.queue.get()
                name = event.key.rsplit("/", 1)[-1]
                self.invalidate(name)

        self._watcher = self.env.process(pump())

    # -- connection setup ---------------------------------------------------------------

    def connect_containers(self, src_name: str, dst_name: str):
        """Raw FreeFlow channel between two containers (generator).

        Benchmarks use this to measure the data plane without verbs-layer
        overhead; the verbs path goes through :meth:`connect`.
        """
        flow = self.flows.open(src_name, dst_name)
        try:
            decision = yield from self.resolve(src_name, dst_name)
            channel = self.factory.build(src_name, dst_name, decision)
        except BaseException:
            self.flows.close(flow, reason="connect-failed")
            raise
        self.flows.activate(flow, channel, decision)
        _events.emit(self.env, "flow.connect", src=src_name, dst=dst_name,
                     mechanism=decision.mechanism.value)
        return flow

    def connect(self, qp_a: QueuePair, qp_b: QueuePair):
        """Connect two queue pairs through the policy-chosen channel.

        Performs the standard verbs state dance (INIT → RTR → RTS) on
        both QPs, so the application code looks exactly like the paper's
        Fig. 5 pseudo-code.
        """
        src = qp_a.vnic.container
        dst = qp_b.vnic.container
        flow = self.flows.open(src.name, dst.name)
        try:
            decision = yield from self.resolve(src.name, dst.name)
            channel = self.factory.build(src.name, dst.name, decision)
        except BaseException:
            self.flows.close(flow, reason="connect-failed")
            raise
        for qp in (qp_a, qp_b):
            if qp.state is QpState.RESET:
                qp.modify(QpState.INIT)
            if qp.state is QpState.INIT:
                qp.modify(QpState.RTR)
            if qp.state is QpState.RTR:
                qp.modify(QpState.RTS)
        qp_a.vnic.bind(qp_a, channel.a, qp_b)
        qp_b.vnic.bind(qp_b, channel.b, qp_a)
        flow.qp_a = qp_a
        flow.qp_b = qp_b
        self.flows.activate(flow, channel, decision)
        _events.emit(self.env, "flow.connect", src=src.name, dst=dst.name,
                     mechanism=decision.mechanism.value, verbs=True)
        return decision

    def close_connection(self, connection: FlowConnection) -> None:
        """Close a flow and prune it from the table (idempotent)."""
        self.flows.close(connection)

    def _tenant_bucket(self, tenant: str):
        """The shared token bucket for a rate-limited tenant (or None)."""
        limit = self.tenant_rate_limits.get(tenant)
        if limit is None:
            return None
        bucket = self._tenant_buckets.get(tenant)
        if bucket is None:
            from .ratelimit import TokenBucket

            bucket = TokenBucket(self.env, rate_bytes_per_s=limit)
            self._tenant_buckets[tenant] = bucket
        return bucket

    # -- failure handling (§2.1 failure-mitigation story) -----------------------
    #
    # Thin clients of the reconciler's primitives: the same code paths
    # run whether failure is reported here synchronously or observed by
    # the reconciler's host-liveness watch.

    def handle_host_failure(self, host_name: str) -> list[FlowConnection]:
        """React to a dead host: lost containers leave the overlay and
        every flow touching them goes BROKEN (channel reset).

        Returns the broken flows so the application (or a controller)
        can repair them once replacements are running.  With the
        reconciler started, the replacement attach alone triggers the
        repair automatically.
        """
        self.cluster.fail_host(host_name)
        return self.reconciler.host_failed(host_name, force_emit=True)

    def repair_connection(self, connection: FlowConnection):
        """Rebuild a BROKEN flow once both endpoints exist again
        (generator).  The caller resubmits + re-attaches the replacement
        container first; this re-resolves (possibly a new mechanism,
        since the replacement may land elsewhere) and swaps the channel.
        """
        if not connection.failed:
            raise OrchestrationError("connection has not failed")
        # Both endpoints must be attached again.
        self.vnic(connection.src_name)
        self.vnic(connection.dst_name)
        decision = yield from self.reconciler.repair_flow(connection)
        return decision

    # -- migration hook ---------------------------------------------------------------

    def rebind(self, connection: FlowConnection):
        """Re-resolve and rebuild a flow's channel after an endpoint
        moved (or came back from a failure).

        Generator: costs an orchestrator query (the cache entry was
        invalidated by whoever observed the move).  The flow passes
        through REBINDING and lands back in ACTIVE — or PAUSED, when a
        controller holds the pause gate for its downtime window.  The
        state machine rejects rebinds of RESOLVING/CLOSED flows.
        """
        table = self.flows
        table.transition(connection, FlowState.REBINDING, reason="rebind")
        try:
            decision = yield from self.resolve(
                connection.src_name, connection.dst_name
            )
            channel = self.factory.build(
                connection.src_name, connection.dst_name, decision
            )
        except BaseException:
            table.transition(connection, FlowState.BROKEN,
                             reason="rebind-failed")
            raise
        old = connection.channel
        # Label the new lanes before transplanting so open traces rekey
        # to the flow label, not the lane's anonymous transport name.
        label_channel(connection, channel)
        # Transplant delivered-but-unconsumed messages so nothing is
        # lost (stats + trace move with them), then eject receivers
        # still parked on the old lanes — they retry against the new
        # channel through the ConnectionEnd facade.
        moved = self.factory.transplant(old, channel)
        connection.channel = channel
        connection.decision = decision
        connection.generation += 1
        if connection.qp_a is not None and connection.qp_b is not None:
            connection.qp_a.vnic.rebind(
                connection.qp_a, channel.a, connection.qp_b
            )
            connection.qp_b.vnic.rebind(
                connection.qp_b, channel.b, connection.qp_a
            )
        else:
            for old_lane in (old.lane_ab, old.lane_ba):
                old_lane.eject_receivers(ChannelRebound("channel was rebound"))
        old.close()
        table.transition(
            connection,
            FlowState.PAUSED if connection.paused else FlowState.ACTIVE,
            reason="rebound",
        )
        _events.emit(self.env, "flow.rebind", src=connection.src_name,
                     dst=connection.dst_name,
                     mechanism=decision.mechanism.value,
                     generation=connection.generation,
                     transplanted=moved)
        return decision

"""FreeFlow core (S8-S11, S15): the paper's contribution.

The centralized network orchestrator, per-host network agents with the
integrated data plane, virtual RDMA NICs executing verbs over any
mechanism, the socket/MPI translations, and live migration support.
"""

from .agent import AgentStats, FreeFlowAgent, RelayLane, build_channel
from .flows import (
    ChannelFactory,
    ConnectionEnd,
    FlowReconciler,
    FlowState,
    FlowTable,
)
from .middlebox import InspectedLane, Middlebox, wrap_channel
from .migration import MigrationController, MigrationReport
from .mpi import (
    MPI_TRANSLATION_CYCLES,
    Communicator,
    PendingRequest,
    RankEndpoint,
)
from .network import FlowConnection, FreeFlowNetwork
from .orchestrator import ContainerRecord, NetworkOrchestrator
from .policy import MechanismPolicy, PolicyConfig, PolicyDecision
from .ratelimit import RateLimitedLane, TokenBucket, limit_channel
from .ringbuf import RingBuffer
from .sockets import (
    RECV_MAX_BYTES,
    RING_BYTES,
    SOCKET_TRANSLATION_CYCLES,
    ZERO_COPY_THRESHOLD_BYTES,
    FreeFlowListener,
    FreeFlowSocket,
    SocketLayer,
)
from .verbs import (
    CQ_POLL_BATCH,
    CompletionQueue,
    MemoryRegion,
    Opcode,
    ProtectionDomain,
    QpState,
    QueuePair,
    WcStatus,
    WorkCompletion,
    WorkRequest,
)
from .vnic import VNIC_POST_OVERHEAD_CYCLES, VirtualNic

__all__ = [
    "AgentStats",
    "CQ_POLL_BATCH",
    "ChannelFactory",
    "Communicator",
    "CompletionQueue",
    "ConnectionEnd",
    "ContainerRecord",
    "FlowConnection",
    "FlowReconciler",
    "FlowState",
    "FlowTable",
    "FreeFlowAgent",
    "FreeFlowListener",
    "FreeFlowNetwork",
    "FreeFlowSocket",
    "InspectedLane",
    "MPI_TRANSLATION_CYCLES",
    "MechanismPolicy",
    "MemoryRegion",
    "Middlebox",
    "MigrationController",
    "MigrationReport",
    "NetworkOrchestrator",
    "Opcode",
    "PendingRequest",
    "PolicyConfig",
    "PolicyDecision",
    "ProtectionDomain",
    "QpState",
    "QueuePair",
    "RECV_MAX_BYTES",
    "RING_BYTES",
    "RankEndpoint",
    "RateLimitedLane",
    "RelayLane",
    "RingBuffer",
    "TokenBucket",
    "limit_channel",
    "SOCKET_TRANSLATION_CYCLES",
    "SocketLayer",
    "VNIC_POST_OVERHEAD_CYCLES",
    "VirtualNic",
    "WcStatus",
    "WorkCompletion",
    "WorkRequest",
    "ZERO_COPY_THRESHOLD_BYTES",
    "build_channel",
    "wrap_channel",
]

"""Middlebox support under FreeFlow (paper §7, "Security and middle-box").

"One valid concern for FreeFlow is how legacy middle-boxes will work for
communication via shared-memory or RDMA ... We are investigating how
best to support existing middle-boxes (e.g. IDS/IPS) under FreeFlow."

This module is that investigation, made concrete: an inline inspection
point that can be attached to *any* FreeFlow channel, regardless of the
underlying mechanism.  Because kernel-bypass traffic never crosses the
kernel's netfilter hooks, inspection must happen in the library/agent
layer — which is exactly where :class:`InspectedLane` sits.  The cost is
honest: DPI burns host CPU per byte and adds latency, so bench E19 can
quantify what mandatory inspection costs each mechanism.

Filtering verdicts are supported (an IPS, not just an IDS): messages the
middlebox rejects are counted and silently dropped, like a firewall DROP
target.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional

from ..transports.base import DuplexChannel, Lane, Mechanism

if TYPE_CHECKING:  # pragma: no cover
    from ..hardware.host import Host

__all__ = ["Middlebox", "InspectedLane", "wrap_channel"]


@dataclass
class Middlebox:
    """An inline IDS/IPS function applied to FreeFlow traffic.

    ``verdict(nbytes, payload)`` returns True to allow the message; the
    default allows everything (pure IDS).  Costs are calibrated to a
    software DPI engine (~1 cycle/byte for signature matching).
    """

    name: str = "ids"
    cycles_per_byte: float = 1.0
    per_message_cycles: float = 2000.0
    added_latency_s: float = 2.0e-6
    verdict: Callable[[int, Any], bool] = field(
        default=lambda nbytes, payload: True
    )
    inspected_messages: int = 0
    inspected_bytes: int = 0
    dropped_messages: int = 0

    def inspection_cycles(self, nbytes: int) -> float:
        return self.per_message_cycles + nbytes * self.cycles_per_byte


class InspectedLane:
    """A lane wrapper that funnels every send through a middlebox.

    Duck-types the :class:`~repro.transports.base.Lane` surface the rest
    of the stack uses (mechanism/stats/inbox/send/recv/close), delegating
    everything but the inspection to the wrapped lane — so it composes
    with shm, RDMA, DPDK and TCP alike.
    """

    def __init__(self, inner: Lane, middlebox: Middlebox,
                 host: "Host") -> None:
        self.inner = inner
        self.middlebox = middlebox
        self.host = host
        self.env = inner.env

    @property
    def mechanism(self) -> Mechanism:
        return self.inner.mechanism

    @property
    def stats(self):
        return self.inner.stats

    @property
    def inbox(self):
        return self.inner.inbox

    @property
    def closed(self) -> bool:
        return self.inner.closed

    @property
    def on_deliver(self):
        return self.inner.on_deliver

    @on_deliver.setter
    def on_deliver(self, hook) -> None:
        self.inner.on_deliver = hook

    def send(self, nbytes: int, payload: Any = None):
        """Inspect, then forward (generator).  Returns None on a drop."""
        box = self.middlebox
        yield from self.host.cpu.execute(box.inspection_cycles(nbytes))
        yield self.env.timeout(box.added_latency_s)
        if not box.verdict(nbytes, payload):
            box.dropped_messages += 1
            return None
        box.inspected_messages += 1
        box.inspected_bytes += nbytes
        message = yield from self.inner.send(nbytes, payload)
        return message

    def recv(self):
        message = yield from self.inner.recv()
        return message

    def adopt(self, message: Any) -> None:
        self.inner.adopt(message)

    def eject_receivers(self, exception: BaseException) -> None:
        self.inner.eject_receivers(exception)

    def close(self) -> None:
        self.inner.close()


def wrap_channel(channel: DuplexChannel, middlebox: Middlebox,
                 src_host: "Host", dst_host: "Host") -> DuplexChannel:
    """Put ``middlebox`` inline on both directions of a channel.

    Each direction is inspected on its *sending* host, where the library
    intercepts the call — the only place that sees kernel-bypass bytes.
    """
    channel.lane_ab = InspectedLane(channel.lane_ab, middlebox, src_host)
    channel.lane_ba = InspectedLane(channel.lane_ba, middlebox, dst_host)
    # Rebuild the ends so they point at the wrapped lanes.
    from ..transports.base import ChannelEnd

    channel.a = ChannelEnd(channel.lane_ab, channel.lane_ba)
    channel.b = ChannelEnd(channel.lane_ba, channel.lane_ab)
    return channel

"""The simulation environment: virtual clock plus event queue.

:class:`Environment` owns the queues of scheduled events and the current
simulated time.  All FreeFlow experiments run inside one environment, so a
whole cluster — hosts, NICs, agents, containers, the orchestrator — advances
deterministically in virtual time.

Time unit convention for this project: **seconds** (floats).  Hardware
models convert from cycles / bytes / bits internally.

Performance notes: the classic single-heap design pays O(log n) per event,
but almost no event in a FreeFlow run actually needs it.  The environment
therefore keeps three internally-sorted structures and ``step()`` pops the
globally smallest ``(time, priority, eid)`` key, which makes the execution
order *identical* to a single heap — time, then priority, then creation
order — while the common cases are O(1):

* ``_ready`` — FIFO deque of immediate events (``succeed()`` with no
  delay: store handoffs, process resumes, resource grants).  Naturally
  sorted: appended at the current time with increasing event ids, and the
  clock never moves backwards.
* ``_tail`` — deque of *delayed* events whose keys arrive in
  non-decreasing order (the dominant pattern: fixed service latencies
  re-armed as time advances).  A schedule whose key is not ``>=`` the
  tail's last entry falls back to the heap.
* ``_queue`` — heap for everything else: urgent (interrupt) events and
  out-of-order delayed inserts.
"""

from __future__ import annotations

import heapq
from collections import deque
from itertools import count
from typing import Any, Iterable, Optional

from .events import NO_CALLBACKS, AllOf, AnyOf, Event, Timeout
from .process import Process, ProcessGen

__all__ = ["Environment", "EmptySchedule", "StopSimulation"]

#: Scheduling priorities: URGENT events (interrupts) run before NORMAL
#: events that share the same timestamp.
URGENT = 0
NORMAL = 1


class EmptySchedule(Exception):
    """Raised by ``step()`` when no events remain."""


class StopSimulation(Exception):
    """Raised internally to end ``run(until=event)`` early."""


class Environment:
    """Discrete-event execution environment.

    Parameters
    ----------
    initial_time:
        Starting value of the virtual clock (seconds).
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        #: Heap of urgent / out-of-order delayed events.
        self._queue: list[tuple[float, int, int, Event]] = []
        #: FIFO of zero-delay NORMAL-priority events (the common case).
        self._ready: deque[tuple[float, int, int, Event]] = deque()
        #: Monotone deque of delayed NORMAL events (keys non-decreasing).
        self._tail: deque[tuple[float, int, int, Event]] = deque()
        self._eid = count()
        self._active_process: Optional[Process] = None
        #: Total events processed by :meth:`step` (perf accounting).
        self.events_processed: int = 0

    # -- clock -----------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being stepped (None between steps)."""
        return self._active_process

    # -- event creation helpers ------------------------------------------

    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGen) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that triggers when every event in ``events`` succeeds."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that triggers when any event in ``events`` succeeds."""
        return AnyOf(self, events)

    # -- scheduling and execution -----------------------------------------

    def schedule(
        self, event: Event, delay: float = 0.0, priority: int = NORMAL
    ) -> None:
        """Queue ``event`` to be processed ``delay`` seconds from now."""
        if delay == 0.0 and priority == NORMAL:
            # Fast path: immediate events keep FIFO order on a deque; no
            # heap, no log-n sift.
            self._ready.append((self._now, NORMAL, next(self._eid), event))
            return
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        entry = (self._now + delay, priority, next(self._eid), event)
        if priority == NORMAL:
            tail = self._tail
            if not tail or entry >= tail[-1]:
                # Monotone insert (fixed service latencies re-armed as the
                # clock advances): O(1) append instead of a heap sift.
                tail.append(entry)
                return
        heapq.heappush(self._queue, entry)

    def _next_entry_time(self) -> float:
        """Timestamp of the globally next event, or ``inf`` if none."""
        first = float("inf")
        if self._ready:
            first = self._ready[0][0]
        if self._tail and self._tail[0][0] < first:
            first = self._tail[0][0]
        if self._queue and self._queue[0][0] < first:
            first = self._queue[0][0]
        return first

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._next_entry_time()

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        # Pop the globally smallest (time, priority, eid) of the three
        # internally-sorted structures (keep in sync with run()'s drain
        # loop).  Each branch below compares at most two front keys.
        ready = self._ready
        tail = self._tail
        queue = self._queue
        if ready:
            best = ready[0]
            if tail and tail[0] < best:
                best = tail[0]
                if queue and queue[0] < best:
                    self._now, _, _, event = heapq.heappop(queue)
                else:
                    self._now, _, _, event = tail.popleft()
            elif queue and queue[0] < best:
                self._now, _, _, event = heapq.heappop(queue)
            else:
                self._now, _, _, event = ready.popleft()
        elif tail:
            if queue and queue[0] < tail[0]:
                self._now, _, _, event = heapq.heappop(queue)
            else:
                self._now, _, _, event = tail.popleft()
        elif queue:
            self._now, _, _, event = heapq.heappop(queue)
        else:
            raise EmptySchedule()
        self.events_processed += 1

        # Inlined Event._mark_processed + dispatch: the compact callback
        # representation means no list is built for 0/1-waiter events.
        callbacks = event._callbacks
        event._callbacks = None
        if type(callbacks) is list:
            for callback in callbacks:
                callback(event)
        elif callbacks is not NO_CALLBACKS:
            callbacks(event)

        if not event._ok and not event.defused:
            # A failure that nobody consumed: surface it loudly.
            exc = event._value
            raise exc

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the queue drains;
        * a number — run until the clock reaches that time;
        * an :class:`Event` — run until that event is processed, returning
          its value (or raising its exception).
        """
        if until is None:
            stop_at = float("inf")
            stop_event: Optional[Event] = None
        elif isinstance(until, Event):
            stop_at = float("inf")
            stop_event = until
            if stop_event.processed:
                if stop_event._ok:
                    return stop_event._value
                raise stop_event._value
            stop_event._add_callback(self._stop_on)
        else:
            stop_at = float(until)
            stop_event = None
            if stop_at < self._now:
                raise ValueError(
                    f"until={stop_at} is in the past (now={self._now})"
                )

        try:
            if stop_at == float("inf"):
                # No time bound: drain the queues with step()'s body
                # inlined (keep in sync with step()) — the per-event method
                # call is measurable at millions of events per run.
                ready = self._ready
                tail = self._tail
                queue = self._queue
                heappop = heapq.heappop
                events = 0
                try:
                    while ready or tail or queue:
                        if ready and not queue and (
                            not tail or tail[0][0] > ready[0][0]
                        ):
                            # Batched same-timestamp drain.  Every pending
                            # ready entry shares one timestamp (ready
                            # entries are appended at the current time and
                            # the clock cannot advance past one), and the
                            # tail/heap heads are strictly later — so the
                            # whole run pops FIFO with no per-event
                            # three-way compare, in heap-identical order
                            # (appends during the run land at the same
                            # time with larger eids, i.e. after).  A rack
                            # failure fanning out thousands of same-tick
                            # callbacks rides this loop.  Bail out to the
                            # careful loop if an URGENT event lands on the
                            # heap mid-run (it must preempt the rest), or
                            # if a mid-run append seeds an empty tail at
                            # the current instant (sub-ulp delays round
                            # to now).
                            popleft = ready.popleft
                            while ready:
                                self._now, _, _, event = popleft()
                                events += 1
                                callbacks = event._callbacks
                                event._callbacks = None
                                if type(callbacks) is list:
                                    for callback in callbacks:
                                        callback(event)
                                elif callbacks is not NO_CALLBACKS:
                                    callbacks(event)
                                if not event._ok and not event.defused:
                                    raise event._value
                                if queue or (
                                    tail and tail[0][0] <= self._now
                                ):
                                    break
                            continue
                        if ready:
                            best = ready[0]
                            if tail and tail[0] < best:
                                best = tail[0]
                                if queue and queue[0] < best:
                                    self._now, _, _, event = heappop(queue)
                                else:
                                    self._now, _, _, event = tail.popleft()
                            elif queue and queue[0] < best:
                                self._now, _, _, event = heappop(queue)
                            else:
                                self._now, _, _, event = ready.popleft()
                        elif tail:
                            if queue and queue[0] < tail[0]:
                                self._now, _, _, event = heappop(queue)
                            else:
                                self._now, _, _, event = tail.popleft()
                        else:
                            self._now, _, _, event = heappop(queue)
                        events += 1
                        callbacks = event._callbacks
                        event._callbacks = None
                        if type(callbacks) is list:
                            for callback in callbacks:
                                callback(event)
                        elif callbacks is not NO_CALLBACKS:
                            callbacks(event)
                        if not event._ok and not event.defused:
                            raise event._value
                finally:
                    self.events_processed += events
            else:
                while True:
                    next_at = self._next_entry_time()
                    if next_at > stop_at:  # also covers drained queues (inf)
                        self._now = stop_at
                        return None
                    self.step()
        except StopSimulation as stop:
            event = stop.args[0]
            if event._ok:
                return event._value
            raise event._value from None
        except EmptySchedule:  # pragma: no cover - race with while condition
            pass

        if stop_event is not None and not stop_event.processed:
            raise RuntimeError(
                "simulation ran out of events before `until` event triggered"
            )
        if stop_at != float("inf"):
            self._now = stop_at
        if stop_event is not None:
            if stop_event._ok:
                return stop_event._value
            raise stop_event._value
        return None

    @staticmethod
    def _stop_on(event: Event) -> None:
        event.defused = True
        raise StopSimulation(event)

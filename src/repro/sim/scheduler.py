"""The simulation environment: virtual clock plus event queue.

:class:`Environment` owns the heap of scheduled events and the current
simulated time.  All FreeFlow experiments run inside one environment, so a
whole cluster — hosts, NICs, agents, containers, the orchestrator — advances
deterministically in virtual time.

Time unit convention for this project: **seconds** (floats).  Hardware
models convert from cycles / bytes / bits internally.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Iterable, Optional

from .events import AllOf, AnyOf, Event, Timeout
from .process import Process, ProcessGen

__all__ = ["Environment", "EmptySchedule", "StopSimulation"]

#: Scheduling priorities: URGENT events (interrupts) run before NORMAL
#: events that share the same timestamp.
URGENT = 0
NORMAL = 1


class EmptySchedule(Exception):
    """Raised by ``step()`` when no events remain."""


class StopSimulation(Exception):
    """Raised internally to end ``run(until=event)`` early."""


class Environment:
    """Discrete-event execution environment.

    Parameters
    ----------
    initial_time:
        Starting value of the virtual clock (seconds).
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._eid = count()
        self._active_process: Optional[Process] = None

    # -- clock -----------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being stepped (None between steps)."""
        return self._active_process

    # -- event creation helpers ------------------------------------------

    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGen) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that triggers when every event in ``events`` succeeds."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that triggers when any event in ``events`` succeeds."""
        return AnyOf(self, events)

    # -- scheduling and execution -----------------------------------------

    def schedule(
        self, event: Event, delay: float = 0.0, priority: int = NORMAL
    ) -> None:
        """Queue ``event`` to be processed ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        heapq.heappush(
            self._queue, (self._now + delay, priority, next(self._eid), event)
        )

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        try:
            self._now, _, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None

        callbacks = event._mark_processed()
        for callback in callbacks:
            callback(event)

        if not event._ok and not event.defused:
            # A failure that nobody consumed: surface it loudly.
            exc = event._value
            raise exc

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the queue drains;
        * a number — run until the clock reaches that time;
        * an :class:`Event` — run until that event is processed, returning
          its value (or raising its exception).
        """
        if until is None:
            stop_at = float("inf")
            stop_event: Optional[Event] = None
        elif isinstance(until, Event):
            stop_at = float("inf")
            stop_event = until
            if stop_event.processed:
                if stop_event._ok:
                    return stop_event._value
                raise stop_event._value
            assert stop_event.callbacks is not None
            stop_event.callbacks.append(self._stop_on)
        else:
            stop_at = float(until)
            stop_event = None
            if stop_at < self._now:
                raise ValueError(
                    f"until={stop_at} is in the past (now={self._now})"
                )

        try:
            while self._queue:
                if self._queue[0][0] > stop_at:
                    self._now = stop_at
                    return None
                self.step()
        except StopSimulation as stop:
            event = stop.args[0]
            if event._ok:
                return event._value
            raise event._value from None
        except EmptySchedule:  # pragma: no cover - race with while condition
            pass

        if stop_event is not None and not stop_event.processed:
            raise RuntimeError(
                "simulation ran out of events before `until` event triggered"
            )
        if stop_at != float("inf"):
            self._now = stop_at
        if stop_event is not None:
            if stop_event._ok:
                return stop_event._value
            raise stop_event._value
        return None

    @staticmethod
    def _stop_on(event: Event) -> None:
        event.defused = True
        raise StopSimulation(event)

"""Discrete-event simulation engine (substrate S1).

A from-scratch, SimPy-style process-interaction engine: generators yield
:class:`Event` objects and the :class:`Environment` resumes them in
virtual-time order.  See DESIGN.md §3.
"""

from .backoff import Backoff
from .events import AllOf, AnyOf, Condition, Event, EventAlreadyTriggered, Timeout
from .monitor import (
    IntervalRecorder,
    Series,
    StreamingSeries,
    ThroughputTimeline,
    TimeWeighted,
)
from .process import Interrupt, Process, ProcessGen
from .rand import RandomStream, StreamFactory
from .resources import (
    Release,
    Request,
    Resource,
    Store,
    StoreGet,
    StorePut,
    Tank,
    TankGet,
    TankPut,
)
from .scheduler import EmptySchedule, Environment

__all__ = [
    "AllOf",
    "AnyOf",
    "Backoff",
    "Condition",
    "EmptySchedule",
    "Environment",
    "Event",
    "EventAlreadyTriggered",
    "Interrupt",
    "IntervalRecorder",
    "Process",
    "ProcessGen",
    "RandomStream",
    "Release",
    "Request",
    "Resource",
    "Series",
    "Store",
    "StoreGet",
    "StorePut",
    "StreamFactory",
    "StreamingSeries",
    "Tank",
    "TankGet",
    "TankPut",
    "ThroughputTimeline",
    "TimeWeighted",
    "Timeout",
]

"""Event primitives for the discrete-event simulation engine.

The engine follows the classic process-interaction style (like SimPy, but
implemented from scratch for this reproduction): simulation *processes* are
Python generators that ``yield`` events, and the :class:`Environment`
(see :mod:`repro.sim.scheduler`) resumes them when those events trigger.

An :class:`Event` moves through three stages:

1. *pending*   — created, nobody has triggered it yet;
2. *triggered* — a value (or exception) has been set and the event has been
   scheduled on the environment's queue;
3. *processed* — the environment has popped it and run its callbacks.

Composite conditions (:class:`AllOf` / :class:`AnyOf`) let a process wait for
several events at once, which the transports use to model concurrent DMA,
CPU work and link transmission.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .scheduler import Environment

__all__ = [
    "PENDING",
    "Event",
    "Timeout",
    "Condition",
    "AllOf",
    "AnyOf",
    "EventAlreadyTriggered",
]


class _Pending:
    """Sentinel for "this event has no value yet"."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<PENDING>"


#: Sentinel stored in :attr:`Event._value` until the event triggers.
PENDING = _Pending()


class EventAlreadyTriggered(RuntimeError):
    """Raised when code tries to succeed/fail an event twice."""


class Event:
    """A single occurrence that processes can wait on.

    Events carry either a *value* (on success) or an *exception* (on
    failure).  Waiting processes receive the value as the result of their
    ``yield`` expression, or have the exception thrown into them.
    """

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        #: Set True to acknowledge a failure nobody waits on; otherwise the
        #: environment re-raises unhandled failures (errors never pass
        #: silently).
        self.defused: bool = False

    @property
    def triggered(self) -> bool:
        """True once the event has a value and is scheduled."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once the environment has run this event's callbacks."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise RuntimeError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The value (or exception instance) the event triggered with."""
        if self._value is PENDING:
            raise RuntimeError("event has not been triggered yet")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is thrown into every waiting process.  If nobody is
        waiting, the environment raises it at the next ``step()`` so errors
        never pass silently.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not PENDING:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def _mark_processed(self) -> list[Callable[["Event"], None]]:
        """Detach and return callbacks; the event is now *processed*."""
        callbacks, self.callbacks = self.callbacks, None
        assert callbacks is not None
        return callbacks

    def _abandon(self) -> None:
        """Withdraw any pending claim this event represents.

        Called when the waiting process is interrupted away from the
        event: resources/stores override this so an orphaned request does
        not consume an item or slot nobody will ever receive.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = (
            "processed"
            if self.processed
            else "triggered"
            if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers automatically after ``delay`` simulated time.

    Unlike a bare :class:`Event`, a timeout is scheduled the moment it is
    created; it cannot fail and cannot be re-triggered.
    """

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self._delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)

    @property
    def delay(self) -> float:
        return self._delay

    def succeed(self, value: Any = None) -> "Event":  # pragma: no cover
        raise RuntimeError("a Timeout triggers itself; do not call succeed()")

    def fail(self, exception: BaseException) -> "Event":  # pragma: no cover
        raise RuntimeError("a Timeout cannot fail")


class Condition(Event):
    """Waits for a combination of events, evaluated by ``evaluate``.

    ``evaluate(events, count)`` receives the tuple of child events and the
    number already succeeded, and returns True once the condition holds.
    The condition's value is a dict mapping each *triggered* child event to
    its value (insertion-ordered by trigger time), so callers can inspect
    which events fired.

    A failing child event fails the whole condition immediately.
    """

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[tuple[Event, ...], int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._evaluate = evaluate
        self._events = tuple(events)
        self._count = 0
        self._results: dict[Event, Any] = {}

        for event in self._events:
            if event.env is not env:
                raise ValueError("all events must share one environment")

        if not self._events:
            # An empty condition is trivially satisfied.
            self.succeed(self._results)
            return

        for event in self._events:
            if event.processed:
                self._check(event)
            else:
                assert event.callbacks is not None
                event.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            event.defused = True
            self.fail(event.value)
            return
        self._count += 1
        self._results[event] = event.value
        if self._evaluate(self._events, self._count):
            self.succeed(dict(self._results))

    @staticmethod
    def all_events(events: tuple[Event, ...], count: int) -> bool:
        """Evaluator: every child event has succeeded."""
        return len(events) == count

    @staticmethod
    def any_events(events: tuple[Event, ...], count: int) -> bool:
        """Evaluator: at least one child event has succeeded."""
        return count > 0 or len(events) == 0


class AllOf(Condition):
    """Condition that triggers when *all* child events have succeeded."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Condition that triggers when *any* child event has succeeded."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.any_events, events)

"""Event primitives for the discrete-event simulation engine.

The engine follows the classic process-interaction style (like SimPy, but
implemented from scratch for this reproduction): simulation *processes* are
Python generators that ``yield`` events, and the :class:`Environment`
(see :mod:`repro.sim.scheduler`) resumes them when those events trigger.

An :class:`Event` moves through three stages:

1. *pending*   — created, nobody has triggered it yet;
2. *triggered* — a value (or exception) has been set and the event has been
   scheduled on the environment's queue;
3. *processed* — the environment has popped it and run its callbacks.

Composite conditions (:class:`AllOf` / :class:`AnyOf`) let a process wait for
several events at once, which the transports use to model concurrent DMA,
CPU work and link transmission.

Performance notes: every hot class uses ``__slots__`` (an engine run
allocates millions of events, and ``__dict__``-free instances are both
smaller and faster to create), and the callback list is built lazily — the
overwhelmingly common case is *one* waiter (a process parked on a yield),
which is stored as a bare callable with no list allocation at all.  The
internal representation of :attr:`Event._callbacks` is therefore one of:

* ``NO_CALLBACKS`` — nothing registered yet (pending or triggered);
* a single callable — exactly one waiter (the fast path);
* a ``list`` — two or more waiters, or external code used the
  :attr:`Event.callbacks` property (which materialises a real list);
* ``None`` — the event has been processed.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

from ..errors import EngineInvariantError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .scheduler import Environment

__all__ = [
    "PENDING",
    "NO_CALLBACKS",
    "Event",
    "Timeout",
    "Condition",
    "AllOf",
    "AnyOf",
    "EventAlreadyTriggered",
]


class _Pending:
    """Sentinel for "this event has no value yet"."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<PENDING>"


#: Sentinel stored in :attr:`Event._value` until the event triggers.
PENDING = _Pending()


class _NoCallbacks:
    """Sentinel: no callbacks registered yet (distinct from processed)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<NO_CALLBACKS>"


#: Initial value of :attr:`Event._callbacks`; avoids a list allocation for
#: events nobody ever waits on (and defers it for single-waiter events).
NO_CALLBACKS = _NoCallbacks()


class EventAlreadyTriggered(RuntimeError):
    """Raised when code tries to succeed/fail an event twice."""


class Event:
    """A single occurrence that processes can wait on.

    Events carry either a *value* (on success) or an *exception* (on
    failure).  Waiting processes receive the value as the result of their
    ``yield`` expression, or have the exception thrown into them.
    """

    __slots__ = ("env", "_callbacks", "_value", "_ok", "defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self._callbacks: Any = NO_CALLBACKS
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        #: Set True to acknowledge a failure nobody waits on; otherwise the
        #: environment re-raises unhandled failures (errors never pass
        #: silently).
        self.defused: bool = False

    @property
    def callbacks(self) -> Optional[list]:
        """Callables run when the event is processed (None afterwards).

        Accessing this property materialises the internal compact
        representation into a real, mutable list, so external code can
        keep using ``event.callbacks.append(fn)`` / ``.remove(fn)``.
        Engine-internal hot paths use :meth:`_add_callback` instead.
        """
        cbs = self._callbacks
        if cbs is None:
            return None
        if cbs is NO_CALLBACKS:
            cbs = self._callbacks = []
        elif type(cbs) is not list:
            cbs = self._callbacks = [cbs]
        return cbs

    def _add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Register ``fn`` without allocating a list for the 1-waiter case."""
        cbs = self._callbacks
        if cbs is NO_CALLBACKS:
            self._callbacks = fn
        elif type(cbs) is list:
            cbs.append(fn)
        elif cbs is None:
            raise RuntimeError(f"{self!r} already processed")
        else:
            self._callbacks = [cbs, fn]

    @property
    def triggered(self) -> bool:
        """True once the event has a value and is scheduled."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once the environment has run this event's callbacks."""
        return self._callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise RuntimeError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The value (or exception instance) the event triggered with."""
        if self._value is PENDING:
            raise RuntimeError("event has not been triggered yet")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        # Inlined env.schedule(self): an immediate NORMAL-priority event
        # goes straight onto the ready deque (succeed is the hottest
        # trigger path in the engine — every handoff and resume ends here).
        env = self.env
        env._ready.append((env._now, 1, next(env._eid), self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is thrown into every waiting process.  If nobody is
        waiting, the environment raises it at the next ``step()`` so errors
        never pass silently.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not PENDING:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def _mark_processed(self) -> list:
        """Detach and return callbacks; the event is now *processed*."""
        cbs = self._callbacks
        if cbs is None:
            raise EngineInvariantError(
                f"{self!r} processed twice — callbacks may be detached "
                "only once per event"
            )
        self._callbacks = None
        if cbs is NO_CALLBACKS:
            return []
        if type(cbs) is list:
            return cbs
        return [cbs]

    def _abandon(self) -> None:
        """Withdraw any pending claim this event represents.

        Called when the waiting process is interrupted away from the
        event: resources/stores override this so an orphaned request does
        not consume an item or slot nobody will ever receive.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = (
            "processed"
            if self.processed
            else "triggered"
            if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers automatically after ``delay`` simulated time.

    Unlike a bare :class:`Event`, a timeout is scheduled the moment it is
    created; it cannot fail and cannot be re-triggered.
    """

    __slots__ = ("_delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        # Inlined Event.__init__ + trigger: timeouts are born triggered, so
        # writing the final state once keeps the hottest allocation path in
        # the engine down to a single pass over the slots.
        self.env = env
        self._callbacks = NO_CALLBACKS
        self._ok = True
        self._value = value
        self.defused = False
        self._delay = delay
        # Inlined env.schedule(self, delay=delay): zero-delay timeouts ride
        # the ready deque; delayed ones take the monotone tail deque when
        # their key extends it (the fixed-latency re-arm pattern), and only
        # out-of-order inserts pay the heap.
        if delay == 0.0:
            env._ready.append((env._now, 1, next(env._eid), self))
        else:
            entry = (env._now + delay, 1, next(env._eid), self)
            tail = env._tail
            if not tail or entry >= tail[-1]:
                tail.append(entry)
            else:
                heappush(env._queue, entry)

    @property
    def delay(self) -> float:
        return self._delay

    def succeed(self, value: Any = None) -> "Event":  # pragma: no cover
        raise RuntimeError("a Timeout triggers itself; do not call succeed()")

    def fail(self, exception: BaseException) -> "Event":  # pragma: no cover
        raise RuntimeError("a Timeout cannot fail")


class Condition(Event):
    """Waits for a combination of events, evaluated by ``evaluate``.

    ``evaluate(events, count)`` receives the tuple of child events and the
    number already succeeded, and returns True once the condition holds.
    The condition's value is a dict mapping each *triggered* child event to
    its value (insertion-ordered by trigger time), so callers can inspect
    which events fired.

    A failing child event fails the whole condition immediately.
    """

    __slots__ = ("_evaluate", "_events", "_count", "_results")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[tuple[Event, ...], int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._evaluate = evaluate
        self._events = tuple(events)
        self._count = 0
        self._results: dict[Event, Any] = {}

        for event in self._events:
            if event.env is not env:
                raise ValueError("all events must share one environment")

        if not self._events:
            # An empty condition is trivially satisfied.
            self.succeed(self._results)
            return

        for event in self._events:
            if event.processed:
                self._check(event)
            else:
                event._add_callback(self._check)

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            event.defused = True
            self.fail(event.value)
            return
        self._count += 1
        self._results[event] = event.value
        if self._evaluate(self._events, self._count):
            self.succeed(dict(self._results))

    @staticmethod
    def all_events(events: tuple[Event, ...], count: int) -> bool:
        """Evaluator: every child event has succeeded."""
        return len(events) == count

    @staticmethod
    def any_events(events: tuple[Event, ...], count: int) -> bool:
        """Evaluator: at least one child event has succeeded."""
        return count > 0 or len(events) == 0


class AllOf(Condition):
    """Condition that triggers when *all* child events have succeeded."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Condition that triggers when *any* child event has succeeded."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.any_events, events)

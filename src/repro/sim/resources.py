"""Shared, contended resources for the simulated testbed.

Three families, mirroring the classic DES toolkit:

* :class:`Resource` — ``capacity`` identical slots with a FIFO wait queue.
  Used for CPU cores, NIC processing engines and the like.
* :class:`Store` — an unbounded-or-bounded queue of Python objects.  Used
  for packet queues, completion queues, mailbox-style channels.
* :class:`Tank` — a continuous level (named to avoid clashing with the
  Docker sense of "container").  Used for buffer accounting.

Requests are events, so processes write::

    with cpu.request() as req:
        yield req
        yield env.timeout(work_seconds)

The ``with`` form guarantees release even if the process is interrupted —
important for migration and failure-injection experiments.

Performance notes: ``Store`` and ``Tank`` operations that can complete
immediately (a ``get`` against a non-empty buffer with no queued waiters,
a ``put`` into free space) take a *fast path*: the event is triggered on
the spot without touching the wait queues or re-running the matching loop.
Queued waiters always win over a newcomer — the fast path is only taken
when the relevant wait queue is empty, so FIFO ordering and the
no-starvation property are preserved exactly (see
``tests/sim/test_resources.py::TestStoreFastPath``).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Deque, Optional

from .events import Event

if TYPE_CHECKING:  # pragma: no cover
    from .scheduler import Environment

__all__ = [
    "Resource",
    "Request",
    "Release",
    "Store",
    "StorePut",
    "StoreGet",
    "Tank",
    "TankPut",
    "TankGet",
]


class Request(Event):
    """A pending claim on a :class:`Resource` slot.

    Usable as a context manager: exiting the ``with`` block releases the
    slot (or cancels the claim if it never triggered).
    """

    __slots__ = ("resource", "priority")

    def __init__(self, resource: "Resource", priority: int = 0) -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        resource._add_request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.cancel()

    def cancel(self) -> None:
        """Release the slot if held, or withdraw from the wait queue."""
        self.resource._remove_request(self)

    def _abandon(self) -> None:
        self.cancel()


class Release(Event):
    """Event that triggers once a request's slot has been released."""

    __slots__ = ("request",)

    def __init__(self, resource: "Resource", request: Request) -> None:
        super().__init__(resource.env)
        self.request = request
        resource._remove_request(request)
        self.succeed()


class Resource:
    """``capacity`` interchangeable slots with FIFO (or priority) queuing.

    ``priority`` on a request: lower value is served first; equal
    priorities keep FIFO order.  The plain ``request()`` uses priority 0,
    so a pure-FIFO resource just never passes the argument.
    """

    __slots__ = ("env", "_capacity", "users", "queue", "on_change", "label")

    def __init__(
        self,
        env: "Environment",
        capacity: int = 1,
        label: Optional[str] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        #: Optional human-readable name, surfaced by diagnostics (the
        #: wait-for graph reports) instead of an anonymous repr.
        self.label = label
        self._capacity = capacity
        self.users: list[Request] = []
        self.queue: list[Request] = []
        #: Optional hooks, called as f(resource) after each grant/release.
        self.on_change: list[Callable[["Resource"], None]] = []

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    def request(self, priority: int = 0) -> Request:
        """Claim one slot; the returned event triggers when granted."""
        return Request(self, priority)

    def release(self, request: Request) -> Release:
        """Release a granted slot (also done by the ``with`` form)."""
        return Release(self, request)

    # -- internals --------------------------------------------------------

    def _add_request(self, request: Request) -> None:
        self.queue.append(request)
        self._trigger()

    def _remove_request(self, request: Request) -> None:
        if request in self.users:
            self.users.remove(request)
            self._trigger()
        elif request in self.queue:
            self.queue.remove(request)

    def _trigger(self) -> None:
        while self.queue and len(self.users) < self._capacity:
            request = min(
                self.queue, key=lambda r: (r.priority, self.queue.index(r))
            )
            self.queue.remove(request)
            self.users.append(request)
            request.succeed()
        for hook in self.on_change:
            hook(self)


class StorePut(Event):
    """Pending put into a :class:`Store` (waits if the store is full)."""

    __slots__ = ("store", "item")

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.env)
        self.store = store
        self.item = item
        if not store._put_queue and len(store.items) < store.capacity:
            # Fast path: free space and nobody queued ahead — accept the
            # item on the spot.  Triggering before waking any parked gets
            # keeps the event order identical to the queued path.
            self.succeed()
            store.items.append(item)
            if store._get_queue:
                store._trigger()
            return
        store._put_queue.append(self)
        store._trigger()

    def _abandon(self) -> None:
        try:
            self.store._put_queue.remove(self)
        except ValueError:  # pragma: no cover - already satisfied
            pass


class StoreGet(Event):
    """Pending get from a :class:`Store` (waits if the store is empty)."""

    __slots__ = ("store", "predicate")

    def __init__(self, store: "Store", predicate: Optional[Callable[[Any], bool]]) -> None:
        super().__init__(store.env)
        self.store = store
        self.predicate = predicate
        if not store._get_queue and store.items:
            # Fast path: an immediate handoff from the buffer, bypassing
            # the wait queue entirely.  Only taken when no getter is
            # queued ahead of us, so FIFO order among getters holds.
            if predicate is None:
                self.succeed(store.items.popleft())
            else:
                match = store._find(predicate)
                if match is None:
                    store._get_queue.append(self)
                    return
                index, item = match
                del store.items[index]
                self.succeed(item)
            if store._put_queue:
                # Our take freed a slot: admit the oldest blocked put.
                store._trigger()
            return
        store._get_queue.append(self)
        store._trigger()

    def _abandon(self) -> None:
        try:
            self.store._get_queue.remove(self)
        except ValueError:  # pragma: no cover - already satisfied
            pass


class Store:
    """FIFO object queue with optional capacity and filtered gets.

    ``get(predicate)`` retrieves the first item matching ``predicate``,
    which the verbs layer uses to match completions to a specific queue
    pair without draining unrelated completions.
    """

    __slots__ = ("env", "capacity", "items", "_put_queue", "_get_queue", "label")

    def __init__(
        self,
        env: "Environment",
        capacity: float = float("inf"),
        label: Optional[str] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.label = label
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._put_queue: Deque[StorePut] = deque()
        self._get_queue: Deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        """Queue ``item``; the event triggers once there is room."""
        return StorePut(self, item)

    def get(self, predicate: Optional[Callable[[Any], bool]] = None) -> StoreGet:
        """Take the oldest item (matching ``predicate`` if given)."""
        return StoreGet(self, predicate)

    def try_get(self) -> Any:
        """Non-blocking get: pop the oldest item or return None."""
        if not self.items:
            return None
        item = self.items.popleft()
        if self._put_queue or self._get_queue:
            self._trigger()
        return item

    def drain(self) -> list[Any]:
        """Non-blocking drain: take *every* buffered item in FIFO order.

        The bulk counterpart of :meth:`try_get` — one call, one list, no
        per-item trigger churn.  Blocked puts are admitted afterwards
        (the drain freed capacity), so a bounded store keeps flowing;
        items admitted that way stay in the buffer for the *next* drain,
        preserving the rule that a drain only returns what had already
        been delivered when it was called.
        """
        if not self.items:
            return []
        items = list(self.items)
        self.items.clear()
        if self._put_queue or self._get_queue:
            self._trigger()
        return items

    # -- internals --------------------------------------------------------

    def _trigger(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            # Admit puts while capacity allows.
            while self._put_queue and len(self.items) < self.capacity:
                put = self._put_queue.popleft()
                self.items.append(put.item)
                put.succeed()
                progressed = True
            # Satisfy gets that have a matching item.
            if self._get_queue and self.items:
                for get in tuple(self._get_queue):
                    match = self._find(get.predicate)
                    if match is None:
                        continue
                    index, item = match
                    del self.items[index]
                    self._get_queue.remove(get)
                    get.succeed(item)
                    progressed = True

    def _find(self, predicate: Optional[Callable[[Any], bool]]):
        for index, item in enumerate(self.items):
            if predicate is None or predicate(item):
                return index, item
        return None


class TankPut(Event):
    """Pending put of ``amount`` into a :class:`Tank` (waits for room)."""

    __slots__ = ("tank", "amount")

    def __init__(self, tank: "Tank", amount: float) -> None:
        super().__init__(tank.env)
        self.tank = tank
        self.amount = amount

    def _abandon(self) -> None:
        try:
            self.tank._puts.remove(self)
        except ValueError:  # pragma: no cover - already satisfied
            pass


class TankGet(Event):
    """Pending get of ``amount`` from a :class:`Tank` (waits for level)."""

    __slots__ = ("tank", "amount")

    def __init__(self, tank: "Tank", amount: float) -> None:
        super().__init__(tank.env)
        self.tank = tank
        self.amount = amount

    def _abandon(self) -> None:
        try:
            self.tank._gets.remove(self)
        except ValueError:  # pragma: no cover - already satisfied
            pass


class Tank:
    """A continuous level between 0 and ``capacity``.

    ``put``/``get`` block until the operation fits.  Used for shared-memory
    buffer pools and NIC ring occupancy accounting.
    """

    __slots__ = ("env", "capacity", "_level", "_puts", "_gets", "label")

    def __init__(
        self,
        env: "Environment",
        capacity: float = float("inf"),
        initial: float = 0.0,
        label: Optional[str] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if not 0 <= initial <= capacity:
            raise ValueError(f"initial level {initial} outside [0, {capacity}]")
        self.env = env
        self.label = label
        self.capacity = capacity
        self._level = float(initial)
        self._puts: Deque[TankPut] = deque()
        self._gets: Deque[TankGet] = deque()

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> Event:
        """Add ``amount``; blocks while it would overflow capacity."""
        if amount < 0:
            raise ValueError(f"negative amount {amount}")
        if not self._puts and self._level + amount <= self.capacity:
            # Fast path: the put fits and nobody is queued ahead (puts are
            # served head-of-line, so an empty queue is required).
            self._level += amount
            event = Event(self.env)
            event.succeed()
            if self._gets:
                self._trigger()
            return event
        event = TankPut(self, amount)
        self._puts.append(event)
        # No _trigger: the head put still does not fit (queue was non-empty
        # or this put overflows), and the level did not change, so no
        # queued get can have become satisfiable either.
        return event

    def get(self, amount: float) -> Event:
        """Remove ``amount``; blocks while the level is insufficient."""
        if amount < 0:
            raise ValueError(f"negative amount {amount}")
        if not self._gets and self._level >= amount:
            self._level -= amount
            event = Event(self.env)
            event.succeed()
            if self._puts:
                self._trigger()
            return event
        event = TankGet(self, amount)
        self._gets.append(event)
        return event

    def _trigger(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._puts:
                put = self._puts[0]
                if self._level + put.amount <= self.capacity:
                    self._puts.popleft()
                    self._level += put.amount
                    put.succeed()
                    progressed = True
            if self._gets:
                get = self._gets[0]
                if self._level >= get.amount:
                    self._gets.popleft()
                    self._level -= get.amount
                    get.succeed()
                    progressed = True

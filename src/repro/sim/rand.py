"""Deterministic random streams for reproducible experiments.

Every stochastic element of the simulation (workload inter-arrivals,
payload sizes, jitter) draws from a named :class:`RandomStream`, derived
from a single experiment seed.  Two runs with the same seed produce
byte-identical results; changing one component's stream does not perturb
the draws seen by any other component (the streams are independent).
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, Sequence, TypeVar

__all__ = ["RandomStream", "StreamFactory"]

T = TypeVar("T")


class RandomStream:
    """A named, seeded random source (thin wrapper over ``random.Random``)."""

    def __init__(self, seed: int, name: str = "default") -> None:
        self.name = name
        self.seed = seed
        digest = hashlib.sha256(f"{seed}:{name}".encode()).digest()
        self._rng = random.Random(int.from_bytes(digest[:8], "big"))

    def random(self) -> float:
        """A float in [0, 1) — the primitive behind sampling decisions."""
        return self._rng.random()

    def randrange(self, n: int) -> int:
        """An int in [0, n) (reservoir-sampling slot selection)."""
        return self._rng.randrange(n)

    def bernoulli(self, p: float) -> bool:
        """True with probability ``p`` — fault-injection coin flips."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {p}")
        return self._rng.random() < p

    def uniform(self, low: float, high: float) -> float:
        return self._rng.uniform(low, high)

    def expovariate(self, rate: float) -> float:
        """Exponential inter-arrival with mean ``1/rate``."""
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        return self._rng.expovariate(rate)

    def randint(self, low: int, high: int) -> int:
        return self._rng.randint(low, high)

    def choice(self, items: Sequence[T]) -> T:
        return self._rng.choice(items)

    def shuffle(self, items: list) -> None:
        self._rng.shuffle(items)

    def sample(self, items: Sequence[T], k: int) -> list[T]:
        return self._rng.sample(items, k)

    def pareto_size(self, shape: float, minimum: float, cap: float) -> float:
        """Heavy-tailed message size (bounded Pareto), common in DC traffic."""
        if shape <= 0:
            raise ValueError(f"shape must be positive, got {shape}")
        value = minimum * self._rng.paretovariate(shape)
        return min(value, cap)

    def zipf_index(self, n: int, skew: float = 1.0) -> int:
        """Zipf-distributed index in [0, n): used for KV key popularity."""
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        weights = [1.0 / (i + 1) ** skew for i in range(n)]
        total = sum(weights)
        point = self._rng.uniform(0, total)
        acc = 0.0
        for index, weight in enumerate(weights):
            acc += weight
            if point <= acc:
                return index
        return n - 1


class StreamFactory:
    """Hands out independent named streams derived from one master seed."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: dict[str, RandomStream] = {}

    def stream(self, name: str) -> RandomStream:
        """Get (or create) the stream for ``name``."""
        if name not in self._streams:
            self._streams[name] = RandomStream(self.seed, name)
        return self._streams[name]

    def names(self) -> Iterable[str]:
        return tuple(self._streams)

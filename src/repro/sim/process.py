"""Simulation processes: generators driven by the event loop.

A :class:`Process` wraps a Python generator.  Each ``yield`` hands an
:class:`~repro.sim.events.Event` to the environment; when that event
triggers, the process resumes with the event's value (or the event's
exception is thrown into the generator).

A process is itself an event — it triggers with the generator's return
value when the generator finishes — so processes can wait on each other,
which the FreeFlow agents use extensively (e.g. an RDMA WRITE completion
waits on the DMA process and the link-transmission process).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from .events import Event, NO_CALLBACKS, PENDING

if TYPE_CHECKING:  # pragma: no cover
    from .scheduler import Environment

__all__ = ["Process", "Interrupt", "ProcessGen"]

#: Type alias for generators usable as simulation processes.
ProcessGen = Generator[Event, Any, Any]


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    ``cause`` carries an arbitrary payload describing why (e.g. a failed
    host, a migrated container).
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        return self.args[0]


class _Initialize(Event):
    """Internal event that kicks off a newly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        self.env = env
        self._ok = True
        self._value = None
        self.defused = False
        self._callbacks = process._resume
        env.schedule(self)


class Process(Event):
    """A running simulation process (also an event: triggers on return)."""

    #: ``_resume`` holds the bound ``_step`` method, cached once at start:
    #: registering a callback on every yield would otherwise allocate a
    #: fresh bound-method object per event — pure churn on the hot path
    #: (and caching it makes interrupt's identity-based detach exact).
    __slots__ = ("_generator", "_target", "_resume")

    def __init__(self, env: "Environment", generator: ProcessGen) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        #: The event this process is currently waiting on (None if running
        #: or finished).  Used by interrupt() to detach cleanly.
        self._target: Optional[Event] = None
        self._resume = self._step
        _Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event the process is currently suspended on."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield.

        Interrupting a dead process is an error; interrupting a process
        that is waiting detaches it from its target event first (the event
        itself is left to trigger normally for any other waiters).
        """
        if not self.is_alive:
            raise RuntimeError(f"{self!r} has terminated and cannot be interrupted")
        target = self._target
        if target is not None:
            cbs = target._callbacks
            if cbs is self._resume:
                target._callbacks = NO_CALLBACKS
            elif type(cbs) is list:
                try:
                    cbs.remove(self._resume)
                except ValueError:  # pragma: no cover - already detached
                    pass
            if cbs is not None and not target.triggered:
                # Withdraw pending claims (store gets, resource requests)
                # so they cannot consume items nobody will receive.
                target._abandon()
        self._target = None
        interrupt_event = Event(self.env)
        interrupt_event._callbacks = self._resume_interrupt
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        self.env.schedule(interrupt_event, priority=0)

    # -- internal stepping machinery ------------------------------------

    def _resume_interrupt(self, event: Event) -> None:
        # An interrupt may land after the process finished in the same
        # timestep; drop it silently in that case.
        if self.is_alive:
            self._step(event)

    def _step(self, event: Event) -> None:
        """Advance the generator by one yield using ``event``'s outcome."""
        self._target = None
        env = self.env
        env._active_process = self
        try:
            if event._ok:
                result = self._generator.send(event._value)
            else:
                # Throw the failure into the generator; if it handles it,
                # we continue with whatever it yields next.  Either way the
                # failure has been delivered, so it is no longer unhandled.
                event.defused = True
                result = self._generator.throw(event._value)
        except StopIteration as stop:
            env._active_process = None
            self._ok = True
            self._value = stop.value
            env.schedule(self)
            return
        except BaseException as exc:
            env._active_process = None
            self._ok = False
            self._value = exc
            env.schedule(self)
            return
        env._active_process = None

        if not isinstance(result, Event):
            raise TypeError(
                f"process {self._generator!r} yielded {result!r}, not an Event"
            )
        cbs = result._callbacks
        if cbs is NO_CALLBACKS:
            # Inlined _add_callback: a fresh event with us as the only
            # waiter — the common case for every yield in the simulation.
            result._callbacks = self._resume
            self._target = result
        elif cbs is None:
            # Already processed: resume immediately at the current time.
            immediate = Event(env)
            immediate._callbacks = self._resume
            immediate._ok = result._ok
            immediate._value = result._value
            env.schedule(immediate)
            self._target = immediate
        else:
            result._add_callback(self._resume)
            self._target = result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        name = getattr(self._generator, "__name__", repr(self._generator))
        return f"<Process {name} {'alive' if self.is_alive else 'done'}>"

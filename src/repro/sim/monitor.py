"""Measurement instruments for simulated experiments.

Two instruments cover everything the paper's evaluation needs:

* :class:`TimeWeighted` — tracks a piecewise-constant value over time and
  reports its time-weighted mean.  This is how CPU utilisation is computed
  ("TCP/IP burns ~200% CPU" means the time-weighted busy-core count is ~2).
* :class:`Series` — a plain sample collector with count/mean/percentiles.
  Used for latency distributions.

For unbounded streams (per-lane delivery latencies over millions of
messages) :class:`StreamingSeries` keeps the same statistical interface in
O(1) memory: exact count/sum/min/max plus a fixed-size uniform reservoir
(Vitter's Algorithm R) for percentile estimates.

All are deliberately dependency-free (no numpy) so the core library stays
pure; benchmarks may post-process with numpy.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterable, Optional

from .rand import RandomStream

if TYPE_CHECKING:  # pragma: no cover
    from .scheduler import Environment

__all__ = [
    "TimeWeighted",
    "Series",
    "StreamingSeries",
    "IntervalRecorder",
    "ThroughputTimeline",
]


class TimeWeighted:
    """Time-weighted statistics for a piecewise-constant signal.

    Call :meth:`record` whenever the signal changes value.  The mean over
    ``[start, now]`` weights each value by how long it was held.
    """

    def __init__(self, env: "Environment", initial: float = 0.0) -> None:
        self.env = env
        self._start = env.now
        self._last_time = env.now
        self._value = float(initial)
        self._area = 0.0
        self._max = float(initial)
        self._min = float(initial)

    @property
    def value(self) -> float:
        """The current value of the signal."""
        return self._value

    def record(self, value: float) -> None:
        """Register a change of the signal to ``value`` at the current time."""
        now = self.env.now
        self._area += self._value * (now - self._last_time)
        self._last_time = now
        self._value = float(value)
        self._max = max(self._max, self._value)
        self._min = min(self._min, self._value)

    def add(self, delta: float) -> None:
        """Shift the signal by ``delta`` (convenience for counters)."""
        self.record(self._value + delta)

    def mean(self, until: Optional[float] = None) -> float:
        """Time-weighted mean from creation until ``until`` (default now)."""
        end = self.env.now if until is None else until
        span = end - self._start
        if span <= 0:
            return self._value
        area = self._area + self._value * (end - self._last_time)
        return area / span

    def maximum(self) -> float:
        return self._max

    def minimum(self) -> float:
        return self._min

    def reset(self) -> None:
        """Restart the measurement window at the current time."""
        self._start = self.env.now
        self._last_time = self.env.now
        self._area = 0.0
        self._max = self._value
        self._min = self._value


class Series:
    """Sample collector with summary statistics (count, mean, percentiles)."""

    def __init__(self) -> None:
        self._samples: list[float] = []
        self._sorted: Optional[list[float]] = None

    def __len__(self) -> int:
        return len(self._samples)

    def add(self, sample: float) -> None:
        # Unbounded by design: Series is the exact collector; memory-bounded
        # callers use StreamingSeries below.  simlint: disable=SIM004
        self._samples.append(float(sample))
        self._sorted = None

    def extend(self, samples: Iterable[float]) -> None:
        # See add(): exact collection is this class's contract.
        self._samples.extend(float(s) for s in samples)  # simlint: disable=SIM004
        self._sorted = None

    @property
    def samples(self) -> list[float]:
        return list(self._samples)

    def mean(self) -> float:
        if not self._samples:
            raise ValueError("no samples recorded")
        return sum(self._samples) / len(self._samples)

    def stdev(self) -> float:
        if len(self._samples) < 2:
            return 0.0
        mu = self.mean()
        var = sum((s - mu) ** 2 for s in self._samples) / (len(self._samples) - 1)
        return math.sqrt(var)

    def minimum(self) -> float:
        if not self._samples:
            raise ValueError("no samples recorded")
        return min(self._samples)

    def maximum(self) -> float:
        if not self._samples:
            raise ValueError("no samples recorded")
        return max(self._samples)

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile, ``p`` in [0, 100]."""
        if not self._samples:
            raise ValueError("no samples recorded")
        if not 0 <= p <= 100:
            raise ValueError(f"percentile {p} outside [0, 100]")
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        data = self._sorted
        if len(data) == 1:
            return data[0]
        rank = (p / 100) * (len(data) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return data[low]
        frac = rank - low
        # The a + t*(b-a) form is exact when a == b, unlike the convex
        # combination, which can round a hair outside [a, b].
        return data[low] + frac * (data[high] - data[low])

    def median(self) -> float:
        return self.percentile(50)

    def summary(self) -> dict[str, float]:
        """A dict of the headline statistics (handy for bench output)."""
        return {
            "count": float(len(self._samples)),
            "mean": self.mean(),
            "min": self.minimum(),
            "p50": self.percentile(50),
            "p99": self.percentile(99),
            "max": self.maximum(),
        }


class StreamingSeries:
    """Bounded-memory sample stream: exact moments, sampled percentiles.

    Count, sum, min and max are exact for the whole stream; percentiles
    are computed over a fixed-size uniform random sample maintained with
    Vitter's Algorithm R, so memory stays O(``reservoir``) no matter how
    many samples arrive.  The replacement RNG is seeded per instance, so
    two identical runs sample identically (simulation determinism).

    Drop-in for the common :class:`Series` surface: ``len()`` reports the
    *total* stream count, and ``append`` aliases ``add`` for callers that
    treat the collector as a list.
    """

    __slots__ = (
        "_count", "_total", "_min", "_max",
        "_capacity", "_reservoir", "_rng", "_sorted",
    )

    #: Default reservoir size: percentile error ~1/sqrt(1024) ≈ 3%.
    DEFAULT_RESERVOIR = 1024

    def __init__(self, reservoir: int = DEFAULT_RESERVOIR, seed: int = 0x5EED) -> None:
        if reservoir <= 0:
            raise ValueError(f"reservoir size must be positive, got {reservoir}")
        self._count = 0
        self._total = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._capacity = reservoir
        self._reservoir: list[float] = []
        # Replacement draws come from a seeded repro.sim.rand stream
        # (SIM001): identical runs keep identical reservoirs.
        self._rng = RandomStream(seed, "reservoir")
        self._sorted: Optional[list[float]] = None

    def __len__(self) -> int:
        """Total samples seen (not the reservoir size)."""
        return self._count

    @property
    def count(self) -> int:
        return self._count

    def add(self, sample: float) -> None:
        sample = float(sample)
        self._count += 1
        self._total += sample
        if sample < self._min:
            self._min = sample
        if sample > self._max:
            self._max = sample
        reservoir = self._reservoir
        if len(reservoir) < self._capacity:
            reservoir.append(sample)
        else:
            # Algorithm R: keep each of the n samples with equal
            # probability k/n by replacing a random slot.
            j = self._rng.randrange(self._count)
            if j < self._capacity:
                reservoir[j] = sample
            else:
                return  # reservoir unchanged; keep the sorted cache
        self._sorted = None

    #: List-style alias so ``stats.latencies.append(x)`` keeps working.
    append = add

    def extend(self, samples: Iterable[float]) -> None:
        for sample in samples:
            self.add(sample)

    @property
    def samples(self) -> list[float]:
        """The current reservoir contents (a uniform sample, unordered)."""
        return list(self._reservoir)

    def mean(self) -> float:
        if not self._count:
            raise ValueError("no samples recorded")
        return self._total / self._count

    def total(self) -> float:
        return self._total

    def minimum(self) -> float:
        if not self._count:
            raise ValueError("no samples recorded")
        return self._min

    def maximum(self) -> float:
        if not self._count:
            raise ValueError("no samples recorded")
        return self._max

    def percentile(self, p: float) -> float:
        """Estimated percentile from the reservoir (exact at 0/100)."""
        if not self._count:
            raise ValueError("no samples recorded")
        if not 0 <= p <= 100:
            raise ValueError(f"percentile {p} outside [0, 100]")
        if p == 0:
            return self._min
        if p == 100:
            return self._max
        if self._sorted is None:
            self._sorted = sorted(self._reservoir)
        data = self._sorted
        if len(data) == 1:
            return data[0]
        rank = (p / 100) * (len(data) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return data[low]
        frac = rank - low
        return data[low] + frac * (data[high] - data[low])

    def median(self) -> float:
        return self.percentile(50)

    def summary(self) -> dict[str, float]:
        """A dict of the headline statistics (handy for bench output)."""
        return {
            "count": float(self._count),
            "mean": self.mean(),
            "min": self._min,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
            "max": self._max,
        }


class ThroughputTimeline:
    """Time-bucketed byte counter: throughput as a function of time.

    Call :meth:`add` whenever bytes are delivered; :meth:`series` returns
    ``[(bucket_start_s, bytes_per_second), ...]`` — the instrument behind
    throughput-over-time plots such as the migration-dip figure (E23).
    """

    def __init__(self, env: "Environment", bucket_s: float = 1e-3) -> None:
        if bucket_s <= 0:
            raise ValueError("bucket size must be positive")
        self.env = env
        self.bucket_s = bucket_s
        self._start = env.now
        self._buckets: dict[int, float] = {}

    def add(self, nbytes: float) -> None:
        index = int((self.env.now - self._start) / self.bucket_s)
        # One entry per elapsed bucket of a finite measurement window —
        # bounded by the measurement's duration, not by traffic volume.
        # simlint: disable=SIM009
        self._buckets[index] = self._buckets.get(index, 0.0) + nbytes

    def series(self) -> list[tuple[float, float]]:
        """Dense series from t=0 to the last non-empty bucket."""
        if not self._buckets:
            return []
        last = max(self._buckets)
        return [
            (self._start + index * self.bucket_s,
             self._buckets.get(index, 0.0) / self.bucket_s)
            for index in range(last + 1)
        ]

    def minimum_rate(self, after_s: float = 0.0) -> float:
        """Lowest bucket rate at/after ``after_s`` (absolute sim time)."""
        series = self.series()
        rates = [rate for start, rate in series if start >= after_s]
        if not rates:
            raise ValueError("no buckets in the requested window")
        return min(rates)


class IntervalRecorder:
    """Tracks busy intervals of a set of workers (e.g. CPU cores).

    ``busy(n)`` / ``idle(n)`` adjust how many workers are active; the
    utilisation over the window is (busy worker-seconds) / elapsed — i.e.
    "how many cores were burning", the unit used in the paper's CPU plots
    (200% = two cores).
    """

    def __init__(self, env: "Environment") -> None:
        self._tracker = TimeWeighted(env)

    def busy(self, workers: int = 1) -> None:
        self._tracker.add(workers)

    def idle(self, workers: int = 1) -> None:
        self._tracker.add(-workers)

    @property
    def active(self) -> float:
        return self._tracker.value

    def utilisation(self) -> float:
        """Mean number of simultaneously busy workers (1.0 == 100%)."""
        return self._tracker.mean()

    def utilisation_percent(self) -> float:
        return 100.0 * self.utilisation()

    def reset(self) -> None:
        self._tracker.reset()

"""Seeded jittered-exponential backoff for retry loops.

Control-plane retries (reconciler rebinds, repair passes) must not hammer
a struggling dependency in lock-step: classic exponential backoff with
*full jitter* (AWS architecture-blog style) decorrelates the retriers
while keeping the expected wait growing geometrically.  Draws come from a
named :class:`~repro.sim.rand.RandomStream`, so a given experiment seed
produces byte-identical retry timings.
"""

from __future__ import annotations

from .rand import RandomStream

__all__ = ["Backoff"]


class Backoff:
    """A retry schedule: ``delay(attempt)`` for attempt 0, 1, 2, ...

    ``delay(n)`` draws uniformly from ``[0, min(cap, base * factor**n)]``
    (full jitter).  With ``jitter=False`` it returns the deterministic
    ceiling instead — useful when a test wants exact timings.
    """

    def __init__(
        self,
        rng: RandomStream,
        *,
        base: float = 0.0005,
        factor: float = 2.0,
        cap: float = 0.05,
        max_attempts: int = 6,
        jitter: bool = True,
    ) -> None:
        if base <= 0:
            raise ValueError(f"base must be positive, got {base}")
        if factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {factor}")
        if cap < base:
            raise ValueError(f"cap {cap} must be >= base {base}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.rng = rng
        self.base = base
        self.factor = factor
        self.cap = cap
        self.max_attempts = max_attempts
        self.jitter = jitter

    def ceiling(self, attempt: int) -> float:
        """The un-jittered upper bound for ``attempt`` (0-based)."""
        if attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {attempt}")
        return min(self.cap, self.base * self.factor**attempt)

    def delay(self, attempt: int) -> float:
        """The wait before retry number ``attempt`` (0-based)."""
        ceiling = self.ceiling(attempt)
        if not self.jitter:
            return ceiling
        return self.rng.uniform(0.0, ceiling)

    def exhausted(self, attempt: int) -> bool:
        """True once ``attempt`` retries have been spent."""
        return attempt >= self.max_attempts

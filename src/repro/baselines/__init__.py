"""Baseline container-networking systems (S12): everything compared.

Host mode, bridge (docker0), overlay (Weave-style), raw RDMA, bare
shared-memory IPC, and a NetVM-style inter-VM path.
"""

from .bridgemode import BridgeModeNetwork
from .hostmode import HostModeNetwork
from .netvm import NetVmChannel, NetVmLane, NetVmNetwork
from .overlaymode import OverlayModeNetwork
from .rawrdma import RawRdmaNetwork
from .shmipc import ShmIpcNetwork

__all__ = [
    "BridgeModeNetwork",
    "HostModeNetwork",
    "NetVmChannel",
    "NetVmLane",
    "NetVmNetwork",
    "OverlayModeNetwork",
    "RawRdmaNetwork",
    "ShmIpcNetwork",
]

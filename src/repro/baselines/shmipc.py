"""Bare shared-memory IPC (Fig. 1's upper-bound baseline).

"This requires special setup, to bypass the namespace isolation, and
offers the least isolation, and the least portability" — two containers
share a memory segment directly, with hand-written IPC.  It is the
performance ceiling FreeFlow chases for co-located pairs, and the
baseline FreeFlow matches *without* requiring applications to be
rewritten against a bespoke IPC API.
"""

from __future__ import annotations

from ..cluster.container import Container
from ..errors import TransportUnavailable
from ..transports.shmem import ShmChannel

__all__ = ["ShmIpcNetwork"]


class ShmIpcNetwork:
    """Hand-rolled shared-memory IPC between co-located containers."""

    def __init__(self) -> None:
        self.channels: list[ShmChannel] = []

    def connect(self, a: Container, b: Container) -> ShmChannel:
        if not a.colocated(b):
            raise TransportUnavailable(
                "shared-memory IPC only works on a single host "
                f"({a.name} is on {a.host.name}, {b.name} on {b.host.name})"
            )
        channel = ShmChannel(a.host)
        self.channels.append(channel)
        return channel

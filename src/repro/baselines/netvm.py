"""A NetVM-style inter-VM shared-memory path (related work, paper §6-7).

NetVM "provides a shared-memory framework that exploits the DPDK library
to provide zero-copy delivery between VMs" — applicable only when the
VMs share a physical machine, which is exactly why it cannot replace
FreeFlow ("the NetVM work is applicable only to intra-host setting").
We model it as a shared-memory lane between two VMs on one host with a
vhost-doorbell surcharge per message; the discussion-section experiment
(deployment case (c) with ``shm_across_vms``) uses it as the inter-VM
fast path.
"""

from __future__ import annotations

from typing import Any

from ..cluster.container import Container
from ..errors import TransportUnavailable
from ..transports.base import DuplexChannel, Mechanism
from ..transports.shmem import ShmLane

__all__ = ["NetVmLane", "NetVmChannel", "NetVmNetwork", "VHOST_DOORBELL_CYCLES"]

#: Extra per-message cost of the vhost doorbell + descriptor handling.
VHOST_DOORBELL_CYCLES = 900.0

#: Extra wakeup latency across the VM boundary.
VHOST_LATENCY_S = 2.0e-6


class NetVmLane(ShmLane):
    """A shared-memory lane that crosses a VM boundary (NetVM-style)."""

    def send(self, nbytes: int, payload: Any = None):
        yield from self.host.cpu.execute(VHOST_DOORBELL_CYCLES)
        yield self.env.timeout(VHOST_LATENCY_S)
        message = yield from super().send(nbytes, payload)
        return message


class NetVmChannel(DuplexChannel):
    """Bidirectional NetVM channel between two VMs on one host."""

    def __init__(self, host) -> None:
        super().__init__(NetVmLane(host), NetVmLane(host))
        self.host = host


class NetVmNetwork:
    """Builds NetVM channels between containers in co-located VMs."""

    def __init__(self) -> None:
        self.channels: list[NetVmChannel] = []

    def connect(self, a: Container, b: Container) -> NetVmChannel:
        if a.vm is None or b.vm is None:
            raise TransportUnavailable("NetVM connects VMs, not bare metal")
        if not a.colocated(b):
            raise TransportUnavailable(
                "NetVM only works between VMs on one physical machine"
            )
        if a.same_vm(b):
            raise TransportUnavailable(
                "same-VM containers should use plain shared memory"
            )
        channel = NetVmChannel(a.host)
        self.channels.append(channel)
        return channel

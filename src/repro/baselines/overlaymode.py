"""Overlay-mode container networking (the Weave-style baseline).

The most portable mode and the slowest: every container gets a
location-independent overlay IP, and all traffic hairpins through the
per-host user-space router (twice for inter-host traffic).  This is
mode (3) of the paper's intro experiment and the architecture of its
Fig. 3(a); FreeFlow keeps this control plane and replaces the data
plane.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..cluster.container import Container
from ..netstack.addressing import IpPool
from ..netstack.bridge import SoftwareBridge
from ..netstack.overlay import OverlayRouter
from ..netstack.packet import EndpointAddr
from ..netstack.routing import RoutingMesh
from ..netstack.tcp import TcpConnection, TcpMode

if TYPE_CHECKING:  # pragma: no cover
    from ..hardware.host import Host
    from ..sim.scheduler import Environment

__all__ = ["OverlayModeNetwork"]


class OverlayModeNetwork:
    """A complete classic overlay: IPAM + routing mesh + routers."""

    def __init__(
        self,
        env: "Environment",
        cidr: str = "10.40.0.0/16",
        convergence_delay_s: float = 0.05,
        with_bridges: bool = True,
    ) -> None:
        self.env = env
        self.pool = IpPool(cidr)
        self.mesh = RoutingMesh(env, convergence_delay_s)
        self.with_bridges = with_bridges
        self._routers: dict[str, OverlayRouter] = {}
        self._bridges: dict[str, SoftwareBridge] = {}
        self._ips: dict[str, str] = {}  # container name -> overlay IP
        self._ip_owner: dict[str, str] = {}  # overlay IP -> host name

    # -- per-host plumbing ---------------------------------------------------------

    def router_for(self, host: "Host") -> OverlayRouter:
        router = self._routers.get(host.name)
        if router is None or router.host is not host:
            table = self.mesh.join(host.name)
            router = OverlayRouter(host, table)
            for other in self._routers.values():
                other.connect_peer(router)
            # A late joiner replays the current routing state (a real
            # mesh would learn it during the BGP session bring-up).
            for ip, owner in self._ip_owner.items():
                table.install(ip, owner)
            self._routers[host.name] = router
        return router

    def bridge_for(self, host: "Host") -> Optional[SoftwareBridge]:
        if not self.with_bridges:
            return None
        bridge = self._bridges.get(host.name)
        if bridge is None or bridge.host is not host:
            bridge = SoftwareBridge(host, name="weave-br")
            self._bridges[host.name] = bridge
        return bridge

    # -- container admission -----------------------------------------------------------

    def attach(self, container: Container, immediate_routes: bool = True) -> str:
        """Give a container an overlay IP and announce its route."""
        if container.name in self._ips:
            return self._ips[container.name]
        self.router_for(container.host)
        ip = self.pool.allocate(container.spec.requested_ip)
        self._ips[container.name] = ip
        self._ip_owner[ip] = container.host.name
        self.mesh.announce(ip, container.host.name, immediate=immediate_routes)
        return ip

    def ip_of(self, container: Container) -> str:
        return self._ips[container.name]

    def connect(
        self,
        a: Container,
        b: Container,
        a_port: int = 0,
        b_port: int = 0,
        window_bytes: int = 4 * 1024 * 1024,
    ) -> TcpConnection:
        """An overlay-mode kernel TCP connection between two containers."""
        ip_a = self.attach(a)
        ip_b = self.attach(b)
        return TcpConnection(
            a.host, b.host,
            EndpointAddr(ip_a, a_port),
            EndpointAddr(ip_b, b_port),
            mode=TcpMode.OVERLAY,
            a_router=self.router_for(a.host),
            b_router=self.router_for(b.host),
            a_bridge=self.bridge_for(a.host),
            b_bridge=self.bridge_for(b.host),
            window_bytes=window_bytes,
        )

"""Bridge-mode (docker0) container networking.

Each container hangs off the host's Linux bridge through a veth pair;
every packet pays the veth+bridge forwarding surcharge on top of the
full kernel stack.  This is Docker's default single-host networking and
the "Docker0/bridge" series of the paper's motivation figures
(≈ 27 Gb/s at ~200 % CPU on the testbed).

Note bridge mode alone cannot cross hosts (that is what overlays are
for); connecting containers on different hosts here still traverses the
bridge on each side and the host network in between — i.e. the classic
"bridge + port mapping" deployment.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..cluster.container import Container
from ..netstack.bridge import SoftwareBridge
from ..netstack.packet import EndpointAddr
from ..netstack.tcp import TcpConnection, TcpMode

if TYPE_CHECKING:  # pragma: no cover
    from ..hardware.host import Host
    from ..sim.scheduler import Environment

__all__ = ["BridgeModeNetwork"]


class BridgeModeNetwork:
    """One ``docker0`` bridge per host; containers connect through it."""

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self._bridges: dict[str, SoftwareBridge] = {}
        self._next_ip = 2

    def bridge_for(self, host: "Host") -> SoftwareBridge:
        bridge = self._bridges.get(host.name)
        if bridge is None or bridge.host is not host:
            bridge = SoftwareBridge(host)
            self._bridges[host.name] = bridge
        return bridge

    def _container_addr(self, container: Container, port: int) -> EndpointAddr:
        # docker0's default subnet; addresses are only used as labels by
        # the kernel-path model, so a simple counter suffices.
        addr = EndpointAddr(f"172.17.0.{self._next_ip}", port)
        self._next_ip += 1
        return addr

    def connect(
        self,
        a: Container,
        b: Container,
        a_port: int = 0,
        b_port: int = 0,
        window_bytes: int = 4 * 1024 * 1024,
    ) -> TcpConnection:
        """A bridge-mode kernel TCP connection between two containers."""
        return TcpConnection(
            a.host, b.host,
            self._container_addr(a, a_port),
            self._container_addr(b, b_port),
            mode=TcpMode.BRIDGE,
            a_bridge=self.bridge_for(a.host),
            b_bridge=self.bridge_for(b.host),
            window_bytes=window_bytes,
        )

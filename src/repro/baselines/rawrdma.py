"""Raw RDMA between containers (the motivation-section baseline).

Containers in host mode can drive the RDMA NIC directly — that is the
"RDMA" series in the paper's §2.3 figures (40 Gb/s even intra-host,
since the payload hairpins through the NIC).  It is fast but breaks
portability: the container is bound to this specific NIC and host, and
using it requires host-mode networking with all its port-space sharing.
FreeFlow's point is to keep this speed *without* that binding.
"""

from __future__ import annotations

from ..cluster.container import Container
from ..errors import TransportUnavailable
from ..transports.rdma import RdmaChannel

__all__ = ["RawRdmaNetwork"]


class RawRdmaNetwork:
    """Direct verbs-level RDMA channels, no overlay, no portability."""

    def __init__(self) -> None:
        self.channels: list[RdmaChannel] = []

    def connect(
        self,
        a: Container,
        b: Container,
        window_bytes: int = 8 * 1024 * 1024,
    ) -> RdmaChannel:
        if not a.host.rdma_capable or not b.host.rdma_capable:
            raise TransportUnavailable(
                "raw RDMA needs RDMA-capable NICs on both hosts"
            )
        channel = RdmaChannel(a.host, b.host, window_bytes)
        self.channels.append(channel)
        return channel

"""Host-mode container networking (paper §1, mode (2)).

The container "binds an interface and a port on the host and uses the
host's IP to communicate, like an ordinary process".  Fast — one kernel
stack hairpin, no bridge — but it breaks isolation and portability: all
containers on a host share one port space, so "there can be only one
container bound to port 80 on each physical server".  The port registry
here enforces exactly that, and the E1/E7 benches use the resulting
connections for the throughput/latency columns.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..cluster.container import Container
from ..errors import AddressError
from ..netstack.packet import EndpointAddr
from ..netstack.tcp import TcpConnection, TcpMode

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.scheduler import Environment

__all__ = ["HostModeNetwork"]


class HostModeNetwork:
    """Connects containers through their hosts' shared IP/port space."""

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: (host name, port) -> container name; the shared port space.
        self._bindings: dict[tuple[str, int], str] = {}

    def bind(self, container: Container, port: int) -> EndpointAddr:
        """Claim a host port for a container (first come, first served)."""
        if not 0 < port < 65536:
            raise AddressError(f"port {port} out of range")
        key = (container.host.name, port)
        owner = self._bindings.get(key)
        if owner is not None and owner != container.name:
            raise AddressError(
                f"port {port} on {container.host.name} is already bound by "
                f"{owner} — host mode has no per-container port space"
            )
        self._bindings[key] = container.name
        return EndpointAddr(container.host.name, port)

    def release(self, container: Container, port: int) -> None:
        self._bindings.pop((container.host.name, port), None)

    def connect(
        self,
        a: Container,
        b: Container,
        a_port: int,
        b_port: int,
        window_bytes: int = 4 * 1024 * 1024,
    ) -> TcpConnection:
        """A host-mode kernel TCP connection between two containers."""
        addr_a = self.bind(a, a_port)
        addr_b = self.bind(b, b_port)
        return TcpConnection(
            a.host, b.host, addr_a, addr_b,
            mode=TcpMode.HOST, window_bytes=window_bytes,
        )

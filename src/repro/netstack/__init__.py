"""Kernel networking substrate (S3/S4): the data planes FreeFlow replaces.

IP address management, routing mesh, the kernel TCP path (host mode),
the veth/bridge hop (docker0) and the user-space overlay router (Weave
style) — the "deep software stack" of the paper's Fig. 3(a).
"""

from .addressing import IpPool, OverlaySubnets
from .bridge import SoftwareBridge
from .overlay import OverlayRouter
from .packet import EndpointAddr, Message, segment_count
from .pathsel import FLOWLET_GAP_S, PathSelector, Route, ecmp_hash
from .routing import RouteTable, RoutingMesh
from .tcp import TcpConnection, TcpEnd, TcpMode, TcpStats

__all__ = [
    "EndpointAddr",
    "FLOWLET_GAP_S",
    "IpPool",
    "Message",
    "OverlayRouter",
    "OverlaySubnets",
    "PathSelector",
    "Route",
    "RouteTable",
    "RoutingMesh",
    "SoftwareBridge",
    "TcpConnection",
    "TcpEnd",
    "TcpMode",
    "TcpStats",
    "ecmp_hash",
    "segment_count",
]

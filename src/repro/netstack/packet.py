"""Message and addressing records shared across the data planes.

The simulation moves *messages* (application writes), not individual MTU
packets: with TSO/GRO the kernel's unit of work is a 64 KB segment, and
per-MTU behaviour only matters for wire overhead, which
:meth:`~repro.hardware.specs.KernelStackSpec.wire_bytes` accounts for.
Each message carries enough metadata for functional delivery (who sent
it, to which endpoint) and for measurement (timestamps)."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["EndpointAddr", "Message", "segment_count"]

_message_ids = itertools.count(1)


@dataclass(frozen=True, order=True, slots=True)
class EndpointAddr:
    """An overlay endpoint: IP address string plus port."""

    ip: str
    port: int = 0

    def __str__(self) -> str:
        return f"{self.ip}:{self.port}"


@dataclass(slots=True)
class Message:
    """One application-level message traversing a data plane.

    ``slots=True``: a streaming run materialises one instance per
    message, so the dict-free layout is worth having.
    """

    size_bytes: int
    src: Optional[EndpointAddr] = None
    dst: Optional[EndpointAddr] = None
    payload: Any = None
    meta: dict = field(default_factory=dict)
    msg_id: int = field(default_factory=lambda: next(_message_ids))
    #: Simulation timestamps, filled in by the transports.
    sent_at: float = float("nan")
    delivered_at: float = float("nan")

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError(f"negative message size {self.size_bytes}")

    @property
    def latency(self) -> float:
        """End-to-end delivery time (NaN until delivered)."""
        return self.delivered_at - self.sent_at


def segment_count(payload_bytes: int, segment_bytes: int) -> int:
    """How many kernel segments a payload becomes (at least one)."""
    if segment_bytes <= 0:
        raise ValueError(f"segment size must be positive, got {segment_bytes}")
    if payload_bytes <= 0:
        return 1
    return -(-payload_bytes // segment_bytes)

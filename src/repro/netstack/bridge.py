"""The veth + Linux-bridge hop (docker0-style).

In bridge mode every packet crosses the container's veth pair and the
host bridge before it reaches the host stack proper.  That work happens
inline in the kernel's softirq context on the sending core, so we charge
it inline on the sender path — which is exactly why bridge mode tops out
below host mode (≈27 vs ≈38 Gb/s on the paper's testbed).

The class itself is small: it owns the cost arithmetic and counters so
experiments can report forwarding load per bridge.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..hardware.specs import KernelStackSpec
from .packet import segment_count

if TYPE_CHECKING:  # pragma: no cover
    from ..hardware.host import Host

__all__ = ["SoftwareBridge"]


class SoftwareBridge:
    """A Linux bridge instance on one host (e.g. ``docker0``)."""

    def __init__(self, host: "Host", name: str = "docker0") -> None:
        self.host = host
        self.name = name
        self.spec: KernelStackSpec = host.spec.kernel
        self.messages_forwarded = 0
        self.bytes_forwarded = 0

    def forwarding_cycles(self, payload: int) -> float:
        """CPU cycles to shuttle one message across veth + bridge."""
        segments = segment_count(payload, self.spec.segment_bytes)
        return (
            payload * self.spec.bridge_cycles_per_byte
            + segments * self.spec.bridge_per_segment_cycles
        )

    @property
    def latency_s(self) -> float:
        """Non-CPU latency of the hop (queueing into the bridge)."""
        return self.spec.bridge_latency_s

    def account(self, payload: int) -> None:
        """Record one forwarded message (callers charge the CPU cost)."""
        self.messages_forwarded += 1
        self.bytes_forwarded += payload

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<SoftwareBridge {self.name} on {self.host.name}>"

"""User-space overlay routers (the Weave-style data plane).

One router process runs per host.  All overlay traffic on the host
funnels through it — kernel → user copy, VXLAN-ish encap, user → kernel
copy — so the router is a serialization point *and* a CPU burner, which
is precisely the double hairpin the paper's Fig. 1 blames for overlay
mode's poor showing.

The router is functional: it looks the destination IP up in its route
table (fed by the :class:`~repro.netstack.routing.RoutingMesh`), delivers
locally registered endpoints directly, and tunnels to the peer router for
remote destinations.  FreeFlow's customized router
(:mod:`repro.core.agent`) replaces this data plane while reusing the same
control plane.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from ..errors import RoutingError
from ..sim.resources import Store
from ..telemetry import tracer as _tracer
from .packet import EndpointAddr, Message, segment_count
from .routing import RouteTable

if TYPE_CHECKING:  # pragma: no cover
    from ..hardware.host import Host

__all__ = ["OverlayRouter"]


class OverlayRouter:
    """The per-host software router of a classic container overlay."""

    def __init__(self, host: "Host", table: RouteTable) -> None:
        self.env = host.env
        self.host = host
        self.spec = host.spec.overlay
        self.kernel = host.spec.kernel
        self.table = table
        #: Locally attached endpoints: addr -> delivery callback.
        self._endpoints: dict[EndpointAddr, Callable[[Message], None]] = {}
        #: Peer routers by host name (the tunnel mesh).
        self._peers: dict[str, "OverlayRouter"] = {}
        self._queue: Store = Store(host.env)
        #: Per-peer tunnel queues: encapsulated traffic toward one peer
        #: router leaves in order (no small-overtakes-large reordering).
        self._tunnel_queues: dict[str, Store] = {}
        self.messages_routed = 0
        self.bytes_routed = 0
        host.env.process(self._worker())

    # -- wiring ---------------------------------------------------------------

    def connect_peer(self, router: "OverlayRouter") -> None:
        """Establish the tunnel to another host's router (both ways)."""
        if router is self:
            raise ValueError("a router does not tunnel to itself")
        self._peers[router.host.name] = router
        router._peers[self.host.name] = self

    def register(
        self, addr: EndpointAddr, deliver: Callable[[Message], None]
    ) -> None:
        """Attach a local endpoint that can receive overlay traffic."""
        if addr in self._endpoints:
            raise RoutingError(f"{addr} already registered on {self.host.name}")
        self._endpoints[addr] = deliver

    def unregister(self, addr: EndpointAddr) -> None:
        self._endpoints.pop(addr, None)

    def has_endpoint(self, addr: EndpointAddr) -> bool:
        return addr in self._endpoints

    # -- data plane ---------------------------------------------------------------

    def submit(self, message: Message) -> None:
        """Hand a message to the router (non-blocking; router queues)."""
        self._queue.put(message)

    def service_cycles(self, payload: int) -> float:
        segments = segment_count(payload, self.kernel.segment_bytes)
        return (
            payload * self.spec.router_cycles_per_byte
            + segments * self.spec.per_segment_cycles
        )

    def wire_bytes(self, payload: int) -> int:
        """On-the-wire size of an encapsulated message."""
        packets = max(1, -(-payload // self.kernel.mtu_bytes))
        return self.kernel.wire_bytes(payload) + packets * self.spec.encap_bytes

    def _worker(self):
        """The single-threaded router loop (the Weave process)."""
        while True:
            message = yield self._queue.get()
            if message.dst is None:
                raise RoutingError(
                    "overlay router got a message with no destination "
                    "(invariant: every routed message carries a dst address)"
                )
            trace = (message.meta.get("trace")
                     if _tracer.ACTIVE is not None else None)
            mark = self.env.now
            yield from self.host.cpu.execute(self.service_cycles(message.size_bytes))
            if trace is not None:
                trace.add("overlay", mark, self.env.now)
            self.messages_routed += 1
            self.bytes_routed += message.size_bytes
            self._forward(message)

    def _forward(self, message: Message) -> None:
        """Route one serviced message (local delivery or tunnel)."""
        dst = message.dst
        local = self._endpoints.get(dst)
        if local is not None:
            self._deliver_after(self.spec.traversal_latency_s, local, message)
            return
        try:
            owner = self.table.lookup(dst.ip)
        except RoutingError:
            message.meta["dropped"] = f"no route on {self.host.name}"
            return
        peer = self._peers.get(owner)
        if peer is None:
            message.meta["dropped"] = f"no tunnel from {self.host.name} to {owner}"
            return
        queue = self._tunnel_queues.get(owner)
        if queue is None:
            queue = Store(self.env)
            self._tunnel_queues[owner] = queue
            self.env.process(self._tunnel_worker(peer, queue))
        queue.put(message)

    def _tunnel_worker(self, peer: "OverlayRouter", queue: Store):
        """Serialises encapsulated traffic toward one peer router."""
        fabric = self.host.fabric
        if fabric is None:
            raise RoutingError(
                "overlay tunnel requires the host on a fabric (invariant: "
                "inter-host tunnels only exist between fabric-attached hosts)"
            )
        while True:
            message = yield queue.get()
            yield self.env.timeout(self.spec.traversal_latency_s)
            if (_tracer.ACTIVE is not None
                    and message.meta.get("trace") is not None):
                message.meta["wire_start"] = self.env.now
            yield from fabric.send(
                self.host.nic,
                peer.host.nic,
                self.wire_bytes(message.size_bytes),
                deliver=lambda m=message: self._off_wire(peer, m),
            )

    def _off_wire(self, peer: "OverlayRouter", message: Message) -> None:
        """Tunnel delivery into the peer router's ingress queue."""
        if _tracer.ACTIVE is not None:
            trace = message.meta.get("trace")
            start = message.meta.pop("wire_start", None)
            if trace is not None and start is not None:
                trace.add("wire", start, self.env.now)
        peer.submit(message)

    def _deliver_after(
        self, delay: float, deliver: Callable[[Message], None], message: Message
    ) -> None:
        def _later():
            yield self.env.timeout(delay)
            deliver(message)

        self.env.process(_later())

"""The kernel TCP/IP data path between two container endpoints.

This is the "deep software stack" of the paper's Fig. 3(a), built as a
pipeline of stages so that throughput limits *emerge* from CPU, wire and
router contention instead of being asserted:

    sender syscall+stack (CPU, inline)           <- send() blocks here
      └─ [bridge hop, inline, bridge mode]
    window (socket-buffer backpressure)
    tx stage: wire serialisation / overlay router
    rx stage: receiver softirq+copy (CPU, worker)
    inbox                                        <- recv() blocks here

Three modes mirror the paper's taxonomy:

* ``HOST``    — container binds the host interface; pure stack hairpin.
* ``BRIDGE``  — docker0: veth+bridge surcharge inline on the sender path.
* ``OVERLAY`` — everything hairpins through the per-host user-space
  router (:class:`~repro.netstack.overlay.OverlayRouter`), twice for
  inter-host traffic.
"""

from __future__ import annotations

import enum
from itertools import count
from typing import TYPE_CHECKING, Optional

from ..errors import TransportError
from ..sim.monitor import StreamingSeries
from ..sim.resources import Store, Tank
from ..telemetry import flowrecords as _flowrecords
from ..telemetry import tracer as _tracer
from .bridge import SoftwareBridge
from .overlay import OverlayRouter
from .packet import EndpointAddr, Message, segment_count

if TYPE_CHECKING:  # pragma: no cover
    from ..hardware.host import Host

__all__ = ["FAULTS", "TcpMode", "TcpConnection", "TcpEnd", "TcpStats"]

#: Process-wide fault-injection hook for the kernel receive path (the
#: chaos subsystem's seam, mirroring ``telemetry.tracer.ACTIVE``).  When
#: set to an object with ``rx_delay(lane, message) -> float``, every
#: message entering a connection's rx queue may be held for that many
#: seconds first.  A held message is delayed — never dropped — modelling
#: loss + retransmit on a reliable transport (byte conservation holds);
#: messages queued behind a held one overtake it, producing reordering.
FAULTS = None


class TcpMode(enum.Enum):
    """Which container-networking flavour carries the connection."""

    HOST = "host"
    BRIDGE = "bridge"
    OVERLAY = "overlay"


class TcpStats:
    """Per-direction delivery counters (latencies kept in O(1) memory)."""

    __slots__ = ("messages", "messages_sent", "payload_bytes", "latencies")

    def __init__(self) -> None:
        self.messages = 0
        self.messages_sent = 0
        self.payload_bytes = 0
        self.latencies = StreamingSeries()

    @property
    def messages_delivered(self) -> int:
        """Alias matching the transport-lane stats interface."""
        return self.messages


#: Monotone ids for tracer flow labels ("tcp-<mode>/<id>").
_flow_ids = count(1)


class _Direction:
    """One direction of a duplex TCP connection (its own pipeline)."""

    def __init__(
        self,
        conn: "TcpConnection",
        src_host: "Host",
        dst_host: "Host",
        src_addr: EndpointAddr,
        dst_addr: EndpointAddr,
        src_router: Optional[OverlayRouter],
        dst_router: Optional[OverlayRouter],
        src_bridge: Optional[SoftwareBridge],
        dst_bridge: Optional[SoftwareBridge],
    ) -> None:
        self.conn = conn
        self.env = conn.env
        self.src_host = src_host
        self.dst_host = dst_host
        self.src_addr = src_addr
        self.dst_addr = dst_addr
        self.src_router = src_router
        self.dst_router = dst_router
        self.src_bridge = src_bridge
        self.dst_bridge = dst_bridge
        self.kernel = src_host.spec.kernel
        self.window = Tank(conn.env, capacity=conn.window_bytes)
        self.rx_queue: Store = Store(conn.env)
        self.inbox: Store = Store(conn.env)
        self.stats = TcpStats()
        #: Tracer flow label (the kernel path is not a transport Lane, so
        #: it labels its own flows).
        self.flow = f"tcp-{conn.mode.value}/{next(_flow_ids)}"
        #: Cleared by the TcpLane adapter, which accounts deliveries
        #: itself under the (flow-table-labelled) lane flow.
        self.record_deliveries = True
        self._closed = False
        conn.env.process(self._rx_worker())
        if self._needs_tx_worker():
            self.tx_queue: Optional[Store] = Store(conn.env)
            conn.env.process(self._tx_worker())
        else:
            self.tx_queue = None
        if self.dst_router is not None:
            self.dst_router.register(dst_addr, self._router_deliver)

    # -- send path ---------------------------------------------------------------

    def send(self, nbytes: int, payload=None):
        """Sender-side path (generator): syscall, stack CPU, window."""
        if self._closed:
            raise TransportError("connection closed")
        message = Message(
            size_bytes=nbytes, src=self.src_addr, dst=self.dst_addr, payload=payload
        )
        message.sent_at = self.env.now
        self.stats.messages_sent += 1
        tracer = _tracer.ACTIVE
        trace = None
        if tracer is not None:
            trace = tracer.begin(self.flow, "tcp", self.env.now)
            if trace is not None:
                message.meta["trace"] = trace
        cycles = self._send_cycles(nbytes)
        mark = self.env.now
        yield from self.src_host.cpu.execute(cycles)
        if trace is not None:
            trace.add("kernel", mark, self.env.now)
            mark = self.env.now
        yield self.window.put(max(1, nbytes))
        if trace is not None:
            trace.add("queue", mark, self.env.now)
            mark = self.env.now
        # In-flight window bytes are repaid by the receive worker
        # (window.get in _rx_worker) when the segment lands; the
        # send-side stack latency between reservation and dispatch has
        # no raising path in the model.
        # simlint: disable=SIM012
        yield self.env.timeout(self.kernel.stack_latency_s)
        if trace is not None:
            trace.add("kernel", mark, self.env.now)
        self._dispatch(message)
        return message

    def _send_cycles(self, nbytes: int) -> float:
        segments = segment_count(nbytes, self.kernel.segment_bytes)
        cycles = (
            self.kernel.syscall_cycles
            + nbytes * self.kernel.send_cycles_per_byte
            + segments * self.kernel.per_segment_cycles
        )
        if self.src_bridge is not None:
            cycles += self.src_bridge.forwarding_cycles(nbytes)
            self.src_bridge.account(nbytes)
        return cycles

    def _dispatch(self, message: Message) -> None:
        """Hand the message to the mid-path (router, wire or loopback)."""
        if self.src_router is not None:
            self.src_router.submit(message)
        elif self.src_host is self.dst_host:
            self._rx_enqueue(message)
        else:
            if self.tx_queue is None:
                raise TransportError(
                    "inter-host TCP lane has no tx queue (invariant: "
                    "lanes where _needs_tx_worker() holds own a wire stage)"
                )
            self.tx_queue.put(message)

    def _needs_tx_worker(self) -> bool:
        return self.src_router is None and self.src_host is not self.dst_host

    def _tx_worker(self):
        """Wire stage: serialises onto the sender's NIC (device layer)."""
        fabric = self.src_host.fabric
        while True:
            message = yield self.tx_queue.get()
            if fabric is None:
                raise TransportError(
                    f"hosts {self.src_host.name}/{self.dst_host.name} share no fabric"
                )
            wire = self.kernel.wire_bytes(message.size_bytes)
            if self._trace_of(message) is not None:
                message.meta["wire_start"] = self.env.now
            yield from fabric.send(
                self.src_host.nic,
                self.dst_host.nic,
                wire,
                deliver=lambda m=message: self._off_wire(m),
            )

    def _trace_of(self, message: Message):
        if _tracer.ACTIVE is None:
            return None
        return message.meta.get("trace")

    def _off_wire(self, message: Message) -> None:
        """The device layer delivered the frame into the receiver's NIC."""
        trace = self._trace_of(message)
        if trace is not None:
            start = message.meta.pop("wire_start", None)
            if start is not None:
                trace.add("wire", start, self.env.now)
        self._rx_enqueue(message)

    def _router_deliver(self, message: Message) -> None:
        """Entry point the destination overlay router delivers into."""
        self._rx_enqueue(message)

    def _rx_enqueue(self, message: Message) -> None:
        """Feed the rx queue, honouring the :data:`FAULTS` hook."""
        faults = FAULTS
        if faults is not None:
            delay = faults.rx_delay(self, message)
            if delay > 0:
                self.env.process(self._delayed_rx(message, delay))
                return
        self.rx_queue.put(message)

    def _delayed_rx(self, message: Message, delay: float):
        """Hold a "lost" frame for its retransmit delay, then deliver."""
        yield self.env.timeout(delay)
        self.rx_queue.put(message)

    # -- receive path ----------------------------------------------------------------

    def _rx_worker(self):
        """Receiver softirq + copy-to-user stage (serial per connection)."""
        while True:
            message = yield self.rx_queue.get()
            trace = self._trace_of(message)
            mark = self.env.now
            cycles = self._recv_cycles(message.size_bytes)
            yield from self.dst_host.cpu.execute(cycles)
            yield self.env.timeout(self.kernel.stack_latency_s)
            yield self.window.get(max(1, message.size_bytes))
            if trace is not None:
                trace.add("kernel", mark, self.env.now)
            message.delivered_at = self.env.now
            self.stats.messages += 1
            self.stats.payload_bytes += message.size_bytes
            self.stats.latencies.append(message.latency)
            recorder = _flowrecords.ACTIVE
            if recorder is not None and self.record_deliveries:
                # The kernel path is not a transport Lane, so it feeds
                # the flow recorder from its own delivery point.
                recorder.on_deliver(self.flow, message.size_bytes,
                                    self.env.now)
            self.inbox.put(message)

    def _recv_cycles(self, nbytes: int) -> float:
        segments = segment_count(nbytes, self.kernel.segment_bytes)
        cycles = (
            self.kernel.syscall_cycles
            + nbytes * self.kernel.recv_cycles_per_byte
            + segments * self.kernel.per_segment_cycles
        )
        if self.dst_bridge is not None:
            cycles += self.dst_bridge.forwarding_cycles(nbytes)
            self.dst_bridge.account(nbytes)
        return cycles

    def recv(self):
        """Receiver-side blocking read (generator)."""
        message = yield self.inbox.get()
        tracer = _tracer.ACTIVE
        if tracer is not None:
            trace = message.meta.get("trace")
            if trace is not None:
                tracer.finish(trace, self.env.now)
        return message

    def close(self) -> None:
        self._closed = True
        if self.dst_router is not None:
            self.dst_router.unregister(self.dst_addr)


class TcpEnd:
    """One side of a duplex connection: an outgoing and incoming lane."""

    def __init__(self, out_lane: _Direction, in_lane: _Direction) -> None:
        self._out = out_lane
        self._in = in_lane

    @property
    def local_addr(self) -> EndpointAddr:
        return self._out.src_addr

    @property
    def peer_addr(self) -> EndpointAddr:
        return self._out.dst_addr

    def send(self, nbytes: int, payload=None):
        """Send ``nbytes`` to the peer (generator; yield from it)."""
        result = yield from self._out.send(nbytes, payload)
        return result

    def recv(self):
        """Receive the next message from the peer (generator)."""
        message = yield from self._in.recv()
        return message

    @property
    def recv_stats(self) -> TcpStats:
        return self._in.stats


class TcpConnection:
    """A duplex kernel-TCP connection between two container endpoints.

    Parameters
    ----------
    mode:
        Which container networking flavour (host/bridge/overlay).
    a_router/b_router:
        Overlay routers for the two hosts (required iff OVERLAY mode).
    a_bridge/b_bridge:
        Software bridges for the two hosts (required iff BRIDGE mode;
        OVERLAY mode also crosses the local bridge to reach the router).
    window_bytes:
        Socket-buffer backpressure per direction.
    """

    def __init__(
        self,
        a_host: "Host",
        b_host: "Host",
        a_addr: EndpointAddr,
        b_addr: EndpointAddr,
        mode: TcpMode = TcpMode.HOST,
        a_router: Optional[OverlayRouter] = None,
        b_router: Optional[OverlayRouter] = None,
        a_bridge: Optional[SoftwareBridge] = None,
        b_bridge: Optional[SoftwareBridge] = None,
        window_bytes: int = 4 * 1024 * 1024,
    ) -> None:
        if a_host.env is not b_host.env:
            raise ValueError("hosts live in different environments")
        if mode is TcpMode.OVERLAY and (a_router is None or b_router is None):
            raise ValueError("OVERLAY mode needs a router on each host")
        if mode is TcpMode.BRIDGE and (a_bridge is None or b_bridge is None):
            raise ValueError("BRIDGE mode needs a bridge on each host")
        if mode is not TcpMode.OVERLAY:
            a_router = b_router = None
        if mode is TcpMode.HOST:
            a_bridge = b_bridge = None
        self.env = a_host.env
        self.mode = mode
        self.window_bytes = window_bytes
        # Intra-host overlay traffic traverses the single local router once.
        same_host = a_host is b_host
        lane_ab = _Direction(
            self, a_host, b_host, a_addr, b_addr,
            src_router=a_router,
            dst_router=(b_router if not same_host else a_router),
            src_bridge=a_bridge, dst_bridge=b_bridge,
        )
        lane_ba = _Direction(
            self, b_host, a_host, b_addr, a_addr,
            src_router=b_router,
            dst_router=(a_router if not same_host else b_router),
            src_bridge=b_bridge, dst_bridge=a_bridge,
        )
        self.a = TcpEnd(lane_ab, lane_ba)
        self.b = TcpEnd(lane_ba, lane_ab)
        self._lanes = (lane_ab, lane_ba)

    def close(self) -> None:
        for lane in self._lanes:
            lane.close()

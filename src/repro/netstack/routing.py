"""Overlay routing: per-host route tables plus a BGP-like mesh.

Existing overlay solutions (the paper names Calico/Weave for distributed
BGP-style routing and Docker overlay/DaoliNet for centralized OVS-based
routing, §4.1) all converge on the same artifact: every host's router
knows which host currently owns each container IP.  We model that with a
:class:`RoutingMesh` that floods announcements to every
:class:`RouteTable` after a convergence delay — enough fidelity to study
staleness (migration experiments) without simulating a full BGP FSM.
"""

from __future__ import annotations

import ipaddress
from typing import TYPE_CHECKING, Optional

from ..errors import RoutingError

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.scheduler import Environment

__all__ = ["RouteTable", "RoutingMesh"]


class RouteTable:
    """Longest-prefix-match table mapping overlay prefixes to host names."""

    def __init__(self, owner: str) -> None:
        self.owner = owner
        self._routes: dict[ipaddress.IPv4Network, str] = {}

    def __len__(self) -> int:
        return len(self._routes)

    def install(self, prefix: str, next_hop: str) -> None:
        """Insert/replace the route for ``prefix`` (CIDR or bare IP)."""
        network = self._parse(prefix)
        self._routes[network] = next_hop

    def withdraw(self, prefix: str) -> None:
        network = self._parse(prefix)
        self._routes.pop(network, None)

    def lookup(self, ip: str) -> str:
        """Return the owning host for ``ip`` (longest prefix wins)."""
        try:
            address = ipaddress.ip_address(ip)
        except ValueError as exc:
            raise RoutingError(f"bad address {ip!r}: {exc}") from exc
        best: Optional[tuple[int, str]] = None
        for network, next_hop in self._routes.items():
            if address in network:
                if best is None or network.prefixlen > best[0]:
                    best = (network.prefixlen, next_hop)
        if best is None:
            raise RoutingError(f"{self.owner}: no route to {ip}")
        return best[1]

    def knows(self, ip: str) -> bool:
        try:
            self.lookup(ip)
            return True
        except RoutingError:
            return False

    @staticmethod
    def _parse(prefix: str) -> ipaddress.IPv4Network:
        try:
            if "/" in prefix:
                return ipaddress.ip_network(prefix, strict=True)
            return ipaddress.ip_network(f"{prefix}/32", strict=True)
        except ValueError as exc:
            raise RoutingError(f"bad prefix {prefix!r}: {exc}") from exc


class RoutingMesh:
    """Floods host-route announcements to all participating tables.

    ``convergence_delay_s`` models the protocol propagation time (BGP
    update or OVS flow-mod push); until it elapses, other routers still
    hold the previous route — the staleness window FreeFlow's central
    orchestrator sidesteps."""

    def __init__(self, env: "Environment", convergence_delay_s: float = 0.05) -> None:
        self.env = env
        self.convergence_delay_s = convergence_delay_s
        self._tables: dict[str, RouteTable] = {}

    def join(self, owner: str) -> RouteTable:
        """Register a router and get its (initially empty) table."""
        if owner in self._tables:
            raise RoutingError(f"router {owner!r} already joined the mesh")
        table = RouteTable(owner)
        self._tables[owner] = table
        return table

    def leave(self, owner: str) -> None:
        self._tables.pop(owner, None)

    def table(self, owner: str) -> RouteTable:
        try:
            return self._tables[owner]
        except KeyError:
            raise RoutingError(f"unknown router {owner!r}") from None

    def announce(self, prefix: str, next_hop: str, immediate: bool = False) -> None:
        """Announce ``prefix -> next_hop`` from its owner to the mesh.

        The announcing host's own table updates instantly; every other
        table converges after the mesh delay (or instantly when
        ``immediate`` — useful for initial bring-up)."""
        if next_hop in self._tables:
            self._tables[next_hop].install(prefix, next_hop)

        others = [t for name, t in self._tables.items() if name != next_hop]
        if immediate or self.convergence_delay_s <= 0:
            for table in others:
                table.install(prefix, next_hop)
            return

        def _flood():
            yield self.env.timeout(self.convergence_delay_s)
            for table in others:
                # A router may have left while the update was in flight.
                if table.owner in self._tables:
                    table.install(prefix, next_hop)

        self.env.process(_flood())

    def withdraw(self, prefix: str, immediate: bool = False) -> None:
        """Withdraw a prefix from every table (same delay semantics)."""
        if immediate or self.convergence_delay_s <= 0:
            for table in self._tables.values():
                table.withdraw(prefix)
            return

        def _flood():
            yield self.env.timeout(self.convergence_delay_s)
            for table in list(self._tables.values()):
                table.withdraw(prefix)

        self.env.process(_flood())

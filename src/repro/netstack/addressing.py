"""IP address management for the overlay network (substrate S4).

FreeFlow keeps the overlay control plane of existing solutions: every
container gets a location-independent IP from an overlay subnet, and that
IP follows the container across hosts and migrations ("IP assignments is
independent to container's locations", §2.4).  This module is the IPAM:
deterministic, reusable allocation out of a configurable pool, with
support for manual (configuration-pinned) assignment, as §4 allows
("Container IPs can be assigned automatically by network agents via DHCP,
or manually assigned by containers' configurations").
"""

from __future__ import annotations

import ipaddress
from typing import Iterator, Optional

from ..errors import AddressError, AddressExhausted

__all__ = ["IpPool", "OverlaySubnets"]


class IpPool:
    """Allocates host addresses from one overlay subnet.

    Addresses are handed out in order, lowest-free-first, and released
    addresses are reused — matching the behaviour of the DHCP-style agent
    allocation the paper describes.
    """

    def __init__(self, cidr: str = "10.32.0.0/16") -> None:
        try:
            self.network = ipaddress.ip_network(cidr, strict=True)
        except ValueError as exc:
            raise AddressError(f"bad CIDR {cidr!r}: {exc}") from exc
        if self.network.num_addresses < 4:
            raise AddressError(f"subnet {cidr} too small for allocation")
        self._allocated: set[str] = set()
        # Reserve network and broadcast addresses plus the gateway (.1).
        self._reserved = {
            str(self.network.network_address),
            str(self.network.broadcast_address),
            str(self.network.network_address + 1),
        }

    @property
    def cidr(self) -> str:
        return str(self.network)

    @property
    def gateway(self) -> str:
        return str(self.network.network_address + 1)

    @property
    def allocated(self) -> frozenset[str]:
        return frozenset(self._allocated)

    @property
    def capacity(self) -> int:
        """Number of assignable addresses in the pool."""
        return self.network.num_addresses - len(self._reserved)

    def __contains__(self, ip: str) -> bool:
        try:
            return ipaddress.ip_address(ip) in self.network
        except ValueError:
            return False

    def _candidates(self) -> Iterator[str]:
        for address in self.network.hosts():
            text = str(address)
            if text not in self._reserved:
                yield text

    def allocate(self, requested: Optional[str] = None) -> str:
        """Grab a free address (or pin ``requested`` if it is free)."""
        if requested is not None:
            if requested not in self:
                raise AddressError(
                    f"{requested} is outside the overlay subnet {self.cidr}"
                )
            if requested in self._reserved:
                raise AddressError(f"{requested} is reserved")
            if requested in self._allocated:
                raise AddressError(f"{requested} is already allocated")
            self._allocated.add(requested)
            return requested
        for candidate in self._candidates():
            if candidate not in self._allocated:
                self._allocated.add(candidate)
                return candidate
        raise AddressExhausted(f"no free addresses in {self.cidr}")

    def release(self, ip: str) -> None:
        """Return an address to the pool."""
        if ip not in self._allocated:
            raise AddressError(f"{ip} was not allocated from {self.cidr}")
        self._allocated.remove(ip)


class OverlaySubnets:
    """Carves one supernet into per-tenant (or per-network) subnets.

    Mirrors how multi-tenant overlays (Docker networks, Weave subnets)
    isolate address spaces while sharing the physical fabric.
    """

    def __init__(self, supernet: str = "10.32.0.0/12", subnet_prefix: int = 16) -> None:
        try:
            self.supernet = ipaddress.ip_network(supernet, strict=True)
        except ValueError as exc:
            raise AddressError(f"bad supernet {supernet!r}: {exc}") from exc
        if subnet_prefix <= self.supernet.prefixlen:
            raise AddressError(
                f"subnet prefix /{subnet_prefix} must be longer than "
                f"supernet /{self.supernet.prefixlen}"
            )
        self.subnet_prefix = subnet_prefix
        self._subnet_iter = self.supernet.subnets(new_prefix=subnet_prefix)
        self._pools: dict[str, IpPool] = {}

    def pool(self, tenant: str) -> IpPool:
        """Get (or carve) the pool for ``tenant``."""
        if tenant not in self._pools:
            try:
                subnet = next(self._subnet_iter)
            except StopIteration:
                raise AddressExhausted(
                    f"supernet {self.supernet} has no free /{self.subnet_prefix}"
                ) from None
            self._pools[tenant] = IpPool(str(subnet))
        return self._pools[tenant]

    def tenant_of(self, ip: str) -> Optional[str]:
        """Reverse lookup: which tenant's subnet contains ``ip``."""
        for tenant, pool in self._pools.items():
            if ip in pool:
                return tenant
        return None

"""Multi-path route selection: ECMP hashing + flowlet switching.

A fat-tree gives every inter-pod host pair ``(k/2)^2`` equal-cost paths;
*which* one a packet takes is a pure routing decision, so it lives here
in the netstack, not in the hardware model.  The
:class:`PathSelector` makes that decision the way datacenter switches
do:

* **ECMP** — hash the flow identity (the 5-tuple, or whatever hashable
  key the caller supplies) once per hop tier and index into the sorted
  candidate set.  The hash is :mod:`hashlib`-based, so path assignment
  is a pure function of the key — deterministic across runs and
  interpreters (builtin ``hash()`` is salted; SIM001 bans it).
* **Flowlet switching** — per flow, remember when the last message was
  staged; an idle gap longer than ``flowlet_gap_s`` ends the current
  *flowlet* and bumps a flowlet id that is hashed along with the
  5-tuple, re-rolling the path (the CONGA/LetFlow trick: bursts can be
  moved between paths without reordering packets inside a burst).
* **Failure detours** — when a hop's chosen link is down, the remaining
  candidates are re-enumerated and the same hash indexes into the
  surviving set.  A detour (or a topology change between two messages
  of one flowlet) forcibly *ends* the flowlet: the rerouted messages
  carry a new flowlet key, so the no-reordering-within-a-flowlet
  invariant is preserved by construction and checkable by the tracer.

Per-flow state is bounded: beyond ``max_flows`` entries the oldest flow
is evicted (and counted), so the selector costs O(1) memory no matter
how many flows ever crossed the fabric.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Optional

from ..errors import RoutingError
from ..telemetry.registry import counter_inc, histogram_observe

if TYPE_CHECKING:  # pragma: no cover
    from ..hardware.topology import FabricLink, FatTreeTopology

__all__ = ["PathSelector", "Route", "FLOWLET_GAP_S", "ecmp_hash"]

#: Default idle gap (sim seconds) that ends a flowlet.  Real deployments
#: use ~50-500 us at 40G (it must exceed the worst path-latency skew so
#: a re-hashed burst cannot overtake the tail of the previous one); our
#: per-hop latency is ~1 us and path skew is bounded by queueing, so
#: 200 us is comfortably safe at the simulated scale.
FLOWLET_GAP_S = 200e-6


def ecmp_hash(*parts) -> int:
    """Stable 64-bit hash of the given parts (order matters).

    sha256-based so the value is identical across interpreter runs —
    the property the byte-identical-report CI gates need.
    """
    text = ":".join(str(part) for part in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class Route:
    """One routing decision: the hop sequence plus flowlet bookkeeping."""

    __slots__ = ("path", "flowlet_key", "seq")

    def __init__(self, path, flowlet_key, seq) -> None:
        #: Ordered tuple of :class:`FabricLink` hops (empty for
        #: same-edge traffic).
        self.path = path
        #: Hashable flowlet identity: (flow key, flowlet id, topology
        #: version at selection time).  Messages sharing a flowlet key
        #: must never be delivered out of order.
        self.flowlet_key = flowlet_key
        #: Send sequence number within the flowlet (reorder tracing).
        self.seq = seq


class _FlowState:
    """Per-flow flowlet tracking (bounded by PathSelector.max_flows)."""

    __slots__ = ("last_seen_s", "flowlet_id", "path", "topo_version", "seq")

    def __init__(self) -> None:
        self.last_seen_s = -float("inf")
        self.flowlet_id = 0
        self.path = None
        self.topo_version = -1
        self.seq = 0


class PathSelector:
    """ECMP + flowlet path selection over a fat-tree topology."""

    def __init__(
        self,
        topology: "FatTreeTopology",
        flowlet_gap_s: Optional[float] = FLOWLET_GAP_S,
        max_flows: int = 4096,
    ) -> None:
        if flowlet_gap_s is not None and flowlet_gap_s <= 0:
            raise ValueError(
                f"flowlet_gap_s must be positive or None, got {flowlet_gap_s}"
            )
        if max_flows < 1:
            raise ValueError(f"max_flows must be >= 1, got {max_flows}")
        self.topology = topology
        #: None disables flowlet switching entirely (plain ECMP): the
        #: path is pinned to the 5-tuple hash for the flow's lifetime.
        self.flowlet_gap_s = flowlet_gap_s
        self.max_flows = max_flows
        self._flows: dict = {}
        #: Flowlet boundaries that re-rolled the path (the LetFlow move).
        self.rehashes = 0
        #: Flow-state entries evicted to stay under ``max_flows``.
        self.evictions = 0
        #: Mid-network detours around dead links.
        self.detours = 0

    # -- flowlet detection ---------------------------------------------------

    def route(self, now_s: float, src_edge, dst_edge, flow_key) -> Route:
        """Pick the hop sequence for one message staged at ``now_s``.

        ``flow_key`` is any hashable flow identity (a 5-tuple, a host
        pair, ...).  Consecutive calls within ``flowlet_gap_s`` reuse
        the cached path; a longer idle gap bumps the flowlet id and
        re-hashes.
        """
        state = self._flows.get(flow_key)
        if state is None:
            state = _FlowState()
            self._flows[flow_key] = state
            while len(self._flows) > self.max_flows:
                evicted = next(iter(self._flows))
                del self._flows[evicted]
                self.evictions += 1
                counter_inc("repro.fabric.flow_evictions")
        gap = now_s - state.last_seen_s
        topo_version = self.topology.version
        stale = state.path is None or state.topo_version != topo_version
        if (not stale and self.flowlet_gap_s is not None
                and gap > self.flowlet_gap_s):
            state.flowlet_id += 1
            state.seq = 0
            stale = True
            self.rehashes += 1
            counter_inc("repro.fabric.flowlet_rehashes")
        if stale:
            old_path = state.path
            state.path = self._compute_path(
                flow_key, state.flowlet_id, src_edge, dst_edge
            )
            state.topo_version = topo_version
            if old_path is not None and old_path != state.path:
                counter_inc("repro.fabric.path_changes")
        state.last_seen_s = now_s
        seq = state.seq
        state.seq += 1
        return Route(
            state.path, (flow_key, state.flowlet_id, state.topo_version), seq
        )

    # -- ECMP path computation -----------------------------------------------

    def _compute_path(self, flow_key, flowlet_id, src_edge, dst_edge):
        """Hop-by-hop ECMP: hash over the alive candidate set per tier."""
        topo = self.topology
        if src_edge is dst_edge:
            return ()
        if src_edge.pod == dst_edge.pod:
            aggs = [
                agg for agg in topo.pod_aggs(src_edge.pod)
                if topo.link(src_edge, agg).up and topo.link(agg, dst_edge).up
            ]
            if not aggs:
                raise RoutingError(
                    f"no alive path {src_edge.name} -> {dst_edge.name}"
                )
            choice = ecmp_hash(flow_key, flowlet_id, "agg") % len(aggs)
            agg = aggs[choice]
            path = (topo.link(src_edge, agg), topo.link(agg, dst_edge))
        else:
            candidates = self._inter_pod_choices(src_edge, dst_edge)
            if not candidates:
                raise RoutingError(
                    f"no alive path {src_edge.name} -> {dst_edge.name}"
                )
            aggs = sorted(candidates, key=lambda agg: agg.index)
            agg = aggs[ecmp_hash(flow_key, flowlet_id, "agg") % len(aggs)]
            cores = candidates[agg]
            core = cores[ecmp_hash(flow_key, flowlet_id, "core") % len(cores)]
            down_agg = topo.pod_aggs(dst_edge.pod)[agg.index]
            path = (
                topo.link(src_edge, agg),
                topo.link(agg, core),
                topo.link(core, down_agg),
                topo.link(down_agg, dst_edge),
            )
        self._account_assignment(path)
        return path

    def _inter_pod_choices(self, src_edge, dst_edge):
        """agg -> [cores] with every hop of the full path alive.

        A core reaches exactly one aggregation switch per pod (the one
        sharing its group index), so picking (agg, core) fixes the whole
        path; the downward legs are filtered here so a dead core
        downlink removes that core from the candidate set.
        """
        topo = self.topology
        choices = {}
        for agg in topo.pod_aggs(src_edge.pod):
            if not topo.link(src_edge, agg).up:
                continue
            down_agg = topo.pod_aggs(dst_edge.pod)[agg.index]
            if not topo.link(down_agg, dst_edge).up:
                continue
            cores = [
                core for core in topo.agg_cores(agg)
                if topo.link(agg, core).up and topo.link(core, down_agg).up
            ]
            if cores:
                choices[agg] = cores
        return choices

    def _account_assignment(self, path) -> None:
        """Collision accounting: how loaded is the chosen bottleneck?"""
        for link in path:
            link.assignments += 1
        bottleneck = self._bottleneck(path)
        if bottleneck is not None:
            histogram_observe(
                "repro.fabric.path_collisions", float(bottleneck.assignments)
            )

    @staticmethod
    def _bottleneck(path) -> "FabricLink | None":
        """The upward agg->core hop (or the single up hop intra-pod)."""
        for link in path:
            if link.tier == "agg-core":
                return link
        return path[0] if path else None

    # -- failure detours -----------------------------------------------------

    def detour(self, transit, hop: int) -> None:
        """Recompute ``transit``'s remaining hops around dead links.

        Called by the fabric when the next planned hop is down.  The
        detour is a pure function of (flow key, flowlet id, topology
        version, current node), so every message of the same flowlet
        parked behind the same failure takes the same detour in FIFO
        order — no intra-flowlet reordering.  The rerouted messages get
        a *new* flowlet key (the failure ends the flowlet).
        """
        flow_key, flowlet_id, _ = transit.flowlet_key
        node = transit.path[hop].src
        topo = self.topology
        suffix = self._detour_suffix(
            flow_key, flowlet_id, node, transit.dst_edge
        )
        transit.path = transit.path[:hop] + suffix
        transit.flowlet_key = (flow_key, flowlet_id, topo.version)
        self.detours += 1
        counter_inc("repro.fabric.reroutes")

    def _detour_suffix(self, flow_key, flowlet_id, node, dst_edge):
        """Alive hop sequence from ``node`` to ``dst_edge``."""
        topo = self.topology
        if node is dst_edge:
            return ()
        kind = node.kind
        if kind == "edge":
            # Restart selection from the source edge (alive-filtered).
            return self._compute_path(
                (flow_key, "detour", topo.version), flowlet_id, node, dst_edge
            )
        if kind == "agg":
            if node.pod == dst_edge.pod:
                link = topo.link(node, dst_edge)
                if link.up:
                    return (link,)
                raise RoutingError(
                    f"no alive path {node.name} -> {dst_edge.name}"
                )
            down_aggs = topo.pod_aggs(dst_edge.pod)
            cores = [
                core for core in topo.agg_cores(node)
                if topo.link(node, core).up
                and topo.link(core, down_aggs[node.index]).up
                and topo.link(down_aggs[node.index], dst_edge).up
            ]
            if not cores:
                raise RoutingError(
                    f"no alive path {node.name} -> {dst_edge.name}"
                )
            choice = ecmp_hash(
                flow_key, flowlet_id, "detour", node.name, topo.version
            ) % len(cores)
            core = cores[choice]
            down_agg = down_aggs[node.index]
            return (
                topo.link(node, core),
                topo.link(core, down_agg),
                topo.link(down_agg, dst_edge),
            )
        # Core: the downward path is forced (one agg per pod).
        down_agg = topo.pod_aggs(dst_edge.pod)[node.group]
        first = topo.link(node, down_agg)
        second = topo.link(down_agg, dst_edge)
        if not (first.up and second.up):
            raise RoutingError(f"no alive path {node.name} -> {dst_edge.name}")
        return (first, second)

    # -- introspection -------------------------------------------------------

    def flow_count(self) -> int:
        return len(self._flows)

    def reset(self) -> None:
        """Forget all per-flow state (counters are kept)."""
        self._flows.clear()

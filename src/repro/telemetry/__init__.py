"""Unified telemetry for the FreeFlow reproduction (tracing + metrics).

Cooperating components, each with its own module-level ``ACTIVE``
handle so hot paths can gate on a single pointer compare:

* :mod:`~repro.telemetry.tracer` — span-based flow tracer recording
  per-hop sim-time segments for sampled messages;
* :mod:`~repro.telemetry.registry` — one queryable namespace of
  counters/gauges/histograms over every layer's stats;
* :mod:`~repro.telemetry.events` — structured control-plane event log
  (mechanism decisions, attaches, migrations, failures);
* :mod:`~repro.telemetry.flowrecords` — sketch-based top talkers plus
  NetFlow-style sampled flow records (the fleet flight recorder);
* :mod:`~repro.telemetry.timeseries` — fixed-interval windowed rollups
  of the registry on a bounded ring (the utilization timeline);
* :mod:`~repro.telemetry.profiler` — engine profiler attributing
  events (and wall-clock) to subsystem callback sites.  Armed
  separately via :func:`profiler.install` because it monkeypatches the
  engine rather than hooking message paths.

Use :func:`session` to enable the message-path components::

    with telemetry.session(sample_rate=1.0, seed=7) as t:
        result = run_pingpong(env, a, b)
        print(export.format_breakdown(t.tracer.breakdown()))

The flight recorder is off by default; pass ``flow_sample_rate`` (and
optionally ``rollup_interval_s``) to arm it::

    with telemetry.session(flow_sample_rate=0.01,
                           rollup_interval_s=1e-3) as t:
        ...
        print(export.format_top(t.flows, t.registry))

Outside a session everything is disabled and the instrumentation hooks
cost one module-attribute load per message (see ``bench_telemetry.py``
and ``bench_observability.py`` for the measured overhead).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Optional

from . import events as events_module
from . import flowrecords as flowrecords_module
from . import profiler as profiler_module
from . import registry as registry_module
from . import timeseries as timeseries_module
from . import tracer as tracer_module
from .events import ControlEvent, EventLog
from .flowrecords import FlowRecorder
from .profiler import EngineProfiler
from .registry import Counter, Gauge, Histogram, MetricsRegistry
from .sketches import SpaceSaving
from .timeseries import RollupRecorder
from .tracer import SEGMENT_ORDER, MessageTrace, Tracer

__all__ = [
    "Tracer",
    "MessageTrace",
    "SEGMENT_ORDER",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "EventLog",
    "ControlEvent",
    "SpaceSaving",
    "FlowRecorder",
    "RollupRecorder",
    "EngineProfiler",
    "TelemetrySession",
    "session",
]


@dataclass(frozen=True)
class TelemetrySession:
    """Handles to the active telemetry components.

    ``flows`` and ``rollups`` are None unless the session armed the
    flight recorder (``flow_sample_rate`` / ``rollup_interval_s``).
    """

    tracer: Tracer
    registry: MetricsRegistry
    events: EventLog
    flows: Optional[FlowRecorder] = None
    rollups: Optional[RollupRecorder] = None


@contextmanager
def session(
    sample_rate: float = 1.0,
    seed: int = 0x7E1E,
    max_traces_per_flow: int = 512,
    event_capacity: int = 4096,
    flow_sample_rate: Optional[float] = None,
    flow_top_k: int = 32,
    flow_max_records: int = 256,
    rollup_interval_s: Optional[float] = None,
    rollup_retention: int = 256,
):
    """Enable tracer + registry + event log (and, when asked, the
    flight recorder) for the ``with`` body.

    Restores whatever was active before on exit, so sessions nest and
    tests cannot leak telemetry state into each other.
    """
    previous = (
        tracer_module.ACTIVE,
        registry_module.ACTIVE,
        events_module.ACTIVE,
        flowrecords_module.ACTIVE,
        timeseries_module.ACTIVE,
    )
    registry = MetricsRegistry()
    rollups = None
    if rollup_interval_s is not None:
        rollups = RollupRecorder(registry, interval_s=rollup_interval_s,
                                 retention=rollup_retention)
    flows = None
    if flow_sample_rate is not None:
        flows = FlowRecorder(seed=seed, sample_rate=flow_sample_rate,
                             top_k=flow_top_k,
                             max_records=flow_max_records, rollup=rollups)
    handle = TelemetrySession(
        tracer=Tracer(sample_rate, seed, max_traces_per_flow),
        registry=registry,
        events=EventLog(event_capacity),
        flows=flows,
        rollups=rollups,
    )
    # The recorder's own loss counters ride inside the record: a
    # truncated flight record must say so itself (ring evictions,
    # sampling drops, record-table evictions).
    registry.register_telemetry(tracer=handle.tracer, events=handle.events,
                                flows=flows, rollups=rollups)
    tracer_module.ACTIVE = handle.tracer
    registry_module.ACTIVE = handle.registry
    events_module.ACTIVE = handle.events
    flowrecords_module.ACTIVE = flows
    timeseries_module.ACTIVE = rollups
    try:
        yield handle
    finally:
        (
            tracer_module.ACTIVE,
            registry_module.ACTIVE,
            events_module.ACTIVE,
            flowrecords_module.ACTIVE,
            timeseries_module.ACTIVE,
        ) = previous

"""Unified telemetry for the FreeFlow reproduction (tracing + metrics).

Three cooperating components, each with its own module-level ``ACTIVE``
handle so hot paths can gate on a single pointer compare:

* :mod:`~repro.telemetry.tracer` — span-based flow tracer recording
  per-hop sim-time segments for sampled messages;
* :mod:`~repro.telemetry.registry` — one queryable namespace of
  counters/gauges/histograms over every layer's stats;
* :mod:`~repro.telemetry.events` — structured control-plane event log
  (mechanism decisions, attaches, migrations, failures).

Use :func:`session` to enable all three for a measurement::

    with telemetry.session(sample_rate=1.0, seed=7) as t:
        result = run_pingpong(env, a, b)
        print(export.format_breakdown(t.tracer.breakdown()))

Outside a session everything is disabled and the instrumentation hooks
cost one module-attribute load per message (see ``bench_telemetry.py``
for the measured overhead at 0%/1%/100% sampling).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

from . import events as events_module
from . import registry as registry_module
from . import tracer as tracer_module
from .events import ControlEvent, EventLog
from .registry import Counter, Gauge, Histogram, MetricsRegistry
from .tracer import SEGMENT_ORDER, MessageTrace, Tracer

__all__ = [
    "Tracer",
    "MessageTrace",
    "SEGMENT_ORDER",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "EventLog",
    "ControlEvent",
    "TelemetrySession",
    "session",
]


@dataclass(frozen=True)
class TelemetrySession:
    """Handles to the three active telemetry components."""

    tracer: Tracer
    registry: MetricsRegistry
    events: EventLog


@contextmanager
def session(
    sample_rate: float = 1.0,
    seed: int = 0x7E1E,
    max_traces_per_flow: int = 512,
    event_capacity: int = 4096,
):
    """Enable tracer + registry + event log for the ``with`` body.

    Restores whatever was active before on exit, so sessions nest and
    tests cannot leak telemetry state into each other.
    """
    previous = (
        tracer_module.ACTIVE,
        registry_module.ACTIVE,
        events_module.ACTIVE,
    )
    handle = TelemetrySession(
        tracer=Tracer(sample_rate, seed, max_traces_per_flow),
        registry=MetricsRegistry(),
        events=EventLog(event_capacity),
    )
    tracer_module.ACTIVE = handle.tracer
    registry_module.ACTIVE = handle.registry
    events_module.ACTIVE = handle.events
    try:
        yield handle
    finally:
        (
            tracer_module.ACTIVE,
            registry_module.ACTIVE,
            events_module.ACTIVE,
        ) = previous

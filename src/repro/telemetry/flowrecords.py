"""Flow accounting: heavy hitters + NetFlow-style sampled flow records.

The tracer answers "where did this one message's time go"; this module
answers the fleet question — *which* flows, sources and destinations are
eating the fabric — in O(1) memory per delivery:

* three :class:`~repro.telemetry.sketches.SpaceSaving` sketches rank
  top talkers by bytes per flow, per source host and per destination
  host (every delivery updates them, so the ranking covers *all*
  traffic, not just the sampled slice);
* a NetFlow-style record table keeps full per-flow detail (first/last
  seen, messages, bytes, last flow state) for a *sampled* subset of
  flows.  Sampling is a pure seeded hash of the flow label —
  deterministic for a given seed, no per-flow RNG state to grow.

Hot-path contract (same as tracer/registry/events): disabled costs one
module-attribute load and pointer compare at each hook; armed costs one
bounded-cache lookup plus three sketch updates.  Every container in
here is bounded — sketches by capacity, the record table by
``max_records`` (evictions counted), the label cache by explicit
eviction — which is what simlint SIM009 checks for this package.
"""

from __future__ import annotations

import hashlib
from typing import Optional

from .sketches import SpaceSaving
from .timeseries import RollupRecorder

__all__ = ["ACTIVE", "FlowRecord", "FlowRecorder"]

#: The active flow recorder, or None when flow accounting is disabled.
ACTIVE: Optional["FlowRecorder"] = None


def _hash_unit(seed: int, label: str) -> float:
    """Deterministic uniform [0, 1) from (seed, label) — stateless, so
    the sampling decision needs no per-flow RNG object."""
    digest = hashlib.sha256(f"{seed}:{label}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def _parse_label(label: str) -> tuple[Optional[str], Optional[str]]:
    """Source/destination names from a flow label, if it carries them.

    FlowTable labels look like ``f3:web->db``; connection owners use
    ``web->db``; bare transport labels (``shm/7``, ``tcp-kernel/2``)
    carry no endpoints and map to (None, None).
    """
    _, _, tail = label.rpartition(":")
    src, arrow, dst = tail.partition("->")
    if not arrow or not src or not dst:
        return None, None
    return src, dst


class FlowRecord:
    """One sampled flow's running NetFlow-style accounting."""

    __slots__ = ("flow", "src", "dst", "first_s", "last_s", "messages",
                 "payload_bytes", "state", "transitions")

    def __init__(self, flow: str, src: Optional[str], dst: Optional[str],
                 now: float) -> None:
        self.flow = flow
        self.src = src
        self.dst = dst
        self.first_s = now
        self.last_s = now
        self.messages = 0
        self.payload_bytes = 0
        self.state: Optional[str] = None
        self.transitions = 0

    def as_record(self) -> dict:
        record = {
            "record": "flow",
            "flow": self.flow,
            "src": self.src,
            "dst": self.dst,
            "first_s": self.first_s,
            "last_s": self.last_s,
            "messages": self.messages,
            "payload_bytes": self.payload_bytes,
            "transitions": self.transitions,
        }
        if self.state is not None:
            record["state"] = self.state
        return record


class FlowRecorder:
    """Sketch-ranked top talkers + sampled flow records, all bounded."""

    __slots__ = ("seed", "sample_rate", "max_records", "label_cache",
                 "rollup", "by_flow", "by_src", "by_dst",
                 "messages", "payload_bytes", "unattributed",
                 "records", "record_evictions", "sampled_flows",
                 "verbs_ops", "transition_counts", "_labels")

    def __init__(
        self,
        seed: int = 0x7E1E,
        sample_rate: float = 0.01,
        top_k: int = 32,
        max_records: int = 256,
        label_cache: int = 4096,
        rollup: Optional[RollupRecorder] = None,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample rate must be in [0, 1], got {sample_rate}")
        self.seed = seed
        self.sample_rate = sample_rate
        self.max_records = max_records
        #: Bound on the label->(sampled, src, dst) memo; evicting an
        #: entry never changes a decision (the hash is pure), only
        #: re-derives it.
        self.label_cache = label_cache
        self.rollup = rollup
        self.by_flow = SpaceSaving(top_k)
        self.by_src = SpaceSaving(top_k)
        self.by_dst = SpaceSaving(top_k)
        self.messages = 0
        self.payload_bytes = 0
        #: Deliveries whose label carried no endpoint names.
        self.unattributed = 0
        #: flow label -> FlowRecord for the sampled subset, bounded by
        #: max_records with eldest-first eviction (counted, so a
        #: truncated record table is visible in the artifact).
        self.records: dict[str, FlowRecord] = {}
        self.record_evictions = 0
        self.sampled_flows = 0
        #: verbs opcode -> [ops, bytes] (keyspace = the Opcode enum).
        self.verbs_ops: dict[str, list] = {}
        #: "old->new" -> count (keyspace = legal FlowState transitions).
        self.transition_counts: dict[str, int] = {}
        self._labels: dict[str, tuple] = {}

    # -- hot-path hooks ----------------------------------------------------

    def _label_info(self, label: str) -> tuple:
        info = self._labels.get(label)
        if info is None:
            sampled = (self.sample_rate > 0.0
                       and _hash_unit(self.seed, label) < self.sample_rate)
            src, dst = _parse_label(label)
            if len(self._labels) >= self.label_cache:
                self._labels.pop(next(iter(self._labels)))
            info = self._labels[label] = (sampled, src, dst)
        return info

    def on_deliver(self, label: str, nbytes: int, now: float) -> None:
        """Per-delivery accounting; called from every transport's
        delivery point (Lane.deliver and the kernel TCP rx path)."""
        self.messages += 1
        self.payload_bytes += nbytes
        sampled, src, dst = self._label_info(label)
        self.by_flow.update(label, float(nbytes))
        if src is not None:
            self.by_src.update(src, float(nbytes))
            self.by_dst.update(dst, float(nbytes))
        else:
            self.unattributed += 1
        if sampled:
            record = self.records.get(label)
            if record is None:
                record = self._open_record(label, src, dst, now)
            record.messages += 1
            record.payload_bytes += nbytes
            record.last_s = now
        rollup = self.rollup
        if rollup is not None:
            rollup.maybe_roll(now)

    def _open_record(self, label: str, src, dst, now: float) -> FlowRecord:
        if len(self.records) >= self.max_records:
            self.records.pop(next(iter(self.records)))
            self.record_evictions += 1
        record = self.records[label] = FlowRecord(label, src, dst, now)
        self.sampled_flows += 1
        return record

    def on_verbs(self, opcode: str, nbytes: int) -> None:
        """Per-work-request accounting from the vNIC issue path."""
        entry = self.verbs_ops.get(opcode)
        if entry is None:
            # Keyspace is the verbs Opcode enum — a handful of values.
            # simlint: disable=SIM009
            entry = self.verbs_ops[opcode] = [0, 0]
        entry[0] += 1
        entry[1] += nbytes

    def on_transition(self, flow: str, old: str, new: str,
                      now: float) -> None:
        """Flow-state transition accounting from FlowTable.transition."""
        key = f"{old}->{new}"
        # Keyspace is the set of legal FlowState transition pairs.
        # simlint: disable=SIM009
        self.transition_counts[key] = self.transition_counts.get(key, 0) + 1
        record = self.records.get(flow)
        if record is not None:
            record.state = new
            record.transitions += 1
            record.last_s = now

    # -- queries ----------------------------------------------------------

    def top(self, dimension: str = "flow", n: int = 10) -> list[tuple]:
        sketch = {"flow": self.by_flow, "src": self.by_src,
                  "dst": self.by_dst}.get(dimension)
        if sketch is None:
            raise ValueError(f"unknown top dimension {dimension!r}; "
                             f"use 'flow', 'src' or 'dst'")
        return sketch.top(n)

    def flow_records(self) -> list[dict]:
        """Sampled flow records, sorted by flow label (deterministic)."""
        return [self.records[label].as_record()
                for label in sorted(self.records)]

    def state_size(self) -> int:
        """Total retained entries — the RSS proxy the bounded-memory
        bench holds flat while the offered flow count grows 10x."""
        return (self.by_flow.state_size() + self.by_src.state_size()
                + self.by_dst.state_size() + len(self.records)
                + len(self._labels) + len(self.verbs_ops)
                + len(self.transition_counts))

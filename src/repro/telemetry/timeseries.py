"""Windowed rollups: a bounded utilization timeline over the registry.

The :class:`~repro.telemetry.registry.MetricsRegistry` answers "what is
the value *now*"; a long run therefore ends with one number per metric
and no way to ask "when did the fabric saturate".  The rollup recorder
closes that gap: every ``interval_s`` of *sim* time it snapshots the
registry's scalars (counters, gauges, and histogram counts) into a
window, and keeps the last ``retention`` windows on a ring.  Memory is
O(retention x metrics) no matter how long the run is; dropped windows
are counted in :attr:`RollupRecorder.evicted` so a truncated timeline
is visible in the record itself.

The recorder has no clock of its own — sim code drives it by calling
:meth:`maybe_roll` with the current sim time.  The flow recorder calls
it from its delivery hook (one float compare per message when armed),
and long quiet stretches are filled in lazily: ``maybe_roll`` emits
every elapsed window boundary, carrying the last snapshot forward, so
the timeline has a row per interval even when no message moved.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from .registry import MetricsRegistry

__all__ = ["ACTIVE", "RollupRecorder"]

#: The active rollup recorder, or None when rollups are disabled.
ACTIVE: Optional["RollupRecorder"] = None

#: Cap on boundaries emitted per catch-up so a single maybe_roll after a
#: very long quiet stretch cannot stall the run filling gap windows.
MAX_GAP_WINDOWS = 64


class RollupRecorder:
    """Fixed-interval registry snapshots on a bounded ring."""

    __slots__ = ("registry", "interval_s", "retention", "windows",
                 "evicted", "gap_windows", "_next_boundary")

    def __init__(
        self,
        registry: MetricsRegistry,
        interval_s: float = 1e-3,
        retention: int = 256,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"rollup interval must be positive, got {interval_s}")
        if retention <= 0:
            raise ValueError(f"rollup retention must be positive, got {retention}")
        self.registry = registry
        self.interval_s = interval_s
        self.retention = retention
        #: Ring of ``{"t_s": boundary, "metrics": {name: float}}`` dicts.
        self.windows: deque = deque(maxlen=retention)
        #: Windows pushed off the ring (timeline truncation, satellite of
        #: the "flight record must show its own truncation" rule).
        self.evicted = 0
        #: Boundaries synthesised with a carried-forward snapshot.
        self.gap_windows = 0
        self._next_boundary = interval_s

    def _scalars(self) -> dict[str, float]:
        """Registry snapshot flattened to floats (histograms -> count)."""
        out: dict[str, float] = {}
        for name, value in self.registry.snapshot().items():
            if isinstance(value, dict):
                out[name] = float(value.get("count", 0.0))
            else:
                out[name] = float(value)
        return out

    def maybe_roll(self, now: float) -> None:
        """Roll every boundary that has elapsed by sim time ``now``."""
        if now < self._next_boundary:
            return
        self.roll(now)

    def roll(self, now: float) -> None:
        """Unconditionally emit all boundaries up to ``now``."""
        metrics = self._scalars()
        emitted = 0
        while self._next_boundary <= now:
            if len(self.windows) == self.retention:
                self.evicted += 1
            self.windows.append(
                {"t_s": self._next_boundary, "metrics": metrics}
            )
            self._next_boundary += self.interval_s
            emitted += 1
            if emitted > 1:
                self.gap_windows += 1
            if emitted >= MAX_GAP_WINDOWS:
                # Skip the remainder of a pathological gap in one jump;
                # the jump itself is visible as a hole in the t_s column.
                intervals = int((now - self._next_boundary)
                                / self.interval_s) + 1
                if intervals > 0:
                    self._next_boundary += intervals * self.interval_s
                break

    def flush(self, now: float) -> None:
        """Close the timeline: emit a final window at ``now`` if anything
        happened since the last boundary."""
        if not self.windows or self.windows[-1]["t_s"] < now:
            if len(self.windows) == self.retention:
                self.evicted += 1
            self.windows.append({"t_s": now, "metrics": self._scalars()})
            while self._next_boundary <= now:
                self._next_boundary += self.interval_s

    # -- queries ----------------------------------------------------------

    def series(self, name: str) -> list[tuple[float, float]]:
        """``(t_s, value)`` timeline of one metric (missing -> 0.0)."""
        return [
            (window["t_s"], window["metrics"].get(name, 0.0))
            for window in self.windows
        ]

    def names(self) -> list[str]:
        """Every metric name appearing in any retained window, sorted."""
        seen: set[str] = set()
        for window in self.windows:
            seen.update(window["metrics"])
        return sorted(seen)

    def rate_series(self, name: str) -> list[tuple[float, float]]:
        """Per-second first differences of a (counter-like) metric."""
        out = []
        previous_t = 0.0
        previous_v = 0.0
        for t, value in self.series(name):
            dt = t - previous_t
            if dt > 0:
                out.append((t, (value - previous_v) / dt))
            previous_t, previous_v = t, value
        return out

    def state_size(self) -> int:
        """Retained cells — the RSS proxy the bounded-memory bench checks."""
        return sum(len(window["metrics"]) + 1 for window in self.windows)

"""Engine profiler: wall-clock + event counts per subsystem callback site.

ROADMAP item 1 (the ~1M ev/s ceiling) needs to know *where* engine time
goes before anything can be tuned; ``Environment.events_processed`` says
how many events ran, not which subsystem ran them.  This profiler
attributes every event to the code site of its callback — for process
resumes, the *process generator's* code object, which is what names the
subsystem (``netstack/tcp.py:_rx_worker``, ``core/vnic.py:_sq_loop``,
…) rather than the engine-internal trampoline.

Install/uninstall mirrors :mod:`repro.analysis.sanitizer`: the engine's
``step``/``run`` are swapped for wrappers, and ``run``'s inlined drain
loop is re-routed through ``step()`` so every event passes the wrapper.
The un-armed engine is untouched — zero cost when not profiling.  The
profiler composes with the sanitizer (either order of install works;
uninstall in LIFO order) because each saves and restores whatever
``step``/``run`` it found.

Determinism: event counts and shares are a pure function of the
simulation and appear in the deterministic report artifact; wall-clock
seconds obviously are not, and are exported separately
(:meth:`EngineProfiler.wall_records`).  This module is the one
sanctioned ``perf_counter`` user inside ``src/repro`` — it is on
simlint SIM001's allowlist for exactly this purpose.
"""

from __future__ import annotations

from time import perf_counter
from typing import Optional

from ..sim.events import NO_CALLBACKS

__all__ = ["ACTIVE", "EngineProfiler", "install", "uninstall", "installed"]

#: The active profiler, or None when profiling is disabled.
ACTIVE: Optional["EngineProfiler"] = None


def _short_path(filename: str) -> str:
    """Anchor a code filename at the repo package (like display_path)."""
    parts = filename.replace("\\", "/").split("/")
    for anchor in ("repro", "tests", "benchmarks"):
        if anchor in parts:
            return "/".join(parts[parts.index(anchor):])
    return parts[-1]


class EngineProfiler:
    """Per-callback-site event counts and wall-clock attribution."""

    __slots__ = ("sites", "events_total", "wall_total_s", "_code_labels")

    def __init__(self) -> None:
        #: site label -> [events, wall_seconds].  Keyspace is bounded by
        #: the program text (one entry per callback code site).
        self.sites: dict[str, list] = {}
        self.events_total = 0
        self.wall_total_s = 0.0
        self._code_labels: dict[int, str] = {}

    # -- attribution -------------------------------------------------------

    def _label_for_code(self, code) -> str:
        label = self._code_labels.get(id(code))
        if label is None:
            qualname = getattr(code, "co_qualname", code.co_name)
            label = f"{_short_path(code.co_filename)}:{qualname}"
            # Keyspace is the program's code objects — static text.
            # simlint: disable=SIM009
            self._code_labels[id(code)] = label
        return label

    def site_of(self, event) -> str:
        """Code-site label for one event's callback(s)."""
        callbacks = event._callbacks
        if type(callbacks) is list:
            callback = callbacks[0] if callbacks else None
        elif callbacks is NO_CALLBACKS:
            callback = None
        else:
            callback = callbacks
        if callback is None:
            return "(engine) no-callback"
        # A process resume: attribute to the generator actually running,
        # not the Process._step trampoline every resume shares.
        owner = getattr(callback, "__self__", None)
        generator = getattr(owner, "_generator", None)
        if generator is not None and hasattr(generator, "gi_code"):
            return self._label_for_code(generator.gi_code)
        code = getattr(callback, "__code__", None)
        if code is not None:
            return self._label_for_code(code)
        return type(callback).__qualname__

    def record(self, site: str, wall_s: float) -> None:
        entry = self.sites.get(site)
        if entry is None:
            # Keyspace is the set of callback sites — static text.
            # simlint: disable=SIM009
            entry = self.sites[site] = [0, 0.0]
        entry[0] += 1
        entry[1] += wall_s
        self.events_total += 1
        self.wall_total_s += wall_s

    # -- queries -----------------------------------------------------------

    def records(self) -> list[dict]:
        """Deterministic attribution: events + share per site, ranked.

        Wall-clock is deliberately excluded so the report artifact stays
        byte-identical for a given seed; see :meth:`wall_records`.
        """
        total = self.events_total or 1
        ranked = sorted(self.sites.items(),
                        key=lambda item: (-item[1][0], item[0]))
        return [
            {
                "record": "profile",
                "site": site,
                "events": entry[0],
                "event_share_pct": round(100.0 * entry[0] / total, 3),
            }
            for site, entry in ranked
        ]

    def wall_records(self) -> list[dict]:
        """Wall-clock attribution per site (not deterministic)."""
        total = self.wall_total_s or 1.0
        ranked = sorted(self.sites.items(),
                        key=lambda item: (-item[1][1], item[0]))
        return [
            {
                "site": site,
                "events": entry[0],
                "wall_s": entry[1],
                "wall_share_pct": 100.0 * entry[1] / total,
            }
            for site, entry in ranked
        ]

    def state_size(self) -> int:
        return len(self.sites) + len(self._code_labels)


# -- engine instrumentation (sanitizer-style monkeypatch) -------------------


class _State:
    __slots__ = ("orig_step", "orig_run")

    def __init__(self, orig_step, orig_run) -> None:
        self.orig_step = orig_step
        self.orig_run = orig_run


_state: Optional[_State] = None


def installed() -> bool:
    return _state is not None


def _peek_event(env):
    """Front event of the globally sorted merge of the three queues."""
    best = None
    if env._ready:
        best = env._ready[0]
    if env._tail and (best is None or env._tail[0] < best):
        best = env._tail[0]
    if env._queue and (best is None or env._queue[0] < best):
        best = env._queue[0]
    return best[3] if best is not None else None


def _profiled_step(self) -> None:
    profiler = ACTIVE
    if profiler is None:
        _state.orig_step(self)
        return
    event = _peek_event(self)
    if event is None:
        # Let the original raise EmptySchedule with its own message.
        _state.orig_step(self)
        return
    site = profiler.site_of(event)
    started = perf_counter()
    try:
        _state.orig_step(self)
    finally:
        profiler.record(site, perf_counter() - started)


def _profiled_run(self, until=None):
    """Re-route run()'s inlined drain loop through (profiled) step().

    Mirrors the sanitizer's wrapper: the numeric-``until`` path already
    calls ``self.step()`` per event, so it is delegated unchanged.
    """
    from ..sim.events import Event
    from ..sim.scheduler import StopSimulation

    if until is not None and not isinstance(until, Event):
        return _state.orig_run(self, until)

    stop_event = None
    if until is not None:
        stop_event = until
        if stop_event.processed:
            if stop_event._ok:
                return stop_event._value
            raise stop_event._value
        stop_event._add_callback(self._stop_on)

    try:
        while self._ready or self._tail or self._queue:
            self.step()
    except StopSimulation as stop:
        event = stop.args[0]
        if event._ok:
            return event._value
        raise event._value from None

    if stop_event is not None:
        if not stop_event.processed:
            raise RuntimeError(
                "simulation ran out of events before `until` event "
                "triggered"
            )
        if stop_event._ok:
            return stop_event._value
        raise stop_event._value
    return None


def install(profiler: Optional[EngineProfiler] = None) -> EngineProfiler:
    """Arm the profiler (idempotent; returns the active profiler)."""
    global ACTIVE, _state
    if _state is not None:
        if profiler is not None:
            ACTIVE = profiler
        return ACTIVE
    from ..sim.scheduler import Environment

    ACTIVE = profiler if profiler is not None else EngineProfiler()
    _state = _State(Environment.step, Environment.run)
    Environment.step = _profiled_step
    Environment.run = _profiled_run
    return ACTIVE


def uninstall() -> Optional[EngineProfiler]:
    """Restore the engine fast paths; returns the profiler for reading."""
    global ACTIVE, _state
    if _state is None:
        return None
    from ..sim.scheduler import Environment

    Environment.step = _state.orig_step
    Environment.run = _state.orig_run
    _state = None
    profiler, ACTIVE = ACTIVE, None
    return profiler

"""Flight-recorder CLI: ``python -m repro top`` and ``... report``.

``top`` runs a chaos scenario (default: ``host-crash-storm``) with the
flight recorder armed and renders the live top-talkers / link-
utilisation / flow-state screen every rollup interval — the fleet
operator's view of a failure storm.

``report`` builds a fleet (N hosts, two containers each), opens F flows
with a heavy-tailed traffic split, and writes the full flight-record
artifact as JSON-lines: rollup timeline, heavy hitters per dimension,
sampled flow records, control-plane events, registry snapshot and the
engine profiler's deterministic per-site attribution.  The artifact is
a pure function of the seed — same seed, byte-identical output — which
CI checks by diffing two runs.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from ..sim.rand import RandomStream
from . import export
from . import profiler as profiler_module
from . import session as telemetry_session

__all__ = ["top_main", "report_main"]

#: The first ``ELEPHANTS`` flows of the report workload send
#: ``ELEPHANT_BYTES / (rank + 1)`` bytes (a Zipf head); every other flow
#: sends exactly one tail message.  The split keeps the true top-10 well
#: above the Space-Saving error bound at the default sketch capacity, so
#: the sketch's top-10 provably matches ground truth.
ELEPHANTS = 16
ELEPHANT_MESSAGES = 2048
TAIL_BYTES = 1024


# -- python -m repro top -----------------------------------------------------


def top_main(argv=None) -> int:
    """Live top view over a chaos scenario."""
    parser = argparse.ArgumentParser(
        prog="python -m repro top",
        description="live top-talkers view over a chaos scenario",
    )
    parser.add_argument("--scenario", default="host-crash-storm",
                        help="chaos scenario to run (default: "
                             "host-crash-storm)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--interval-s", type=float, default=5e-4,
                        help="sim-time refresh interval (default 0.5 ms)")
    parser.add_argument("--n", type=int, default=10,
                        help="rows per top table")
    parser.add_argument("--no-clear", action="store_true",
                        help="print frames sequentially instead of "
                             "clearing the screen")
    args = parser.parse_args(argv)

    from ..chaos.runner import EVENT_CAPACITY, ChaosHarness
    from ..chaos.scenarios import get

    scenario = get(args.scenario)
    clear = sys.stdout.isatty() and not args.no_clear
    frames = {"n": 0}

    with telemetry_session(sample_rate=0.0,
                           event_capacity=EVENT_CAPACITY,
                           flow_sample_rate=1.0,
                           rollup_interval_s=args.interval_s) as handle:
        harness = ChaosHarness(scenario, seed=args.seed)
        env = harness.env

        def render():
            frames["n"] += 1
            frame = export.format_top(handle.flows, handle.registry,
                                      n=args.n, now_s=env.now)
            if clear:
                sys.stdout.write("\x1b[2J\x1b[H")
            else:
                print(f"--- frame {frames['n']} "
                      f"[{scenario.name}] ---")
            print(frame)
            sys.stdout.flush()

        def render_loop():
            while True:
                yield env.timeout(args.interval_s)
                render()

        try:
            harness.build()
            env.process(render_loop())
            env.run(until=env.process(harness.timeline()))
        finally:
            harness.teardown()
        handle.rollups.flush(env.now)
        render()
        print(f"[top] scenario {scenario.name!r} done at "
              f"t={env.now * 1e3:.3f} ms: "
              f"{handle.flows.messages} deliveries, "
              f"{len(handle.events.events)} control events, "
              f"{frames['n']} frames")
    return 0


# -- python -m repro report --------------------------------------------------


def _flow_plan(index: int, rng: RandomStream,
               message_bytes: int) -> tuple[int, int]:
    """(messages, bytes_per_message) for flow ``index``.

    Deterministic given (index, stream state): the Zipf head gets
    ``ELEPHANT_MESSAGES // (index + 1)`` messages, the tail one message
    with a small jittered size so flows are not all byte-identical.
    """
    if index < ELEPHANTS:
        return max(1, ELEPHANT_MESSAGES // (index + 1)), message_bytes
    return 1, TAIL_BYTES + 16 * rng.randint(0, 15)


def build_report_fleet(hosts: int, flows: int, seed: int,
                       message_bytes: int = 4096):
    """The report workload: fleet, flow list and per-flow traffic plan.

    Returns ``(env, cluster, network, plan)`` where ``plan`` is a list
    of ``(src, dst, messages, bytes_per_message)`` tuples (one per
    flow, endpoints are container names).  Split out of the CLI so the
    benchmark and tests can reuse the exact workload.
    """
    from .. import ContainerSpec, quickstart_cluster

    env, cluster, network = quickstart_cluster(hosts=hosts)
    names = []
    for index in range(2 * hosts):
        name = f"c{index}"
        container = cluster.submit(
            ContainerSpec(name, pinned_host=f"host{index // 2}")
        )
        network.attach(container)
        names.append(name)
    rng = RandomStream(seed, name="report.workload")
    plan = []
    for index in range(flows):
        src = rng.choice(names)
        dst = rng.choice(names)
        while dst == src:
            dst = rng.choice(names)
        messages, nbytes = _flow_plan(index, rng, message_bytes)
        plan.append((src, dst, messages, nbytes))
    return env, cluster, network, plan


def run_report_workload(env, network, plan) -> dict:
    """Drive the plan to completion; returns exact per-flow ground truth
    (flow_id -> total payload bytes)."""
    opened = []

    def wire():
        for src, dst, messages, nbytes in plan:
            connection = yield from network.connect_containers(src, dst)
            opened.append(connection)

    env.run(until=env.process(wire()))

    progress = {"received": 0}
    expected = sum(messages for _, _, messages, _ in plan)
    truth = {}

    def sender(connection, messages, nbytes):
        for _ in range(messages):
            yield from connection.a.send(nbytes)

    def receiver(connection, messages):
        for _ in range(messages):
            yield from connection.b.recv()
            progress["received"] += 1

    for connection, (_, _, messages, nbytes) in zip(opened, plan):
        truth[connection.flow_id] = float(messages * nbytes)
        env.process(sender(connection, messages, nbytes))
        env.process(receiver(connection, messages))

    def supervise():
        while progress["received"] < expected:
            yield env.timeout(1e-4)

    env.run(until=env.process(supervise()))
    return truth


def report_main(argv=None) -> int:
    """Write the flight-record artifact for a synthetic fleet run."""
    parser = argparse.ArgumentParser(
        prog="python -m repro report",
        description="flight-record artifact (JSON-lines) for a "
                    "deterministic fleet workload",
    )
    parser.add_argument("--hosts", type=int, default=64)
    parser.add_argument("--flows", type=int, default=5000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--message-bytes", type=int, default=4096)
    parser.add_argument("--sample-rate", type=float, default=0.01,
                        help="flow-record sampling rate (default 1%%)")
    parser.add_argument("--rollup-interval-s", type=float, default=2e-4)
    parser.add_argument("--top", type=int, default=10)
    parser.add_argument("--top-k", type=int, default=128,
                        help="Space-Saving sketch capacity")
    parser.add_argument("--out", default="-",
                        help="artifact path ('-' = stdout)")
    parser.add_argument("--no-profile", action="store_true",
                        help="skip the engine profiler")
    parser.add_argument("--check", action="store_true",
                        help="verify the sketch top-10 against exact "
                             "ground truth (exit 1 on mismatch)")
    args = parser.parse_args(argv)

    profiler: Optional[profiler_module.EngineProfiler] = None
    with telemetry_session(sample_rate=0.0,
                           event_capacity=65536,
                           flow_sample_rate=args.sample_rate,
                           flow_top_k=args.top_k,
                           seed=args.seed,
                           rollup_interval_s=args.rollup_interval_s) as handle:
        env, cluster, network, plan = build_report_fleet(
            args.hosts, args.flows, args.seed,
            message_bytes=args.message_bytes,
        )
        if not args.no_profile:
            profiler = profiler_module.EngineProfiler()
            profiler_module.install(profiler)
        try:
            truth = run_report_workload(env, network, plan)
        finally:
            if profiler is not None:
                profiler_module.uninstall()
        handle.rollups.flush(env.now)
        records = export.report_records(handle, profiler=profiler,
                                        top_n=args.top)
        payload = export.jsonl(records) + "\n"
        if args.out == "-":
            sys.stdout.write(payload)
        else:
            from pathlib import Path

            Path(args.out).write_text(payload)
            print(f"[report] wrote {len(records)} records to {args.out} "
                  f"({handle.flows.messages} deliveries, "
                  f"t={env.now * 1e3:.3f} ms)")
        if args.check:
            want = [key for key, _ in sorted(
                truth.items(), key=lambda kv: (-kv[1], kv[0])
            )[:args.top]]
            got = [key for key, _, _ in handle.flows.top("flow", args.top)]
            if got != want:
                print(f"[report] top-{args.top} mismatch:\n"
                      f"  sketch: {got}\n  truth:  {want}",
                      file=sys.stderr)
                return 1
            print(f"[report] sketch top-{args.top} matches exact "
                  f"ground truth", file=sys.stderr)
    return 0

"""MetricsRegistry: one queryable namespace for every counter in the sim.

Before this module, every layer kept its own ad-hoc stats object
(``LaneStats``, ``TcpStats``, ``AgentStats``, per-host utilisation
recorders, orchestrator query counters, …) and each benchmark hand-picked
the ones it knew about.  The registry gives them all one namespace::

    repro.lane.shm.messages_delivered     (gauge, reads LaneStats)
    repro.lane.rdma.latency_s             (histogram view over lanes)
    repro.host.h0.cpu_pct                 (gauge, reads CpuSet)
    repro.orchestrator.cache_hits         (gauge, reads FreeFlowNetwork)
    repro.socket.bytes_sent               (counter, socket layer bumps it)
    repro.bench.pingpong.latency_s        (histogram, run_pingpong feeds it)

Two integration styles, chosen for hot-path cost:

* **Pull (gauges / series views)** — lanes, hosts and control-plane
  objects register a *closure* once at construction; the registry reads
  it lazily at :meth:`MetricsRegistry.snapshot` time.  Zero per-message
  cost, which is why the existing stats objects stay where they are and
  the registry becomes the query layer over them.
* **Push (counters / histograms)** — translation layers (sockets, MPI)
  and the measurement harness bump counters explicitly; these sites are
  per-call, not per-byte, and every helper no-ops in one compare when
  the registry is disabled (``ACTIVE is None``).

Histograms are backed by :class:`repro.sim.monitor.StreamingSeries`, so
a metric fed millions of samples stays O(1) memory.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from ..sim.monitor import StreamingSeries

__all__ = [
    "ACTIVE",
    "KNOWN_FAMILIES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "enable",
    "disable",
    "counter_inc",
    "histogram_observe",
    "host_utilisation",
]

#: The currently active registry, or None when metrics are disabled.
ACTIVE: Optional["MetricsRegistry"] = None

#: Metric families bumped from *outside* this module (push-style call
#: sites: socket/MPI translation layers, the vNIC, the bench harness).
#: The pull-style families (``repro.lane``, ``repro.host``,
#: ``repro.orchestrator``, ``repro.flows``) are implied by the
#: ``register_*`` methods below.  simlint's SIM005 rule cross-checks
#: every metric-name literal in the tree against the union of both, so
#: a typo'd namespace ("repro.sokcet.sends") fails the lint gate instead
#: of silently minting a new family.
KNOWN_FAMILIES = (
    "repro.bench",
    "repro.chaos",
    "repro.cluster",
    "repro.fabric",
    "repro.mpi",
    "repro.socket",
    "repro.telemetry",
    "repro.verbs",
    "repro.vnic",
)


def _host_readers(host) -> tuple:
    """The per-host utilisation readers, defined once.

    :meth:`MetricsRegistry.register_host` builds its gauges from this
    table and :func:`host_utilisation` evaluates it directly, so the
    bench harness and the registry can never disagree about what
    "host utilisation" means (they used to duplicate these reads).
    """
    return (
        ("cpu_pct", host.cpu.utilisation_percent),
        ("nic_engine_util", host.nic.engine_utilisation),
        ("link_util", host.nic.link_utilisation),
        ("membus_util", host.memory.pipe.utilisation),
    )


def host_utilisation(host) -> dict[str, float]:
    """One host's utilisation snapshot: suffix -> value (floats)."""
    return {suffix: float(reader()) for suffix, reader in _host_readers(host)}


class Counter:
    """Monotonically increasing value (calls, bytes, cache hits)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount


class Gauge:
    """Point-in-time value: either set explicitly or read from a closure."""

    __slots__ = ("name", "_value", "_fn")

    def __init__(self, name: str, fn: Optional[Callable[[], float]] = None):
        self.name = name
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise ValueError(f"gauge {self.name} is callback-backed")
        self._value = float(value)

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._value


class Histogram:
    """Distribution metric backed by a bounded StreamingSeries."""

    __slots__ = ("name", "series")

    def __init__(
        self,
        name: str,
        reservoir: int = StreamingSeries.DEFAULT_RESERVOIR,
        series: Optional[StreamingSeries] = None,
    ) -> None:
        self.name = name
        self.series = series if series is not None else StreamingSeries(
            reservoir=reservoir
        )

    def observe(self, sample: float) -> None:
        self.series.add(sample)

    def summary(self) -> dict[str, float]:
        if not len(self.series):
            return {"count": 0.0}
        return self.series.summary()


def _merged_summary(series_list: Iterable[StreamingSeries]) -> dict:
    """Summary over several StreamingSeries without merging their state.

    Count/sum/min/max combine exactly; percentiles come from the
    concatenated reservoirs (each a uniform sample of its stream —
    the union is only approximately uniform when stream sizes differ,
    which is fine for a breakdown table).
    """
    populated = [s for s in series_list if len(s)]
    if not populated:
        return {"count": 0.0}
    count = sum(s.count for s in populated)
    total = sum(s.total() for s in populated)
    merged = StreamingSeries()
    for series in populated:
        merged.extend(series.samples)
    return {
        "count": float(count),
        "mean": total / count,
        "min": min(s.minimum() for s in populated),
        "p50": merged.percentile(50),
        "p99": merged.percentile(99),
        "max": max(s.maximum() for s in populated),
    }


class MetricsRegistry:
    """Named counters, gauges and histograms with a dotted namespace."""

    def __init__(self) -> None:
        self._metrics: dict[str, object] = {}
        #: mechanism key -> list of lane-stats objects (pull aggregation)
        self._lane_stats: dict[str, list] = {}
        #: metric name -> list of StreamingSeries summarised at snapshot
        self._series_views: dict[str, list] = {}

    # -- metric creation (get-or-create, type-checked) --------------------

    def _get(self, name: str, kind: type):
        metric = self._metrics.get(name)
        if metric is not None:
            if type(metric) is not kind:
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {kind.__name__}"
                )
            return metric
        return None

    def counter(self, name: str) -> Counter:
        metric = self._get(name, Counter)
        if metric is None:
            # Keyspace is the dotted metric namespace — fixed by the
            # instrumentation sites in the program text (SIM005 audits
            # every name), not by traffic volume.
            # simlint: disable=SIM009
            metric = self._metrics[name] = Counter(name)
        return metric

    def gauge(
        self, name: str, fn: Optional[Callable[[], float]] = None
    ) -> Gauge:
        metric = self._get(name, Gauge)
        if metric is None:
            # Same bounded metric namespace as counter() above.
            # simlint: disable=SIM009
            metric = self._metrics[name] = Gauge(name, fn)
        return metric

    def histogram(
        self,
        name: str,
        reservoir: int = StreamingSeries.DEFAULT_RESERVOIR,
        series: Optional[StreamingSeries] = None,
    ) -> Histogram:
        metric = self._get(name, Histogram)
        if metric is None:
            # Same bounded metric namespace as counter() above.
            # simlint: disable=SIM009
            metric = self._metrics[name] = Histogram(name, reservoir, series)
        return metric

    # -- pull-style registration ------------------------------------------

    def register_lane(self, lane) -> None:
        """Publish one transport lane's stats under its mechanism.

        Aggregates across all lanes of the mechanism; the gauges read the
        live stats objects, so there is no per-delivery cost at all.
        """
        mechanism = getattr(lane, "mechanism", None)
        key = getattr(mechanism, "value", None) or str(mechanism)
        # Keyspace is the Mechanism enum (shm/rdma/dpdk/tcp/...).
        # simlint: disable=SIM009
        bucket = self._lane_stats.setdefault(key, [])
        bucket.append(lane.stats)
        if len(bucket) > 1:
            return
        prefix = f"repro.lane.{key}"
        self.gauge(f"{prefix}.lanes", fn=lambda b=bucket: float(len(b)))
        self.gauge(
            f"{prefix}.messages_sent",
            fn=lambda b=bucket: float(sum(s.messages_sent for s in b)),
        )
        self.gauge(
            f"{prefix}.messages_delivered",
            fn=lambda b=bucket: float(sum(s.messages_delivered for s in b)),
        )
        self.gauge(
            f"{prefix}.payload_bytes",
            fn=lambda b=bucket: float(sum(s.payload_bytes for s in b)),
        )
        # One view per mechanism — same enum-bounded keyspace.
        # simlint: disable=SIM009
        self._series_views[f"{prefix}.latency_s"] = bucket

    def register_host(self, host) -> None:
        """Publish one host's utilisation gauges (CPU, NIC, memory bus)."""
        prefix = f"repro.host.{host.name}"
        if f"{prefix}.cpu_pct" in self._metrics:
            return
        for suffix, reader in _host_readers(host):
            self.gauge(f"{prefix}.{suffix}", fn=reader)

    def register_network(self, network) -> None:
        """Publish a FreeFlowNetwork's control-plane gauges."""
        prefix = "repro.orchestrator"
        if f"{prefix}.cache_hits" in self._metrics:
            return
        self.gauge(f"{prefix}.cache_hits",
                   fn=lambda n=network: float(n.cache_hits))
        self.gauge(f"{prefix}.cache_misses",
                   fn=lambda n=network: float(n.cache_misses))
        self.gauge(f"{prefix}.queries_served",
                   fn=lambda n=network: float(n.orchestrator.queries_served))
        self.gauge(f"{prefix}.connections",
                   fn=lambda n=network: float(len(n.connections)))
        table = getattr(network, "flows", None)
        if table is not None:
            from ..core.flows import FlowState

            flows = "repro.flows"
            self.gauge(f"{flows}.open", fn=lambda t=table: float(len(t)))
            self.gauge(
                f"{flows}.active",
                fn=lambda t=table: float(t.count(FlowState.ACTIVE)),
            )
            self.gauge(
                f"{flows}.broken",
                fn=lambda t=table: float(t.count(FlowState.BROKEN)),
            )
            self.gauge(f"{flows}.closed_total",
                       fn=lambda t=table: float(t.closed_total))
            self.gauge(f"{flows}.transitions",
                       fn=lambda t=table: float(t.transitions))

    def register_fabric(self, fabric) -> None:
        """Publish the physical fabric's gauges (attached NICs, shared
        core-pipe utilisation in two-tier mode, active partitions; on a
        fat-tree also link counts, selector state and per-tier link
        utilisation rollups)."""
        prefix = "repro.fabric"
        if f"{prefix}.nics" in self._metrics:
            return
        self.gauge(f"{prefix}.nics",
                   fn=lambda f=fabric: float(len(f.nics)))
        self.gauge(f"{prefix}.partitions",
                   fn=lambda f=fabric: float(len(f._partitions)))
        self.gauge(
            f"{prefix}.core_util",
            fn=lambda f=fabric: (float(f.core.utilisation())
                                 if f.core is not None else 0.0),
        )
        topology = getattr(fabric, "topology", None)
        if topology is None:
            return
        self.gauge(f"{prefix}.links",
                   fn=lambda t=topology: float(len(t.links())))
        self.gauge(f"{prefix}.links_down",
                   fn=lambda t=topology: float(len(t.down_links())))
        selector = fabric.selector
        self.gauge(f"{prefix}.flows_tracked",
                   fn=lambda s=selector: float(s.flow_count()))
        self.gauge(f"{prefix}.rehashes",
                   fn=lambda s=selector: float(s.rehashes))
        self.gauge(f"{prefix}.detours",
                   fn=lambda s=selector: float(s.detours))
        self.gauge(f"{prefix}.reorders_seen",
                   fn=lambda f=fabric: float(f.tracer.reorders))
        # One gauge per link tier ("edge-agg", "agg-core"): a fixed
        # two-entry keyspace set by the topology model, not by traffic.
        for tier in ("edge-agg", "agg-core"):
            self.gauge(
                f"{prefix}.util.{tier}",
                fn=lambda t=topology, tier=tier: float(
                    t.tier_utilisation()[tier]
                ),
            )

    def register_cluster(self, orchestrator) -> None:
        """Publish fleet-level lifecycle gauges for a ClusterOrchestrator."""
        prefix = "repro.cluster"
        if f"{prefix}.hosts" in self._metrics:
            return
        self.gauge(f"{prefix}.hosts",
                   fn=lambda o=orchestrator: float(len(o._hosts)))
        self.gauge(f"{prefix}.hosts_down",
                   fn=lambda o=orchestrator: float(len(o._down_hosts)))
        self.gauge(f"{prefix}.vms",
                   fn=lambda o=orchestrator: float(len(o._vms)))
        self.gauge(f"{prefix}.containers",
                   fn=lambda o=orchestrator: float(len(o._containers)))

    def register_telemetry(self, tracer=None, events=None, flows=None,
                           rollups=None) -> None:
        """Publish the flight recorder's *own* loss counters as gauges.

        A bounded recorder necessarily drops data (ring evictions,
        sampling skips, record-table evictions); these gauges make the
        truncation visible inside the record itself instead of silent.
        """
        prefix = "repro.telemetry"
        if tracer is not None:
            self.gauge(f"{prefix}.traces_kept",
                       fn=lambda t=tracer: float(len(t.traces)))
            self.gauge(f"{prefix}.traces_dropped",
                       fn=lambda t=tracer: float(t.dropped))
            self.gauge(f"{prefix}.traces_offered",
                       fn=lambda t=tracer: float(t.offered))
        if events is not None:
            self.gauge(f"{prefix}.events_kept",
                       fn=lambda e=events: float(len(e.events)))
            self.gauge(f"{prefix}.events_evicted",
                       fn=lambda e=events: float(e.evicted))
        if flows is not None:
            self.gauge(f"{prefix}.flow_messages",
                       fn=lambda r=flows: float(r.messages))
            self.gauge(f"{prefix}.flow_records",
                       fn=lambda r=flows: float(len(r.records)))
            self.gauge(f"{prefix}.flow_record_evictions",
                       fn=lambda r=flows: float(r.record_evictions))
        if rollups is not None:
            self.gauge(f"{prefix}.rollup_windows",
                       fn=lambda r=rollups: float(len(r.windows)))
            self.gauge(f"{prefix}.rollup_evicted",
                       fn=lambda r=rollups: float(r.evicted))

    # -- queries ----------------------------------------------------------

    def names(self) -> list[str]:
        """All metric names, sorted."""
        return sorted(set(self._metrics) | set(self._series_views))

    def query(self, prefix: str) -> dict:
        """Snapshot of every metric whose name starts with ``prefix``."""
        return {
            name: value
            for name, value in self.snapshot().items()
            if name.startswith(prefix)
        }

    def snapshot(self) -> dict:
        """Evaluate every metric: name -> float (counter/gauge) or
        summary dict (histogram / lane latency view).  Sorted by name."""
        out: dict[str, object] = {}
        for name, metric in self._metrics.items():
            if type(metric) is Counter:
                out[name] = metric.value
            elif type(metric) is Gauge:
                out[name] = metric.value
            else:
                out[name] = metric.summary()
        for name, bucket in self._series_views.items():
            out[name] = _merged_summary(s.latencies for s in bucket)
        return dict(sorted(out.items()))


def enable() -> MetricsRegistry:
    """Install (and return) a fresh registry as the active one."""
    global ACTIVE
    ACTIVE = MetricsRegistry()
    return ACTIVE


def disable() -> Optional[MetricsRegistry]:
    """Remove the active registry (returns it, for inspection)."""
    global ACTIVE
    registry, ACTIVE = ACTIVE, None
    return registry


# -- push helpers for instrumented call sites -----------------------------
#
# One compare when disabled; get-or-create dict hit when enabled.  Used by
# per-call (not per-byte) paths: socket/MPI translation, bench harness.


def counter_inc(name: str, amount: float = 1.0) -> None:
    registry = ACTIVE
    if registry is not None:
        registry.counter(name).inc(amount)


def histogram_observe(name: str, sample: float) -> None:
    registry = ACTIVE
    if registry is not None:
        registry.histogram(name).observe(sample)

"""Span-based flow tracer: where does a message's time actually go?

The paper's argument is *per-layer* — FreeFlow wins by deleting stack
layers (veth → bridge → overlay router → kernel TCP) from the data path —
so the reproduction needs to show **where** sim-time goes inside a path,
not just end-to-end Gb/s.  The tracer records, per sampled message, a
sequence of named *segments* (``queue``, ``copy``, ``nic``, ``wire``,
``kernel``, …) with absolute sim timestamps; anything between two
recorded segments (inbox waits, scheduler hand-offs) is attributed to
``wait`` at breakdown time, so segment sums always equal the end-to-end
latency exactly.

Design constraints, in order:

1. **Near-zero overhead when disabled.**  Hot paths guard every hook
   with ``tracer.ACTIVE is None`` — one module-attribute load and a
   pointer compare per message, nothing else.  ``bench_telemetry.py``
   measures this (and the 1%/100% sampling cost) so CI can police it.
2. **Deterministic sampling.**  Each flow gets its own seeded
   :class:`repro.sim.rand.RandomStream` (derived from ``sha256(seed:flow)``),
   so two runs with the same seed trace the *same* messages, and tracing
   one flow never perturbs the sampling decisions of another.  No tracer
   randomness bypasses ``repro.sim.rand`` (simlint rule SIM001).
3. **Bounded memory.**  At most ``max_traces_per_flow`` finished traces
   are kept per flow; excess messages are counted in ``dropped`` and not
   traced at all (cheaper than tracing and discarding).

Enable with :func:`repro.telemetry.session` (context manager) or by
calling :func:`enable` / :func:`disable` directly.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

from ..sim.rand import RandomStream

__all__ = [
    "ACTIVE",
    "SEGMENT_ORDER",
    "MessageTrace",
    "Tracer",
    "enable",
    "disable",
]

#: The currently active tracer, or None when tracing is disabled.  Hot
#: paths check this module attribute directly; keeping it a plain global
#: (instead of a getter) is what makes the disabled path near-free.
ACTIVE: Optional["Tracer"] = None

#: Canonical display order for the per-hop breakdown.  Segments not in
#: this list sort after it, alphabetically.
SEGMENT_ORDER = (
    "post",      # verbs/library posting cost (CPU)
    "queue",     # admission: ring/window backpressure + per-message CPU
    "copy",      # memcpy through the host memory bus
    "nic",       # NIC message engine + DMA latency
    "wire",      # serialisation onto the link / fabric transfer
    "overlay",   # user-space overlay router service
    "kernel",    # kernel stack CPU + syscall/stack latency (or notify)
    "consume",   # receiver-side per-message CPU + ring/window release
    "wait",      # unattributed gaps: inbox waits, scheduler hand-offs
)

_ORDER_INDEX = {name: index for index, name in enumerate(SEGMENT_ORDER)}


def _segment_sort_key(name: str) -> tuple:
    return (_ORDER_INDEX.get(name, len(SEGMENT_ORDER)), name)


class MessageTrace:
    """The span record of one sampled message crossing one flow.

    Segments are ``(name, start_s, end_s)`` triples in absolute sim
    time.  They are recorded by the hot paths as the message advances;
    :meth:`breakdown` turns them into per-segment durations with gaps
    attributed to ``wait`` (overlaps are clipped so durations always sum
    to ``end_s - start_s``).
    """

    __slots__ = ("flow", "mechanism", "start_s", "end_s", "segments")

    def __init__(self, flow: str, mechanism: str, start_s: float) -> None:
        self.flow = flow
        self.mechanism = mechanism
        self.start_s = start_s
        self.end_s = math.nan
        self.segments: list[tuple[str, float, float]] = []

    def add(self, name: str, start_s: float, end_s: float) -> None:
        """Record one named segment (absolute sim times)."""
        # Bounded by the pipeline depth: one entry per hop of one message
        # (~6 for the deepest mechanism).  simlint: disable=SIM004
        self.segments.append((name, start_s, end_s))

    @property
    def closed(self) -> bool:
        return self.end_s == self.end_s  # not NaN

    @property
    def total_s(self) -> float:
        """End-to-end sim time from send entry to receive return."""
        return self.end_s - self.start_s

    def breakdown(self) -> dict[str, float]:
        """Per-segment durations; gaps become ``wait``; sums to total.

        Overlapping segments (rare — instrumentation points are chosen
        to be sequential per message) are clipped against the sweep
        cursor so no sim time is counted twice.
        """
        out: dict[str, float] = {}
        cursor = self.start_s
        wait = 0.0
        for name, start, end in sorted(
            self.segments, key=lambda seg: (seg[1], seg[2])
        ):
            if start > cursor:
                wait += start - cursor
                cursor = start
            if end > cursor:
                out[name] = out.get(name, 0.0) + (end - cursor)
                cursor = end
        if self.closed and self.end_s > cursor:
            wait += self.end_s - cursor
        if wait > 0.0:
            out["wait"] = wait
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = f"{self.total_s * 1e6:.2f}us" if self.closed else "open"
        return (
            f"<MessageTrace {self.flow} {len(self.segments)} segments "
            f"{state}>"
        )


class Tracer:
    """Collects sampled :class:`MessageTrace` records across all flows."""

    def __init__(
        self,
        sample_rate: float = 1.0,
        seed: int = 0x7E1E,
        max_traces_per_flow: int = 512,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample rate {sample_rate} outside [0, 1]")
        if max_traces_per_flow <= 0:
            raise ValueError("max_traces_per_flow must be positive")
        self.sample_rate = sample_rate
        self.seed = seed
        self.max_traces_per_flow = max_traces_per_flow
        #: Finished traces in completion order (the exporters walk this).
        self.traces: list[MessageTrace] = []
        #: Stored-trace counts per flow (enforces the per-flow cap).
        self.counts: dict[str, int] = {}
        #: Messages not traced because their flow hit the storage cap.
        self.dropped = 0
        #: Sampling decisions made (traced + skipped), for rate checks.
        self.offered = 0
        self._samplers: dict[str, RandomStream] = {}
        self._open = 0

    # -- sampling ---------------------------------------------------------

    def _flow_rng(self, flow: str) -> RandomStream:
        # One seeded stream per flow (sha256(seed:flow) derivation inside
        # RandomStream — the same scheme this method used to hand-roll),
        # so sampling decisions are replay-deterministic and independent
        # across flows.  All tracer randomness flows through
        # repro.sim.rand (simlint rule SIM001).
        return RandomStream(self.seed, flow)

    def begin(
        self, flow: str, mechanism: str, now: float
    ) -> Optional[MessageTrace]:
        """Start a trace for one message, or None if not sampled.

        The per-flow RNG makes the decision sequence deterministic given
        (seed, flow, message order within the flow) — independent of any
        other flow's traffic.
        """
        self.offered += 1
        rate = self.sample_rate
        if rate <= 0.0:
            return None
        if rate < 1.0:
            rng = self._samplers.get(flow)
            if rng is None:
                # One small RNG per flow label, scoped to the session;
                # deliberate so one flow's traffic never perturbs
                # another's sampling sequence.
                # simlint: disable=SIM009
                rng = self._samplers[flow] = self._flow_rng(flow)
            if rng.random() >= rate:
                return None
        if self.counts.get(flow, 0) >= self.max_traces_per_flow:
            self.dropped += 1
            return None
        self._open += 1
        return MessageTrace(flow, mechanism, now)

    def finish(self, trace: MessageTrace, now: float) -> None:
        """Close a trace at receive time and store it (idempotent)."""
        if trace.closed:
            return
        trace.end_s = now
        self._open -= 1
        # One counter per flow label, session-scoped, capped reads via
        # max_traces_per_flow.  simlint: disable=SIM009
        self.counts[trace.flow] = self.counts.get(trace.flow, 0) + 1
        # Bounded upstream: begin() stops sampling a flow once it reaches
        # max_traces_per_flow, so this list is capped at
        # flows * max_traces_per_flow.  simlint: disable=SIM004
        self.traces.append(trace)

    def __len__(self) -> int:
        return len(self.traces)

    # -- aggregation ------------------------------------------------------

    def flows(self) -> list[str]:
        """Flow names with at least one stored trace, in first-seen order."""
        return list(self.counts)

    def breakdown(
        self, flow: Optional[str] = None, start: int = 0
    ) -> dict:
        """Aggregate mean per-segment durations over stored traces.

        ``flow`` filters to one flow; ``start`` restricts to traces
        stored at index >= start (callers snapshot ``len(tracer)`` before
        a measurement to scope the aggregate to it).  Returns::

            {"count": n, "mean_total_s": t,
             "segments": {name: mean_seconds, ...}}   # display order
        """
        selected = [
            trace for trace in self.traces[start:]
            if flow is None or trace.flow == flow
        ]
        if not selected:
            return {"count": 0, "mean_total_s": 0.0, "segments": {}}
        sums: dict[str, float] = {}
        total = 0.0
        for trace in selected:
            total += trace.total_s
            for name, duration in trace.breakdown().items():
                sums[name] = sums.get(name, 0.0) + duration
        n = len(selected)
        segments = {
            name: sums[name] / n
            for name in sorted(sums, key=_segment_sort_key)
        }
        return {
            "count": n,
            "mean_total_s": total / n,
            "segments": segments,
        }

    def by_flow(self, start: int = 0) -> dict[str, dict]:
        """Per-flow aggregates (see :meth:`breakdown`), first-seen order."""
        flows: list[str] = []
        for trace in self.traces[start:]:
            if trace.flow not in flows:
                flows.append(trace.flow)
        return {flow: self.breakdown(flow=flow, start=start)
                for flow in flows}


def enable(
    sample_rate: float = 1.0,
    seed: int = 0x7E1E,
    max_traces_per_flow: int = 512,
) -> Tracer:
    """Install (and return) a fresh tracer as the active one."""
    global ACTIVE
    ACTIVE = Tracer(sample_rate, seed, max_traces_per_flow)
    return ACTIVE


def disable() -> Optional[Tracer]:
    """Remove the active tracer (returns it, for inspection)."""
    global ACTIVE
    tracer, ACTIVE = ACTIVE, None
    return tracer

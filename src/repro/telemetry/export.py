"""Exporters: telemetry state as JSON-lines or aligned text tables.

JSON-lines is the machine-readable artifact (one self-describing record
per line, keys sorted — byte-stable for a deterministic sim, which the
golden-file test relies on); the table formatters are what the
``python -m repro trace`` demo and benchmark summaries print.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Optional

from .events import EventLog
from .registry import MetricsRegistry
from .tracer import Tracer

__all__ = [
    "jsonl",
    "write_jsonl",
    "registry_records",
    "event_records",
    "trace_records",
    "format_breakdown",
    "format_registry",
]


# -- JSON-lines ------------------------------------------------------------


def jsonl(records: Iterable[dict]) -> str:
    """Records as one JSON object per line (keys sorted, compact)."""
    return "\n".join(
        json.dumps(record, sort_keys=True, separators=(",", ":"))
        for record in records
    )


def write_jsonl(path, records: Iterable[dict]) -> int:
    """Write records to ``path``; returns the number of lines written."""
    records = list(records)
    Path(path).write_text(jsonl(records) + ("\n" if records else ""))
    return len(records)


def registry_records(registry: MetricsRegistry) -> list[dict]:
    """One record per metric: ``{"metric": name, ...value/summary}``."""
    records = []
    for name, value in registry.snapshot().items():
        if isinstance(value, dict):
            records.append({"metric": name, "type": "histogram", **value})
        else:
            records.append({"metric": name, "type": "scalar",
                            "value": value})
    return records


def event_records(log: EventLog) -> list[dict]:
    """One record per control-plane event, in emission order."""
    return [
        {"event": event.kind, **event.as_record()}
        for event in log.events
    ]


def trace_records(tracer: Tracer, start: int = 0) -> list[dict]:
    """One aggregate record per flow (count, mean total, segment means)."""
    return [
        {
            "flow": flow,
            "count": aggregate["count"],
            "mean_total_s": aggregate["mean_total_s"],
            "segments": aggregate["segments"],
        }
        for flow, aggregate in tracer.by_flow(start=start).items()
    ]


# -- aligned tables --------------------------------------------------------


def _table(headers: list[str], rows: list[list[str]]) -> str:
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows))
        if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(headers[i].ljust(widths[i]) for i in range(len(headers))),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rows:
        lines.append(
            "  ".join(
                (row[i].ljust(widths[i]) if i == 0 else
                 row[i].rjust(widths[i]))
                for i in range(len(row))
            )
        )
    return "\n".join(lines)


def format_breakdown(aggregate: dict, label: str = "flow") -> str:
    """Aligned per-segment table for one :meth:`Tracer.breakdown` result.

    Columns: segment name, mean microseconds, share of the total.  The
    final row is the end-to-end total, which the segments sum to exactly
    (gaps are attributed to ``wait`` by construction).
    """
    total = aggregate["mean_total_s"]
    rows = []
    for name, seconds in aggregate["segments"].items():
        share = (100.0 * seconds / total) if total > 0 else 0.0
        rows.append([name, f"{seconds * 1e6:.3f}", f"{share:.1f}%"])
    rows.append(["total", f"{total * 1e6:.3f}", "100.0%"])
    header = f"{label}  (n={aggregate['count']})"
    return "\n".join([header,
                      _table(["segment", "mean us", "share"], rows)])


def format_registry(
    registry: MetricsRegistry, prefix: str = "", limit: Optional[int] = None
) -> str:
    """Aligned name/value table of a registry snapshot."""
    rows = []
    for name, value in registry.snapshot().items():
        if prefix and not name.startswith(prefix):
            continue
        if isinstance(value, dict):
            if value.get("count"):
                rendered = (f"n={value['count']:.0f} "
                            f"mean={value['mean']:.3e} "
                            f"p99={value['p99']:.3e}")
            else:
                rendered = "n=0"
        elif float(value) == int(value):
            rendered = f"{value:.0f}"
        else:
            rendered = f"{value:.4f}"
        rows.append([name, rendered])
        if limit is not None and len(rows) >= limit:
            break
    return _table(["metric", "value"], rows)

"""Exporters: telemetry state as JSON-lines or aligned text tables.

JSON-lines is the machine-readable artifact (one self-describing record
per line, keys sorted — byte-stable for a deterministic sim, which the
golden-file test relies on); the table formatters are what the
``python -m repro trace`` demo and benchmark summaries print.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Optional

from .events import EventLog
from .flowrecords import FlowRecorder
from .profiler import EngineProfiler
from .registry import MetricsRegistry
from .timeseries import RollupRecorder
from .tracer import Tracer

__all__ = [
    "jsonl",
    "write_jsonl",
    "registry_records",
    "event_records",
    "trace_records",
    "rollup_records",
    "flow_records",
    "topk_records",
    "profiler_records",
    "report_records",
    "format_breakdown",
    "format_registry",
    "format_top",
    "format_profile",
]


# -- JSON-lines ------------------------------------------------------------


def jsonl(records: Iterable[dict]) -> str:
    """Records as one JSON object per line (keys sorted, compact)."""
    return "\n".join(
        json.dumps(record, sort_keys=True, separators=(",", ":"))
        for record in records
    )


def write_jsonl(path, records: Iterable[dict]) -> int:
    """Write records to ``path``; returns the number of lines written."""
    records = list(records)
    Path(path).write_text(jsonl(records) + ("\n" if records else ""))
    return len(records)


def registry_records(registry: MetricsRegistry) -> list[dict]:
    """One record per metric: ``{"metric": name, ...value/summary}``."""
    records = []
    for name, value in registry.snapshot().items():
        if isinstance(value, dict):
            records.append({"metric": name, "type": "histogram", **value})
        else:
            records.append({"metric": name, "type": "scalar",
                            "value": value})
    return records


def event_records(log: EventLog) -> list[dict]:
    """One record per control-plane event, in emission order."""
    return [
        {"event": event.kind, **event.as_record()}
        for event in log.events
    ]


def trace_records(tracer: Tracer, start: int = 0) -> list[dict]:
    """One aggregate record per flow (count, mean total, segment means)."""
    return [
        {
            "flow": flow,
            "count": aggregate["count"],
            "mean_total_s": aggregate["mean_total_s"],
            "segments": aggregate["segments"],
        }
        for flow, aggregate in tracer.by_flow(start=start).items()
    ]


def rollup_records(rollups: RollupRecorder) -> list[dict]:
    """One record per retained rollup window (the utilization timeline).

    The first record is a header carrying the interval, retention and
    eviction counts, so a truncated timeline says so in-band.
    """
    records = [{
        "record": "rollup.header",
        "interval_s": rollups.interval_s,
        "retention": rollups.retention,
        "windows": len(rollups.windows),
        "evicted": rollups.evicted,
        "gap_windows": rollups.gap_windows,
    }]
    for window in rollups.windows:
        records.append({
            "record": "rollup",
            "t_s": window["t_s"],
            "metrics": dict(sorted(window["metrics"].items())),
        })
    return records


def flow_records(recorder: FlowRecorder) -> list[dict]:
    """Header + one record per sampled flow (NetFlow-style)."""
    records = [{
        "record": "flows.header",
        "sample_rate": recorder.sample_rate,
        "messages": recorder.messages,
        "payload_bytes": recorder.payload_bytes,
        "unattributed": recorder.unattributed,
        "sampled_flows": recorder.sampled_flows,
        "record_evictions": recorder.record_evictions,
    }]
    records.extend(recorder.flow_records())
    if recorder.verbs_ops:
        records.append({
            "record": "flows.verbs",
            "ops": {
                opcode: {"ops": entry[0], "bytes": entry[1]}
                for opcode, entry in sorted(recorder.verbs_ops.items())
            },
        })
    if recorder.transition_counts:
        records.append({
            "record": "flows.transitions",
            "counts": dict(sorted(recorder.transition_counts.items())),
        })
    return records


def topk_records(recorder: FlowRecorder, n: int = 10) -> list[dict]:
    """Heavy hitters per dimension, with the sketch's error bound."""
    records = []
    for dimension, sketch in (("flow", recorder.by_flow),
                              ("src", recorder.by_src),
                              ("dst", recorder.by_dst)):
        records.append({
            "record": "topk",
            "by": dimension,
            "error_bound_bytes": sketch.error_bound(),
            "top": [
                {"key": key, "bytes": estimate, "max_error": error}
                for key, estimate, error in sketch.top(n)
            ],
        })
    return records


def profiler_records(profiler: EngineProfiler) -> list[dict]:
    """Deterministic per-site attribution (event counts + shares)."""
    return profiler.records()


def report_records(
    session,
    profiler: Optional[EngineProfiler] = None,
    top_n: int = 10,
) -> list[dict]:
    """The full flight-record artifact for one telemetry session.

    Stitches rollup timeline, heavy hitters, sampled flow records,
    control-plane events, registry snapshot and (when given) the
    profiler's deterministic attribution into one record stream —
    what ``python -m repro report`` writes as JSON-lines.
    """
    records: list[dict] = []
    if session.rollups is not None:
        records.extend(rollup_records(session.rollups))
    if session.flows is not None:
        records.extend(topk_records(session.flows, n=top_n))
        records.extend(flow_records(session.flows))
    records.extend(event_records(session.events))
    records.extend(registry_records(session.registry))
    if profiler is not None:
        records.extend(profiler_records(profiler))
    return records


# -- aligned tables --------------------------------------------------------


def _table(headers: list[str], rows: list[list[str]]) -> str:
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows))
        if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(headers[i].ljust(widths[i]) for i in range(len(headers))),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rows:
        lines.append(
            "  ".join(
                (row[i].ljust(widths[i]) if i == 0 else
                 row[i].rjust(widths[i]))
                for i in range(len(row))
            )
        )
    return "\n".join(lines)


def format_breakdown(aggregate: dict, label: str = "flow") -> str:
    """Aligned per-segment table for one :meth:`Tracer.breakdown` result.

    Columns: segment name, mean microseconds, share of the total.  The
    final row is the end-to-end total, which the segments sum to exactly
    (gaps are attributed to ``wait`` by construction).
    """
    total = aggregate["mean_total_s"]
    rows = []
    for name, seconds in aggregate["segments"].items():
        share = (100.0 * seconds / total) if total > 0 else 0.0
        rows.append([name, f"{seconds * 1e6:.3f}", f"{share:.1f}%"])
    rows.append(["total", f"{total * 1e6:.3f}", "100.0%"])
    header = f"{label}  (n={aggregate['count']})"
    return "\n".join([header,
                      _table(["segment", "mean us", "share"], rows)])


def format_registry(
    registry: MetricsRegistry, prefix: str = "", limit: Optional[int] = None
) -> str:
    """Aligned name/value table of a registry snapshot."""
    rows = []
    for name, value in registry.snapshot().items():
        if prefix and not name.startswith(prefix):
            continue
        if isinstance(value, dict):
            if value.get("count"):
                rendered = (f"n={value['count']:.0f} "
                            f"mean={value['mean']:.3e} "
                            f"p99={value['p99']:.3e}")
            else:
                rendered = "n=0"
        elif float(value) == int(value):
            rendered = f"{value:.0f}"
        else:
            rendered = f"{value:.4f}"
        rows.append([name, rendered])
        if limit is not None and len(rows) >= limit:
            break
    return _table(["metric", "value"], rows)


def _human_bytes(value: float) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if value < 1024 or unit == "GB":
            return f"{value:.1f}{unit}" if unit != "B" else f"{value:.0f}B"
        value /= 1024
    return f"{value:.1f}GB"  # pragma: no cover - unreachable


def format_top(
    recorder: FlowRecorder,
    registry: Optional[MetricsRegistry] = None,
    n: int = 10,
    now_s: Optional[float] = None,
) -> str:
    """The live "top" screen: talkers, link utilisation, flow states."""
    sections = []
    header = (f"flows: {recorder.messages} msgs  "
              f"{_human_bytes(float(recorder.payload_bytes))}  "
              f"sampled={recorder.sampled_flows} "
              f"(rate {recorder.sample_rate:g})")
    if now_s is not None:
        header = f"t={now_s * 1e3:9.3f} ms  " + header
    sections.append(header)
    for dimension, title in (("flow", "top flows"), ("src", "top sources"),
                             ("dst", "top destinations")):
        rows = [
            [key, _human_bytes(estimate), _human_bytes(error)]
            for key, estimate, error in recorder.top(dimension, n)
        ]
        if rows:
            sections.append(title)
            sections.append(_table([dimension, "bytes", "max err"], rows))
    if recorder.transition_counts:
        rows = [[key, str(count)] for key, count
                in sorted(recorder.transition_counts.items())]
        sections.append("flow-state transitions")
        sections.append(_table(["transition", "count"], rows))
    if registry is not None:
        rows = []
        for name, value in sorted(registry.query("repro.host.").items()):
            if name.endswith((".link_util", ".nic_engine_util")):
                rows.append([name, f"{float(value) * 100:.1f}%"])
        if rows:
            sections.append("link / NIC-engine utilisation")
            sections.append(_table(["gauge", "value"], rows))
        rows = []
        for name, value in sorted(registry.query("repro.fabric.").items()):
            if ".util." in name:
                rows.append([name, f"{float(value) * 100:.1f}%"])
            elif name.endswith((".links_down", ".rehashes", ".detours",
                                ".reorders_seen")):
                rows.append([name, f"{float(value):.0f}"])
        if rows:
            sections.append("fabric (per-tier link utilisation)")
            sections.append(_table(["gauge", "value"], rows))
    return "\n".join(sections)


def format_profile(profiler: EngineProfiler, n: int = 15,
                   wall: bool = True) -> str:
    """Aligned per-site table of the engine profiler's attribution."""
    if wall:
        rows = [
            [record["site"], str(record["events"]),
             f"{record['wall_s'] * 1e3:.2f}", f"{record['wall_share_pct']:.1f}%"]
            for record in profiler.wall_records()[:n]
        ]
        table = _table(["site", "events", "wall ms", "share"], rows)
    else:
        rows = [
            [record["site"], str(record["events"]),
             f"{record['event_share_pct']:.1f}%"]
            for record in profiler.records()[:n]
        ]
        table = _table(["site", "events", "share"], rows)
    header = (f"engine profile: {profiler.events_total} events, "
              f"{profiler.wall_total_s * 1e3:.1f} ms attributed")
    return "\n".join([header, table])

"""Bounded-memory stream summaries for fleet-scale flow accounting.

At datacenter scale ("which of 100k flows is eating the fabric right
now") exact per-key counters are exactly the unbounded growth simlint
SIM004/SIM009 forbid.  This module provides the sketch the flow
recorder builds on: **Space-Saving** (Metwally, Agrawal & El Abbadi,
"Efficient computation of frequent and top-k elements in data
streams"), which tracks the heavy hitters of a weighted stream in
O(capacity) memory with a hard error guarantee:

* every tracked estimate is an *over*-estimate: ``true <= estimate``;
* the overestimate is bounded by the smallest tracked count, which is
  itself bounded by ``total_weight / capacity``;
* any key whose true weight exceeds ``total_weight / capacity`` is
  guaranteed to be tracked.

The property test in ``tests/telemetry/test_sketches.py`` checks those
bounds against exact counts on a Zipf workload.

The implementation is a plain dict of ``key -> [count, error]`` with a
linear scan for the victim on eviction.  Eviction only happens when a
*new* key arrives while full, so on the skewed workloads the sketch is
for (heavy hitters exist precisely when the stream is skewed) the
common case is a single dict hit.
"""

from __future__ import annotations

from typing import Iterable, Optional

__all__ = ["SpaceSaving"]


class SpaceSaving:
    """Top-k heavy hitters of a weighted stream in bounded memory.

    ``capacity`` is the number of tracked keys (the classic ``1/eps``);
    ``update(key, weight)`` is O(1) amortised, ``top(n)`` is
    O(capacity log capacity).
    """

    __slots__ = ("capacity", "total", "updates", "evictions", "_entries")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"sketch capacity must be positive, got {capacity}")
        self.capacity = capacity
        #: Total weight observed (the ``N`` in the ``N / capacity`` bound).
        self.total = 0.0
        self.updates = 0
        self.evictions = 0
        #: key -> [estimated_count, max_overestimate]
        self._entries: dict = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key) -> bool:
        return key in self._entries

    def update(self, key, weight: float = 1.0) -> None:
        """Add ``weight`` for ``key`` (replacing the minimum if full)."""
        if weight < 0:
            raise ValueError(f"negative weight {weight}")
        self.total += weight
        self.updates += 1
        entries = self._entries
        entry = entries.get(key)
        if entry is not None:
            entry[0] += weight
            return
        if len(entries) < self.capacity:
            entries[key] = [weight, 0.0]
            return
        # Full and the key is new: take over the minimum-count entry.
        # Deterministic victim choice: smallest (count, key) so equal
        # counts break ties the same way on every run.
        victim = min(entries, key=lambda k: (entries[k][0], str(k)))
        floor = entries[victim][0]
        del entries[victim]
        entries[key] = [floor + weight, floor]
        self.evictions += 1

    def estimate(self, key) -> float:
        """Estimated weight of ``key`` (0.0 if not tracked)."""
        entry = self._entries.get(key)
        return entry[0] if entry is not None else 0.0

    def error_of(self, key) -> float:
        """Maximum overestimate of ``key``'s count (0.0 if not tracked)."""
        entry = self._entries.get(key)
        return entry[1] if entry is not None else 0.0

    def error_bound(self) -> float:
        """Global overestimate bound: ``total / capacity``."""
        return self.total / self.capacity

    def top(self, n: Optional[int] = None) -> list[tuple]:
        """``(key, estimate, max_error)`` sorted by estimate descending.

        Ties break on the key so the order — and any artifact built from
        it — is deterministic.
        """
        ranked = sorted(
            self._entries.items(),
            key=lambda item: (-item[1][0], str(item[0])),
        )
        if n is not None:
            ranked = ranked[:n]
        return [(key, entry[0], entry[1]) for key, entry in ranked]

    def merge(self, other: "SpaceSaving") -> None:
        """Fold another sketch in (bounds compose additively)."""
        for key, estimate, error in other.top():
            entries = self._entries
            entry = entries.get(key)
            if entry is not None:
                entry[0] += estimate
                entry[1] += error
                self.total += estimate
                continue
            self.total += estimate
            self.updates += 1
            if len(entries) < self.capacity:
                entries[key] = [estimate, error]
                continue
            victim = min(entries, key=lambda k: (entries[k][0], str(k)))
            floor = entries[victim][0]
            del entries[victim]
            entries[key] = [floor + estimate, floor + error]
            self.evictions += 1

    def state_size(self) -> int:
        """Tracked entries — the RSS proxy the bounded-memory bench checks."""
        return len(self._entries)

    def keys(self) -> Iterable:
        return self._entries.keys()

"""Control-plane event log: what the orchestrator/agents decided, when.

The data-plane tracer answers "where did this message's time go"; this
log answers "why is the data plane shaped like this" — which mechanism
the policy engine chose for a flow, when a container attached or
migrated, when a host failed and which connections it took down.  Events
are structured (kind + flat field dict) and stamped with sim time, so
they line up with trace timestamps and throughput timelines.

Like the tracer and registry, the log is enabled per session via a
module-level ``ACTIVE`` handle; every emit site pays one compare when
disabled.  Storage is a bounded ring (oldest events evicted first) so a
long-running experiment cannot grow without bound; evictions are counted.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "ACTIVE",
    "FLOW_TRANSITION",
    "ControlEvent",
    "EventLog",
    "emit",
    "emit_transition",
    "enable",
    "disable",
]

#: The currently active event log, or None when disabled.
ACTIVE: Optional["EventLog"] = None

#: Canonical kind for flow-lifecycle state changes.  Every transition the
#: :class:`repro.core.flows.FlowTable` performs (connect, pause, break,
#: rebind, repair, close) is emitted under this kind, so a single
#: ``log.of_kind(FLOW_TRANSITION)`` query reconstructs each flow's full
#: life from the control-plane log.
FLOW_TRANSITION = "flow.transition"


@dataclass(slots=True)
class ControlEvent:
    """One structured control-plane event."""

    time_s: float
    kind: str
    fields: dict = field(default_factory=dict)

    def as_record(self) -> dict:
        """Flat dict for the JSON-lines exporter (stable key order)."""
        record = {"time_s": self.time_s, "kind": self.kind}
        record.update(sorted(self.fields.items()))
        return record


class EventLog:
    """Bounded, ordered store of :class:`ControlEvent` records."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError("event log capacity must be positive")
        self.capacity = capacity
        self._events: deque[ControlEvent] = deque(maxlen=capacity)
        #: Events evicted because the ring was full.
        self.evicted = 0

    def emit(self, time_s: float, kind: str, **fields) -> ControlEvent:
        event = ControlEvent(time_s, kind, fields)
        if len(self._events) == self.capacity:
            self.evicted += 1
        self._events.append(event)
        return event

    def __len__(self) -> int:
        return len(self._events)

    @property
    def events(self) -> list[ControlEvent]:
        return list(self._events)

    def of_kind(self, kind: str) -> list[ControlEvent]:
        return [event for event in self._events if event.kind == kind]

    def kinds(self) -> dict[str, int]:
        """Event counts by kind (quick control-plane activity summary)."""
        counts: dict[str, int] = {}
        for event in self._events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts


def emit(env, kind: str, **fields) -> None:
    """Emit one event against the active log (no-op when disabled).

    ``env`` supplies the sim timestamp — every control-plane emitter
    already holds its Environment, and passing it (rather than a float)
    keeps call sites one expression.
    """
    log = ACTIVE
    if log is not None:
        log.emit(env.now, kind, **fields)


def emit_transition(env, flow_id: str, src: str, dst: str,
                    old_state: str, new_state: str, reason: str = "",
                    **fields) -> None:
    """Emit one :data:`FLOW_TRANSITION` event (no-op when disabled).

    Field names are fixed (``flow``/``src``/``dst``/``old``/``new``/
    ``reason``) so exporters and tests can rely on the shape.
    """
    log = ACTIVE
    if log is not None:
        log.emit(env.now, FLOW_TRANSITION, flow=flow_id, src=src, dst=dst,
                 old=old_state, new=new_state, reason=reason, **fields)


def enable(capacity: int = 4096) -> EventLog:
    """Install (and return) a fresh event log as the active one."""
    global ACTIVE
    ACTIVE = EventLog(capacity)
    return ACTIVE


def disable() -> Optional[EventLog]:
    """Remove the active event log (returns it, for inspection)."""
    global ACTIVE
    log, ACTIVE = ACTIVE, None
    return log

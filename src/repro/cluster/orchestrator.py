"""The cluster orchestrator (Mesos/Kubernetes stand-in, substrate S6).

Owns container lifecycle: submission, placement (via a pluggable
strategy), stop, and relocation.  All state lands in the cluster
:class:`~repro.cluster.kvstore.KeyValueStore` under ``/cluster/...`` so
that FreeFlow's *network* orchestrator can watch placements exactly the
way the paper prescribes ("the information about the location of the
other endpoints can be easily obtained by querying the orchestrator",
§3.1).

Ownership split (see DESIGN.md "Two orchestrators"): this class owns
*lifecycle and placement* only.  Everything network-flavoured — overlay
IPs, location queries with RPC latency, NIC capabilities, the mechanism
policy — belongs to :class:`repro.core.orchestrator.NetworkOrchestrator`,
which derives its state from here and is never a second source of truth
for placement.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from ..errors import OrchestrationError, PlacementError, UnknownContainer
from ..hardware.host import Host
from ..telemetry import events as _events
from ..telemetry import registry as _registry
from ..hardware.vm import VirtualMachine
from .container import Container, ContainerSpec, ContainerStatus
from .fabric import FabricController
from .kvstore import KeyValueStore
from .scheduler import PlacementStrategy, SpreadStrategy

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.scheduler import Environment

__all__ = ["ClusterOrchestrator"]


class ClusterOrchestrator:
    """Central controller for a fleet of hosts/VMs and their containers."""

    def __init__(
        self,
        env: "Environment",
        strategy: Optional[PlacementStrategy] = None,
        fabric_controller: Optional[FabricController] = None,
        kvstore: Optional[KeyValueStore] = None,
    ) -> None:
        self.env = env
        self.strategy = strategy or SpreadStrategy()
        self.fabric_controller = fabric_controller or FabricController()
        self.kv = kvstore or KeyValueStore(env)
        self._hosts: dict[str, Host] = {}
        self._vms: dict[str, VirtualMachine] = {}
        self._containers: dict[str, Container] = {}
        self._down_hosts: set[str] = set()

    # -- fleet management ---------------------------------------------------------

    def add_host(self, host: Host) -> None:
        if host.name in self._hosts:
            raise OrchestrationError(f"host {host.name!r} already registered")
        self._hosts[host.name] = host
        self.kv.put(f"/cluster/hosts/{host.name}", {
            "cores": host.cpu.cores,
            "rdma": host.rdma_capable,
            "dpdk": host.dpdk_capable,
        })
        registry = _registry.ACTIVE
        if registry is not None:
            registry.register_host(host)
            registry.register_cluster(self)

    def add_vm(self, vm: VirtualMachine) -> None:
        if vm.name in self._vms:
            raise OrchestrationError(f"VM {vm.name!r} already registered")
        if vm.host.name not in self._hosts:
            raise OrchestrationError(
                f"VM {vm.name!r} runs on unregistered host {vm.host.name!r}"
            )
        self._vms[vm.name] = vm
        self.fabric_controller.register(vm)
        self.kv.put(f"/cluster/vms/{vm.name}", {"host": vm.host.name})

    @property
    def hosts(self) -> Sequence[Host]:
        return tuple(self._hosts.values())

    def host(self, name: str) -> Host:
        try:
            return self._hosts[name]
        except KeyError:
            raise OrchestrationError(f"unknown host {name!r}") from None

    # -- container lifecycle ---------------------------------------------------------

    def submit(self, spec: ContainerSpec) -> Container:
        """Place and start a container."""
        if spec.name in self._containers:
            raise OrchestrationError(f"container {spec.name!r} already exists")
        host, vm = self._resolve_placement(spec)
        container = Container(spec, host, vm)
        container.start()
        self._containers[spec.name] = container
        self._publish(container)
        _events.emit(self.env, "container.submit", container=spec.name,
                     host=host.name,
                     vm=vm.name if vm is not None else "")
        return container

    def _resolve_placement(self, spec: ContainerSpec):
        if spec.pinned_host is not None:
            if spec.pinned_host in self._down_hosts:
                raise PlacementError(
                    f"pinned host {spec.pinned_host!r} is down"
                )
            if spec.pinned_host in self._vms:
                vm = self._vms[spec.pinned_host]
                return vm.host, vm
            if spec.pinned_host in self._hosts:
                return self._hosts[spec.pinned_host], None
            raise PlacementError(
                f"pinned location {spec.pinned_host!r} is not a known host or VM"
            )
        load = self._load_by_host()
        candidates = tuple(
            host for name, host in self._hosts.items()
            if name not in self._down_hosts
        )
        host = self.strategy.place(spec, candidates, load)
        if host.name not in self._hosts:
            raise PlacementError(
                f"strategy returned unregistered host {host.name!r}"
            )
        return host, None

    def _load_by_host(self) -> dict[str, int]:
        load: dict[str, int] = {}
        for container in self._containers.values():
            if container.status is ContainerStatus.RUNNING:
                load[container.host.name] = load.get(container.host.name, 0) + 1
        return load

    def container(self, name: str) -> Container:
        try:
            return self._containers[name]
        except KeyError:
            raise UnknownContainer(f"no container named {name!r}") from None

    def containers(self, tenant: Optional[str] = None) -> list[Container]:
        found = list(self._containers.values())
        if tenant is not None:
            found = [c for c in found if c.tenant == tenant]
        return found

    def stop(self, name: str) -> None:
        container = self.container(name)
        container.stop()
        self.kv.delete(f"/cluster/containers/{name}")

    def remove(self, name: str) -> None:
        """Forget a container entirely (it can be resubmitted by name)."""
        container = self._containers.pop(name, None)
        if container is not None:
            container.stop()
            self.kv.delete(f"/cluster/containers/{name}")

    # -- failure handling (§2.1: "a stopped container can be quickly
    # replaced by a new one on the same or another host") -----------------

    def fail_host(self, host_name: str) -> list[str]:
        """A host dies: its containers are lost; it leaves the pool.

        Returns the names of the containers that were lost so callers
        (and FreeFlow's network layer) can react.
        """
        host = self.host(host_name)
        self._down_hosts.add(host_name)
        self.kv.delete(f"/cluster/hosts/{host_name}")
        lost = [
            name for name, container in self._containers.items()
            if container.host is host
            and container.status is not ContainerStatus.STOPPED
        ]
        for name in lost:
            self.remove(name)
        return lost

    def recover_host(self, host_name: str) -> None:
        """Bring a previously failed host back into the pool."""
        host = self.host(host_name)
        self._down_hosts.discard(host_name)
        self.kv.put(f"/cluster/hosts/{host.name}", {
            "cores": host.cpu.cores,
            "rdma": host.rdma_capable,
            "dpdk": host.dpdk_capable,
        })
        _events.emit(self.env, "host.recover", host=host_name)

    def watch_hosts(self):
        """Watch host liveness: a DELETE under ``/cluster/hosts/`` is a
        host failure, a PUT is an admission or recovery.  This is the
        feed the flow reconciler subscribes to (paper §2.1's
        failure-mitigation story, made push-style)."""
        return self.kv.watch("/cluster/hosts/")

    def is_host_up(self, host_name: str) -> bool:
        return host_name in self._hosts and host_name not in self._down_hosts

    def relocate(self, name: str, destination: str) -> Container:
        """Move a container to another host/VM (the migration primitive).

        The heavy lifting (copying state, draining connections) is the
        job of :mod:`repro.core.migration`; this just flips the placement
        record and publishes the change.
        """
        container = self.container(name)
        if destination in self._vms:
            vm = self._vms[destination]
            container.relocate(vm.host, vm)
        elif destination in self._hosts:
            container.relocate(self._hosts[destination], None)
        else:
            raise PlacementError(f"unknown destination {destination!r}")
        self._publish(container)
        _events.emit(self.env, "container.migrate", container=name,
                     destination=destination,
                     generation=container.generation)
        return container

    # -- the query surface FreeFlow consumes ----------------------------------------

    def locate(self, name: str) -> Host:
        """Physical host of a container, resolving any VM indirection
        through the fabric controller (paper §4.2)."""
        container = self.container(name)
        if container.vm is not None:
            return self.fabric_controller.physical_host_of(container.vm.name)
        return container.host

    def _publish(self, container: Container) -> None:
        self.kv.put(f"/cluster/containers/{container.name}", {
            "tenant": container.tenant,
            "host": container.host.name,
            "vm": container.vm.name if container.vm is not None else None,
            "generation": container.generation,
        })

"""The cluster orchestrator (Mesos/Kubernetes stand-in, substrate S6).

Owns container lifecycle: submission, placement (via a pluggable
strategy), stop, and relocation.  All state lands in the cluster
:class:`~repro.cluster.kvstore.KeyValueStore` under ``/cluster/...`` so
that FreeFlow's *network* orchestrator can watch placements exactly the
way the paper prescribes ("the information about the location of the
other endpoints can be easily obtained by querying the orchestrator",
§3.1).

Ownership split (see DESIGN.md "Two orchestrators"): this class owns
*lifecycle and placement* only.  Everything network-flavoured — overlay
IPs, location queries with RPC latency, NIC capabilities, the mechanism
policy — belongs to :class:`repro.core.orchestrator.NetworkOrchestrator`,
which derives its state from here and is never a second source of truth
for placement.

Datacenter-scale shape (DESIGN.md §15): placement state is sharded by
**rack**.  Every host joins a rack at :meth:`add_host`; per-host and
per-rack load counters are maintained incrementally on every lifecycle
transition (never recomputed by scanning containers), the up-host
candidate tuple is cached across submits, and a per-host container
index makes host teardown O(containers on that host).  With
``host_lease_ttl_s`` set, host liveness is a KV **lease**: one
keepalive pump refreshes every host's lease, and a host whose
keepalives stop is detected by lease expiry — its ``/cluster/hosts/``
key is deleted by the store itself and the orchestrator reacts through
the lease's expiry hook, not through explicit ``fail_host`` calls.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from ..errors import OrchestrationError, PlacementError, UnknownContainer
from ..hardware.host import Host
from ..telemetry import events as _events
from ..telemetry import registry as _registry
from ..hardware.vm import VirtualMachine
from .container import Container, ContainerSpec, ContainerStatus
from .fabric import FabricController
from .kvstore import KeyValueStore, Lease
from .scheduler import PlacementStrategy, SpreadStrategy

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.scheduler import Environment

__all__ = ["ClusterOrchestrator", "DEFAULT_RACK"]

#: Rack assigned to hosts registered without one (small-testbed mode).
DEFAULT_RACK = "rack0"


class ClusterOrchestrator:
    """Central controller for a fleet of hosts/VMs and their containers."""

    def __init__(
        self,
        env: "Environment",
        strategy: Optional[PlacementStrategy] = None,
        fabric_controller: Optional[FabricController] = None,
        kvstore: Optional[KeyValueStore] = None,
        host_lease_ttl_s: Optional[float] = None,
    ) -> None:
        self.env = env
        self.strategy = strategy or SpreadStrategy()
        self.fabric_controller = fabric_controller or FabricController()
        self.kv = kvstore or KeyValueStore(env)
        self._hosts: dict[str, Host] = {}
        self._vms: dict[str, VirtualMachine] = {}
        self._containers: dict[str, Container] = {}
        self._down_hosts: set[str] = set()
        # -- rack shards ----------------------------------------------------
        self._rack_of: dict[str, str] = {}
        #: rack -> {host name -> Host}, *up* hosts only, insertion order.
        self._racks: dict[str, dict[str, Host]] = {}
        self._rack_load: dict[str, int] = {}
        # -- incremental accounting ----------------------------------------
        #: host name -> containers currently placed there (not STOPPED).
        self._load: dict[str, int] = {}
        #: host name -> {container name -> None} (ordered set).
        self._by_host: dict[str, dict[str, None]] = {}
        #: Cached tuple of up hosts; rebuilt only on membership change.
        self._up_cache: Optional[tuple[Host, ...]] = None
        # -- lease-backed liveness -----------------------------------------
        self.host_lease_ttl_s = host_lease_ttl_s
        self._host_leases: dict[str, Lease] = {}
        self._silenced: set[str] = set()
        self._keepalive_proc = None

    # -- fleet management ---------------------------------------------------------

    def add_host(self, host: Host, rack: Optional[str] = None) -> None:
        if host.name in self._hosts:
            raise OrchestrationError(f"host {host.name!r} already registered")
        self._hosts[host.name] = host
        rack = rack or DEFAULT_RACK
        self._rack_of[host.name] = rack
        self._racks.setdefault(rack, {})[host.name] = host
        self._rack_load.setdefault(rack, 0)
        self._load[host.name] = 0
        self._by_host[host.name] = {}
        self._up_cache = None
        record = {
            "cores": host.cpu.cores,
            "rdma": host.rdma_capable,
            "dpdk": host.dpdk_capable,
            "rack": rack,
        }
        if self.host_lease_ttl_s is not None:
            lease = self.kv.grant(
                self.host_lease_ttl_s,
                on_expire=lambda _l, name=host.name: self._host_lease_expired(name),
            )
            self._host_leases[host.name] = lease
            self.kv.put(f"/cluster/hosts/{host.name}", record, lease=lease)
            if self._keepalive_proc is None:
                self._keepalive_proc = self.env.process(self._keepalive_pump())
        else:
            self.kv.put(f"/cluster/hosts/{host.name}", record)
        registry = _registry.ACTIVE
        if registry is not None:
            registry.register_host(host)
            registry.register_cluster(self)

    def add_vm(self, vm: VirtualMachine) -> None:
        if vm.name in self._vms:
            raise OrchestrationError(f"VM {vm.name!r} already registered")
        if vm.host.name not in self._hosts:
            raise OrchestrationError(
                f"VM {vm.name!r} runs on unregistered host {vm.host.name!r}"
            )
        self._vms[vm.name] = vm
        self.fabric_controller.register(vm)
        self.kv.put(f"/cluster/vms/{vm.name}", {"host": vm.host.name})

    @property
    def hosts(self) -> Sequence[Host]:
        return tuple(self._hosts.values())

    def host(self, name: str) -> Host:
        try:
            return self._hosts[name]
        except KeyError:
            raise OrchestrationError(f"unknown host {name!r}") from None

    # -- rack topology ---------------------------------------------------------

    def rack_of(self, host_name: str) -> str:
        try:
            return self._rack_of[host_name]
        except KeyError:
            raise OrchestrationError(f"unknown host {host_name!r}") from None

    def rack_names(self) -> tuple[str, ...]:
        return tuple(self._racks)

    def rack_hosts(self, rack: str) -> Sequence[Host]:
        """The *up* hosts currently in ``rack`` (registration order)."""
        return tuple(self._racks.get(rack, {}).values())

    def rack_load(self, rack: str) -> int:
        return self._rack_load.get(rack, 0)

    def load_of(self, host_name: str) -> int:
        """Containers currently placed on ``host_name`` (not stopped)."""
        return self._load.get(host_name, 0)

    def containers_on(self, host_name: str) -> tuple[str, ...]:
        """Names of containers currently recorded on ``host_name``."""
        return tuple(self._by_host.get(host_name, ()))

    # -- container lifecycle ---------------------------------------------------------

    def submit(self, spec: ContainerSpec) -> Container:
        """Place and start a container."""
        if spec.name in self._containers:
            raise OrchestrationError(f"container {spec.name!r} already exists")
        host, vm = self._resolve_placement(spec)
        container = Container(spec, host, vm)
        container.start()
        self._containers[spec.name] = container
        self._account_place(spec.name, host.name)
        self._publish(container)
        _events.emit(self.env, "container.submit", container=spec.name,
                     host=host.name,
                     vm=vm.name if vm is not None else "")
        return container

    def _resolve_placement(self, spec: ContainerSpec):
        if spec.pinned_host is not None:
            if spec.pinned_host in self._down_hosts:
                raise PlacementError(
                    f"pinned host {spec.pinned_host!r} is down"
                )
            if spec.pinned_host in self._vms:
                vm = self._vms[spec.pinned_host]
                return vm.host, vm
            if spec.pinned_host in self._hosts:
                return self._hosts[spec.pinned_host], None
            raise PlacementError(
                f"pinned location {spec.pinned_host!r} is not a known host or VM"
            )
        candidates = self._up_cache
        if candidates is None:
            candidates = self._up_cache = tuple(
                host for name, host in self._hosts.items()
                if name not in self._down_hosts
            )
        host = self.strategy.place(spec, candidates, self._load)
        if host.name not in self._hosts:
            raise PlacementError(
                f"strategy returned unregistered host {host.name!r}"
            )
        return host, None

    def _load_by_host(self) -> dict[str, int]:
        """Per-host count of placed containers (incrementally maintained;
        returns a copy so strategies cannot corrupt the books)."""
        return dict(self._load)

    # -- incremental load/index bookkeeping ------------------------------------

    def _account_place(self, name: str, host_name: str) -> None:
        self._load[host_name] = self._load.get(host_name, 0) + 1
        rack = self._rack_of.get(host_name)
        if rack is not None:
            self._rack_load[rack] += 1
        self._by_host.setdefault(host_name, {})[name] = None

    def _account_remove(self, name: str, host_name: str) -> None:
        count = self._load.get(host_name, 0)
        if count > 0:
            self._load[host_name] = count - 1
            rack = self._rack_of.get(host_name)
            if rack is not None and self._rack_load.get(rack, 0) > 0:
                self._rack_load[rack] -= 1
        by_host = self._by_host.get(host_name)
        if by_host is not None:
            by_host.pop(name, None)

    def container(self, name: str) -> Container:
        try:
            return self._containers[name]
        except KeyError:
            raise UnknownContainer(f"no container named {name!r}") from None

    def containers(self, tenant: Optional[str] = None) -> list[Container]:
        found = list(self._containers.values())
        if tenant is not None:
            found = [c for c in found if c.tenant == tenant]
        return found

    def stop(self, name: str) -> None:
        container = self.container(name)
        if container.status is not ContainerStatus.STOPPED:
            self._account_remove(name, container.host.name)
        container.stop()
        self.kv.delete(f"/cluster/containers/{name}")

    def remove(self, name: str) -> None:
        """Forget a container entirely (it can be resubmitted by name)."""
        container = self._containers.pop(name, None)
        if container is not None:
            if container.status is not ContainerStatus.STOPPED:
                self._account_remove(name, container.host.name)
            container.stop()
            self.kv.delete(f"/cluster/containers/{name}")

    # -- failure handling (§2.1: "a stopped container can be quickly
    # replaced by a new one on the same or another host") -----------------

    def fail_host(self, host_name: str) -> list[str]:
        """A host dies: its containers are lost; it leaves the pool.

        Returns the names of the containers that were lost so callers
        (and FreeFlow's network layer) can react.  On a lease-backed
        fleet this revokes the host's lease (the store emits the
        DELETE); the silent-death path — keepalives just stop — flows
        through :meth:`_host_lease_expired` instead.
        """
        self.host(host_name)  # raises on unknown
        lease = self._host_leases.pop(host_name, None)
        if lease is not None and lease.alive:
            self.kv.revoke(lease)
        else:
            self.kv.delete(f"/cluster/hosts/{host_name}")
        return self._mark_host_down(host_name)

    def _host_lease_expired(self, host_name: str) -> None:
        """Expiry hook: the store already deleted the host's keys."""
        self._host_leases.pop(host_name, None)
        _events.emit(self.env, "host.lease_expired", host=host_name)
        self._mark_host_down(host_name)

    def _mark_host_down(self, host_name: str) -> list[str]:
        self._down_hosts.add(host_name)
        self._up_cache = None
        rack = self._rack_of.get(host_name)
        if rack is not None:
            self._racks.get(rack, {}).pop(host_name, None)
        host = self._hosts[host_name]
        lost = [
            name for name in self.containers_on(host_name)
            if self._containers.get(name) is not None
            and self._containers[name].host is host
            and self._containers[name].status is not ContainerStatus.STOPPED
        ]
        for name in lost:
            self.remove(name)
        return lost

    def recover_host(self, host_name: str) -> None:
        """Bring a previously failed host back into the pool."""
        host = self.host(host_name)
        self._down_hosts.discard(host_name)
        self._up_cache = None
        rack = self._rack_of.get(host_name, DEFAULT_RACK)
        self._racks.setdefault(rack, {})[host_name] = host
        record = {
            "cores": host.cpu.cores,
            "rdma": host.rdma_capable,
            "dpdk": host.dpdk_capable,
            "rack": rack,
        }
        if self.host_lease_ttl_s is not None:
            lease = self.kv.grant(
                self.host_lease_ttl_s,
                on_expire=lambda _l, name=host_name: self._host_lease_expired(name),
            )
            self._host_leases[host_name] = lease
            self._silenced.discard(host_name)
            self.kv.put(f"/cluster/hosts/{host.name}", record, lease=lease)
            if self._keepalive_proc is None:
                self._keepalive_proc = self.env.process(self._keepalive_pump())
        else:
            self.kv.put(f"/cluster/hosts/{host.name}", record)
        _events.emit(self.env, "host.recover", host=host_name)

    # -- lease keepalive -------------------------------------------------------

    def silence_keepalives(self, host_name: str, silenced: bool = True) -> None:
        """Stop (or resume) refreshing a host's lease — the failure
        injection seam for "the host went silent": its lease lapses a
        TTL later and the fleet learns via the DELETE cascade."""
        if silenced:
            self._silenced.add(host_name)
        else:
            self._silenced.discard(host_name)

    def _keepalive_pump(self):
        """One process heartbeats every live host lease at TTL/3 — the
        per-host agent heartbeat, aggregated (O(log leases) per refresh,
        no per-host process)."""
        ttl = self.host_lease_ttl_s
        while True:
            yield self.env.timeout(ttl / 3.0)
            if not self._host_leases:
                continue
            for name, lease in list(self._host_leases.items()):
                if name in self._silenced or not lease.alive:
                    continue
                self.kv.keepalive(lease)

    def host_lease(self, host_name: str) -> Optional[Lease]:
        return self._host_leases.get(host_name)

    def watch_hosts(self, coalesce_s: Optional[float] = None):
        """Watch host liveness: a DELETE under ``/cluster/hosts/`` is a
        host failure, a PUT is an admission or recovery.  This is the
        feed the flow reconciler subscribes to (paper §2.1's
        failure-mitigation story, made push-style)."""
        return self.kv.watch("/cluster/hosts/", coalesce_s=coalesce_s)

    def is_host_up(self, host_name: str) -> bool:
        return host_name in self._hosts and host_name not in self._down_hosts

    def relocate(self, name: str, destination: str) -> Container:
        """Move a container to another host/VM (the migration primitive).

        The heavy lifting (copying state, draining connections) is the
        job of :mod:`repro.core.migration`; this just flips the placement
        record and publishes the change.
        """
        container = self.container(name)
        old_host = container.host.name
        if destination in self._vms:
            vm = self._vms[destination]
            container.relocate(vm.host, vm)
        elif destination in self._hosts:
            container.relocate(self._hosts[destination], None)
        else:
            raise PlacementError(f"unknown destination {destination!r}")
        if container.status is not ContainerStatus.STOPPED:
            self._account_remove(name, old_host)
            self._account_place(name, container.host.name)
        self._publish(container)
        _events.emit(self.env, "container.migrate", container=name,
                     destination=destination,
                     generation=container.generation)
        return container

    # -- the query surface FreeFlow consumes ----------------------------------------

    def locate(self, name: str) -> Host:
        """Physical host of a container, resolving any VM indirection
        through the fabric controller (paper §4.2)."""
        container = self.container(name)
        if container.vm is not None:
            return self.fabric_controller.physical_host_of(container.vm.name)
        return container.host

    def _publish(self, container: Container) -> None:
        self.kv.put(f"/cluster/containers/{container.name}", {
            "tenant": container.tenant,
            "host": container.host.name,
            "vm": container.vm.name if container.vm is not None else None,
            "generation": container.generation,
        })

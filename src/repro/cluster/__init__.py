"""Cluster management substrate (S6/S7): the Mesos/Kubernetes stand-in.

Container lifecycle and placement, the VM fabric controller, and the
etcd-like KV store whose watches feed FreeFlow's network orchestrator.
"""

from .container import Container, ContainerSpec, ContainerStatus
from .fabric import FabricController
from .kvstore import ABSENT, KeyValueStore, Lease, Watch, WatchBatch, WatchEvent
from .orchestrator import ClusterOrchestrator
from .scheduler import (
    AffinityStrategy,
    BinPackStrategy,
    PlacementStrategy,
    RackAwareStrategy,
    RoundRobinStrategy,
    SpreadStrategy,
)

__all__ = [
    "ABSENT",
    "AffinityStrategy",
    "BinPackStrategy",
    "ClusterOrchestrator",
    "Container",
    "ContainerSpec",
    "ContainerStatus",
    "FabricController",
    "KeyValueStore",
    "Lease",
    "PlacementStrategy",
    "RackAwareStrategy",
    "RoundRobinStrategy",
    "SpreadStrategy",
    "Watch",
    "WatchBatch",
    "WatchEvent",
]

"""Containers: the unit FreeFlow networks together.

A container here is the *deployment* record — name, tenant, resource
shape, where it runs (bare-metal host or VM), lifecycle status — plus the
handles applications need (its host's CPU for running workload processes,
its assigned overlay IP once the network orchestrator allocates one).

Trust is modelled per-tenant: the paper's isolation compromise is only
offered "among trusted containers, for example, container belongs to the
same vendor" (§7), so the policy engine consults :meth:`trusts`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from ..hardware.host import Host
    from ..hardware.vm import VirtualMachine

__all__ = ["ContainerStatus", "ContainerSpec", "Container"]


class ContainerStatus(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    MIGRATING = "migrating"
    STOPPED = "stopped"


@dataclass(frozen=True)
class ContainerSpec:
    """What the user asks the cluster orchestrator to run."""

    name: str
    tenant: str = "default"
    image: str = "scratch"
    cpu_shares: float = 1.0
    memory_bytes: float = 1e9
    labels: dict = field(default_factory=dict)
    #: Pin to a specific host/VM by name (None = let the scheduler pick).
    pinned_host: Optional[str] = None
    #: Manually requested overlay IP (None = IPAM allocates).
    requested_ip: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("container needs a name")
        if self.cpu_shares <= 0:
            raise ValueError(f"cpu_shares must be positive, got {self.cpu_shares}")
        if self.memory_bytes <= 0:
            raise ValueError(f"memory_bytes must be positive, got {self.memory_bytes}")


class Container:
    """A placed container instance."""

    def __init__(
        self,
        spec: ContainerSpec,
        host: "Host",
        vm: Optional["VirtualMachine"] = None,
    ) -> None:
        if vm is not None and vm.host is not host:
            raise ValueError(f"VM {vm.name} does not run on host {host.name}")
        self.spec = spec
        self.host = host
        self.vm = vm
        self.status = ContainerStatus.PENDING
        self.ip: Optional[str] = None
        #: Monotonic placement generation — bumps on every (re)placement,
        #: so stale cached locations are detectable.
        self.generation = 1

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def tenant(self) -> str:
        return self.spec.tenant

    @property
    def env(self):
        return self.host.env

    def trusts(self, other: "Container") -> bool:
        """Paper §7: isolation may only be relaxed between trusted peers."""
        return self.tenant == other.tenant

    def colocated(self, other: "Container") -> bool:
        """Same physical machine (regardless of VM boundaries)."""
        return self.host is other.host

    def same_vm(self, other: "Container") -> bool:
        return self.vm is not None and self.vm is other.vm

    def start(self) -> None:
        if self.status is ContainerStatus.STOPPED:
            raise RuntimeError(f"container {self.name} was stopped")
        self.status = ContainerStatus.RUNNING

    def stop(self) -> None:
        self.status = ContainerStatus.STOPPED

    def relocate(self, host: "Host", vm: Optional["VirtualMachine"] = None) -> None:
        """Move the record to a new placement (migration support)."""
        if vm is not None and vm.host is not host:
            raise ValueError(f"VM {vm.name} does not run on host {host.name}")
        self.host = host
        self.vm = vm
        self.generation += 1

    @property
    def location(self) -> str:
        """Human-readable placement, e.g. ``host1`` or ``host1/vm0``."""
        if self.vm is not None:
            return f"{self.host.name}/{self.vm.name}"
        return self.host.name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Container {self.name} tenant={self.tenant} at {self.location} "
            f"{self.status.value}>"
        )

"""The cloud fabric controller: VM → physical machine authority.

When containers run inside VMs (deployment cases (c)/(d) of the paper's
Fig. 2), the cluster orchestrator only knows which *VM* a container is
in; whether two VMs share a physical machine is information only the
cloud provider's fabric controller has.  FreeFlow's network orchestrator
"also needs to know which physical machine each VM is located (from
fabric controllers)" (§4.2) — this module is that source of truth.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..errors import OrchestrationError
from ..hardware.vm import VirtualMachine

if TYPE_CHECKING:  # pragma: no cover
    from ..hardware.host import Host

__all__ = ["FabricController"]


class FabricController:
    """Tracks VM placements across the physical fleet."""

    def __init__(self) -> None:
        self._vms: dict[str, VirtualMachine] = {}

    def register(self, vm: VirtualMachine) -> None:
        if vm.name in self._vms:
            raise OrchestrationError(f"VM {vm.name!r} already registered")
        self._vms[vm.name] = vm

    def deregister(self, vm_name: str) -> None:
        self._vms.pop(vm_name, None)

    def vm(self, name: str) -> VirtualMachine:
        try:
            return self._vms[name]
        except KeyError:
            raise OrchestrationError(f"unknown VM {name!r}") from None

    def physical_host_of(self, vm_name: str) -> "Host":
        """The query FreeFlow's orchestrator issues (paper §4.2)."""
        return self.vm(vm_name).host

    def colocated(self, vm_a: str, vm_b: str) -> bool:
        """Do two VMs share a physical machine?"""
        return self.physical_host_of(vm_a) is self.physical_host_of(vm_b)

    def vms_on(self, host: "Host") -> list[VirtualMachine]:
        return [vm for vm in self._vms.values() if vm.host is host]

    def __len__(self) -> int:
        return len(self._vms)

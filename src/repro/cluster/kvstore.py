"""An etcd-like key-value store with prefix watches (substrate S7).

Container orchestrators keep their cluster state in exactly this shape
of store, and FreeFlow's network orchestrator needs both point lookups
("where is container X right now?") and change notification ("tell my
agents when X moves") — the paper's library "keeps pulling the newest
container location information from the network orchestrator" (§3.2);
watches are the efficient push-style equivalent we also provide.

The store is synchronous in simulated time (an in-process data
structure); RPC latency to reach it is modelled by the *callers* (see
:class:`repro.core.orchestrator.NetworkOrchestrator`), so control-plane
cost ablations can vary it without touching the store.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator, Optional

from ..sim.resources import Store

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.scheduler import Environment

__all__ = ["ABSENT", "KeyValueStore", "WatchEvent", "Watch"]


class _Absent:
    """Sentinel for :meth:`KeyValueStore.compare_and_put`: "the key must
    not exist".  A dedicated singleton (rather than ``None``) so a key
    explicitly stored as ``None`` can still be CAS-updated."""

    _instance = None

    def __new__(cls) -> "_Absent":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<ABSENT>"


#: Pass as ``expected`` to :meth:`KeyValueStore.compare_and_put` to mean
#: create-if-absent.
ABSENT = _Absent()


@dataclass(frozen=True)
class WatchEvent:
    """One change notification: PUT or DELETE of a key."""

    kind: str  # "put" | "delete"
    key: str
    value: Any
    revision: int


class Watch:
    """A live subscription to changes under a key prefix.

    Iterate with ``event = yield watch.queue.get()`` inside a process,
    or drain synchronously in tests with :meth:`pending`.
    """

    def __init__(self, store: "KeyValueStore", prefix: str) -> None:
        self._store = store
        self.prefix = prefix
        self.queue: Store = Store(store.env)
        self.cancelled = False

    def pending(self) -> list[WatchEvent]:
        """Non-blocking drain of already-delivered events."""
        events = list(self.queue.items)
        self.queue.items.clear()
        return events

    def cancel(self) -> None:
        self.cancelled = True
        self._store._watches.discard(self)

    def resync(self) -> int:
        """Replay the current state under the prefix into the queue.

        The reconnect primitive: a watcher that suspects it missed
        deliveries (its connection to the store was dropped, delayed or
        lossy) calls ``resync()`` and receives one synthetic PUT per
        live key, at the store's current revision, through the same
        queue as live changes — etcd's "watch from the current revision
        after a compaction" dance.  Deletions that were missed do not
        replay (the key is gone); consumers that track a view must diff
        it against the replayed set (see
        :meth:`repro.core.flows.FlowReconciler.resync`).  Returns the
        number of events queued; a cancelled watch replays nothing.
        """
        if self.cancelled:
            return 0
        return self._store.resync(self)


class KeyValueStore:
    """Hierarchical (slash-separated) keys, revisions and prefix watches."""

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self._data: dict[str, Any] = {}
        self._revisions = itertools.count(1)
        self.revision = 0
        self._watches: set[Watch] = set()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def put(self, key: str, value: Any) -> int:
        """Set ``key`` to ``value``; returns the new store revision."""
        self._validate(key)
        self._data[key] = value
        self.revision = next(self._revisions)
        self._notify(WatchEvent("put", key, value, self.revision))
        return self.revision

    def get(self, key: str, default: Any = None) -> Any:
        return self._data.get(key, default)

    def delete(self, key: str) -> bool:
        """Remove ``key``; returns True if it existed."""
        if key not in self._data:
            return False
        value = self._data.pop(key)
        self.revision = next(self._revisions)
        self._notify(WatchEvent("delete", key, value, self.revision))
        return True

    def keys(self, prefix: str = "") -> list[str]:
        return sorted(k for k in self._data if k.startswith(prefix))

    def items(self, prefix: str = "") -> Iterator[tuple[str, Any]]:
        for key in self.keys(prefix):
            yield key, self._data[key]

    def watch(self, prefix: str = "", include_existing: bool = False) -> Watch:
        """Subscribe to future changes under ``prefix``.

        With ``include_existing=True`` the current state under the prefix
        is replayed into the queue first, as synthetic PUT events at the
        store's current revision — an etcd-style "watch from revision 0".
        Reconcilers use this so a late subscriber still sees every key it
        is responsible for, through the same queue as live changes.
        """
        watch = Watch(self, prefix)
        self._watches.add(watch)
        if include_existing:
            self.resync(watch)
        return watch

    def compare_and_put(self, key: str, expected: Any, value: Any) -> bool:
        """Atomic update: succeeds only if the current value equals
        ``expected`` (use the :data:`ABSENT` sentinel for
        create-if-absent).

        ``expected=None`` means "the key holds a stored ``None``" — it
        does *not* match a missing key, so a create/update race on a
        ``None``-valued key cannot be mistaken for creation.
        """
        current = self._data.get(key, ABSENT)
        if current is not expected and current != expected:
            return False
        self.put(key, value)
        return True

    def resync(self, watch: Watch) -> int:
        """Queue a snapshot of ``watch``'s prefix as synthetic PUTs
        (see :meth:`Watch.resync`)."""
        count = 0
        for key in self.keys(watch.prefix):
            watch.queue.put(
                WatchEvent("put", key, self._data[key], self.revision)
            )
            count += 1
        return count

    # -- internals ------------------------------------------------------------

    @staticmethod
    def _validate(key: str) -> None:
        if not key or not isinstance(key, str):
            raise ValueError(f"bad key {key!r}")
        if key != key.strip():
            raise ValueError(f"key has surrounding whitespace: {key!r}")

    def _notify(self, event: WatchEvent) -> None:
        for watch in list(self._watches):
            if not watch.cancelled and event.key.startswith(watch.prefix):
                watch.queue.put(event)

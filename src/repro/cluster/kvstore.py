"""An etcd-like key-value store with prefix watches (substrate S7).

Container orchestrators keep their cluster state in exactly this shape
of store, and FreeFlow's network orchestrator needs both point lookups
("where is container X right now?") and change notification ("tell my
agents when X moves") — the paper's library "keeps pulling the newest
container location information from the network orchestrator" (§3.2);
watches are the efficient push-style equivalent we also provide.

The store is synchronous in simulated time (an in-process data
structure); RPC latency to reach it is modelled by the *callers* (see
:class:`repro.core.orchestrator.NetworkOrchestrator`), so control-plane
cost ablations can vary it without touching the store.

Datacenter-scale machinery (DESIGN.md §15):

* **Indexed watch dispatch** — keys and watch prefixes share one
  segment trie, so a put/delete touches O(key-depth) trie nodes plus
  the watchers actually hanging off that path, instead of scanning
  every registered watch.  ``dispatch_checks`` counts candidate tests
  so the property is testable, not just asserted.
* **Leases** — etcd-style TTL sessions: keys attached to a lease are
  deleted together (emitting ordinary DELETE events) when the lease
  lapses.  Host liveness becomes "keepalive the lease" instead of
  explicit ``fail_host`` bookkeeping.  One lazy expiry timer serves
  every lease; keepalives are O(log leases), not one process each.
* **Revision history + compaction** — a bounded deque of recent events
  enables *precise* resync (``resync(since=revision)`` replays exactly
  the missed events, deletes included); :exc:`~repro.errors.CompactedRevision`
  signals the horizon passed and callers fall back to snapshot resync.
* **Coalesced delivery** — ``watch(prefix, coalesce_s=...)`` buffers
  events per key for a flush window and delivers one
  :class:`WatchBatch`; multiple PUTs to one key collapse to the latest
  (per-key ordering preserved — the TSoR lesson: batch everything that
  crosses a layer boundary).
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Any, Callable, Iterator, Optional

from ..errors import CompactedRevision, LeaseError
from ..sim.events import Timeout
from ..sim.resources import Store

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.scheduler import Environment

__all__ = [
    "ABSENT",
    "KeyValueStore",
    "WatchEvent",
    "WatchBatch",
    "Watch",
    "Lease",
]


class _Absent:
    """Sentinel for :meth:`KeyValueStore.compare_and_put`: "the key must
    not exist".  A dedicated singleton (rather than ``None``) so a key
    explicitly stored as ``None`` can still be CAS-updated."""

    _instance = None

    def __new__(cls) -> "_Absent":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<ABSENT>"


#: Pass as ``expected`` to :meth:`KeyValueStore.compare_and_put` to mean
#: create-if-absent.
ABSENT = _Absent()


@dataclass(frozen=True)
class WatchEvent:
    """One change notification: PUT or DELETE of a key."""

    kind: str  # "put" | "delete"
    key: str
    value: Any
    revision: int


@dataclass(frozen=True)
class WatchBatch:
    """A coalesced delivery: at most one event per key, first-touch key
    order, each event the *latest* for its key within the flush window.

    Delivered as a single queue item by watches opened with
    ``coalesce_s=...``; iterate it like a list of events.
    """

    events: tuple[WatchEvent, ...]

    def __iter__(self) -> Iterator[WatchEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)


class _Node:
    """One segment of the shared key/watch prefix trie."""

    __slots__ = ("children", "entries", "key")

    def __init__(self) -> None:
        self.children: dict[str, _Node] = {}
        #: Watches whose prefix ends inside this node's segment span:
        #: ``(partial, watch)`` matches keys whose next segment starts
        #: with ``partial`` ("" for prefixes ending in "/").
        self.entries: list[tuple[str, Watch]] = []
        #: Full key string if a live key terminates here, else None.
        self.key: Optional[str] = None


class Lease(object):
    """An etcd-style TTL session: keys attached to it die with it."""

    __slots__ = ("lease_id", "ttl_s", "deadline", "keys", "alive", "on_expire")

    def __init__(
        self,
        lease_id: int,
        ttl_s: float,
        deadline: float,
        on_expire: Optional[Callable[["Lease"], None]],
    ) -> None:
        self.lease_id = lease_id
        self.ttl_s = ttl_s
        self.deadline = deadline
        #: Attached keys as an insertion-ordered set (dict keys), so the
        #: expiry DELETE cascade is deterministic (SIM001).
        self.keys: dict[str, None] = {}
        self.alive = True
        self.on_expire = on_expire

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "alive" if self.alive else "dead"
        return (f"<Lease {self.lease_id} {state} ttl={self.ttl_s} "
                f"keys={len(self.keys)}>")


class Watch:
    """A live subscription to changes under a key prefix.

    Iterate with ``event = yield watch.queue.get()`` inside a process,
    or drain synchronously in tests with :meth:`pending`.  A watch
    opened with ``coalesce_s`` receives :class:`WatchBatch` items
    instead of single events.
    """

    def __init__(
        self,
        store: "KeyValueStore",
        prefix: str,
        coalesce_s: Optional[float] = None,
    ) -> None:
        self._store = store
        self.prefix = prefix
        self.queue: Store = Store(store.env)
        self.cancelled = False
        #: Flush window for coalesced delivery; None = deliver per event.
        self.coalesce_s = coalesce_s
        #: Highest revision delivered (or buffered) to this watch; the
        #: ``since`` anchor for a precise :meth:`resync`.  A fresh watch
        #: anchors at the store's current revision: it has missed
        #: nothing that happened before it existed.
        self.last_revision = store.revision
        #: Coalescing buffer: key -> latest event, first-touch order.
        self._buffer: dict[str, WatchEvent] = {}

    def has_pending(self) -> bool:
        """True if any delivery (queued or still buffered) is pending."""
        return bool(self.queue.items) or bool(self._buffer)

    def pending(self) -> list[WatchEvent]:
        """Non-blocking drain of already-delivered events.

        Flushes the coalescing buffer first and flattens batches, so a
        synchronous consumer sees every event known at call time.
        """
        if self._buffer:
            self._flush()
        events: list[WatchEvent] = []
        for item in self.queue.drain():
            if type(item) is WatchBatch:
                events.extend(item.events)
            else:
                events.append(item)
        return events

    def cancel(self) -> None:
        self.cancelled = True
        self._buffer.clear()
        self._store._unindex_watch(self)

    def resync(self, since: Optional[int] = None) -> int:
        """Replay state or history under the prefix into the queue.

        The reconnect primitive: a watcher that suspects it missed
        deliveries (its connection to the store was dropped, delayed or
        lossy) calls ``resync()`` and recovers through the same queue as
        live changes.  Two modes:

        * ``since=None`` — snapshot replay: one synthetic PUT per live
          key, at the store's current revision — etcd's "watch from the
          current revision after a compaction" dance.  Deletions that
          were missed do not replay (the key is gone); consumers that
          track a view must diff it against the replayed set (see
          :meth:`repro.core.flows.FlowReconciler.resync`).
        * ``since=revision`` — precise replay from the revision history:
          exactly the events after ``revision`` under the prefix,
          missed DELETEs included.  Raises
          :exc:`~repro.errors.CompactedRevision` when ``revision``
          predates the compaction horizon; fall back to a snapshot.

        Returns the number of events queued; a cancelled watch replays
        nothing.
        """
        if self.cancelled:
            return 0
        if since is None:
            return self._store.resync(self)
        return self._store.replay_history(self, since)

    # -- internals ------------------------------------------------------------

    def _flush(self) -> None:
        """Deliver the coalescing buffer as one :class:`WatchBatch`."""
        if not self._buffer:
            return
        if self.cancelled:
            self._buffer.clear()
            return
        batch = WatchBatch(tuple(self._buffer.values()))
        self._buffer.clear()
        self.queue.put(batch)


class KeyValueStore:
    """Hierarchical (slash-separated) keys, revisions, prefix watches,
    leases and bounded revision history."""

    def __init__(
        self, env: "Environment", history_limit: int = 4096
    ) -> None:
        if history_limit <= 0:
            raise ValueError(f"history_limit must be positive, got {history_limit}")
        self.env = env
        self._data: dict[str, Any] = {}
        self._revisions = itertools.count(1)
        self.revision = 0
        self._watches: set[Watch] = set()
        #: Shared key/watch-prefix trie (watch dispatch + prefix listing).
        self._root = _Node()
        #: Recent events for precise resync; older revisions are compacted.
        self.history_limit = history_limit
        self._history: deque[WatchEvent] = deque()
        #: Highest revision compacted away (0 = full history retained).
        self.compacted_revision = 0
        # -- leases ---------------------------------------------------------
        self._lease_ids = itertools.count(1)
        self._leases: dict[int, Lease] = {}
        #: Lazy-deletion deadline heap: (deadline, lease_id).  Stale
        #: entries (lease refreshed or dead) are skipped at pop time.
        self._lease_heap: list[tuple[float, int]] = []
        self._key_lease: dict[str, Lease] = {}
        #: Deadline the armed expiry timer fires at (None = not armed).
        self._expiry_armed_at: Optional[float] = None
        # -- dispatch accounting (the "no full scan" property is tested
        # against these, not just asserted) ---------------------------------
        self.dispatch_events = 0
        self.dispatch_checks = 0
        self.dispatch_deliveries = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    # -- reads/writes ----------------------------------------------------------

    def put(self, key: str, value: Any, lease: Optional[Lease] = None) -> int:
        """Set ``key`` to ``value``; returns the new store revision.

        With ``lease=``, the key is attached to that lease and will be
        deleted when it expires or is revoked.  A plain put *detaches*
        the key from any previous lease (etcd semantics).
        """
        self._validate(key)
        if lease is not None and not lease.alive:
            raise LeaseError(
                f"lease {lease.lease_id} is no longer alive"
            )
        if key not in self._data:
            self._index_key(key)
        self._data[key] = value
        old = self._key_lease.pop(key, None)
        if old is not None and old is not lease:
            old.keys.pop(key, None)
        if lease is not None:
            self._key_lease[key] = lease
            lease.keys[key] = None
        self.revision = next(self._revisions)
        event = WatchEvent("put", key, value, self.revision)
        self._record(event)
        self._notify(event)
        return self.revision

    def get(self, key: str, default: Any = None) -> Any:
        return self._data.get(key, default)

    def delete(self, key: str) -> bool:
        """Remove ``key``; returns True if it existed."""
        if key not in self._data:
            return False
        value = self._data.pop(key)
        self._unindex_key(key)
        old = self._key_lease.pop(key, None)
        if old is not None:
            old.keys.pop(key, None)
        self.revision = next(self._revisions)
        event = WatchEvent("delete", key, value, self.revision)
        self._record(event)
        self._notify(event)
        return True

    def keys(self, prefix: str = "") -> list[str]:
        """Sorted keys under ``prefix`` — trie-backed, O(result)."""
        segments = prefix.split("/")
        node = self._root
        for segment in segments[:-1]:
            node = node.children.get(segment)
            if node is None:
                return []
        partial = segments[-1]
        found: list[str] = []
        for segment, child in node.children.items():
            if segment.startswith(partial):
                self._collect(child, found)
        found.sort()
        return found

    def items(self, prefix: str = "") -> Iterator[tuple[str, Any]]:
        for key in self.keys(prefix):
            yield key, self._data[key]

    def watch(
        self,
        prefix: str = "",
        include_existing: bool = False,
        coalesce_s: Optional[float] = None,
        start_revision: Optional[int] = None,
    ) -> Watch:
        """Subscribe to future changes under ``prefix``.

        With ``include_existing=True`` the current state under the prefix
        is replayed into the queue first, as synthetic PUT events at the
        store's current revision — an etcd-style "watch from revision 0".
        Reconcilers use this so a late subscriber still sees every key it
        is responsible for, through the same queue as live changes.

        With ``start_revision=r`` the retained history from revision
        ``r`` onward is replayed first (DELETEs included); raises
        :exc:`~repro.errors.CompactedRevision` if ``r`` predates the
        compaction horizon.

        With ``coalesce_s=w`` deliveries are buffered for a ``w``-second
        flush window and arrive as :class:`WatchBatch` items: one event
        per key (the latest), first-touch key order.
        """
        if coalesce_s is not None and coalesce_s < 0:
            raise ValueError(f"negative coalesce window {coalesce_s}")
        watch = Watch(self, prefix, coalesce_s)
        self._index_watch(watch)
        if start_revision is not None:
            # Anchor before the replay so a precise resync later picks
            # up from here even when no retained event matched.
            watch.last_revision = start_revision - 1
            self.replay_history(watch, start_revision - 1)
        if include_existing:
            self.resync(watch)
        return watch

    def compare_and_put(self, key: str, expected: Any, value: Any) -> bool:
        """Atomic update: succeeds only if the current value equals
        ``expected`` (use the :data:`ABSENT` sentinel for
        create-if-absent).

        ``expected=None`` means "the key holds a stored ``None``" — it
        does *not* match a missing key, so a create/update race on a
        ``None``-valued key cannot be mistaken for creation.
        """
        current = self._data.get(key, ABSENT)
        if current is not expected and current != expected:
            return False
        self.put(key, value)
        return True

    # -- leases ----------------------------------------------------------------

    def grant(
        self,
        ttl_s: float,
        on_expire: Optional[Callable[[Lease], None]] = None,
    ) -> Lease:
        """Create a lease that lapses ``ttl_s`` from now unless kept alive.

        On expiry every attached key is deleted (ordinary DELETE events,
        attachment order), then ``on_expire(lease)`` runs — the hook the
        cluster orchestrator uses to mark a host down.
        """
        if ttl_s <= 0:
            raise ValueError(f"lease ttl must be positive, got {ttl_s}")
        lease = Lease(next(self._lease_ids), ttl_s, self.env.now + ttl_s,
                      on_expire)
        self._leases[lease.lease_id] = lease
        heappush(self._lease_heap, (lease.deadline, lease.lease_id))
        self._arm_expiry()
        return lease

    def keepalive(self, lease: Lease) -> float:
        """Refresh ``lease`` to a full TTL from now; returns the deadline."""
        if not lease.alive or lease.lease_id not in self._leases:
            raise LeaseError(
                f"cannot keepalive dead lease {lease.lease_id}"
            )
        lease.deadline = self.env.now + lease.ttl_s
        heappush(self._lease_heap, (lease.deadline, lease.lease_id))
        self._arm_expiry()
        return lease.deadline

    def revoke(self, lease: Lease) -> list[str]:
        """Kill ``lease`` now, deleting its keys; returns the keys deleted."""
        if not lease.alive or lease.lease_id not in self._leases:
            raise LeaseError(f"cannot revoke dead lease {lease.lease_id}")
        return self._expire(lease, run_hook=False)

    def lease_count(self) -> int:
        return len(self._leases)

    # -- history / compaction ---------------------------------------------------

    def compact(self, revision: int) -> None:
        """Discard retained history up to and including ``revision``.

        Watchers can no longer precise-resync from at-or-before the
        compacted revision; they fall back to snapshot resync (the
        :exc:`~repro.errors.CompactedRevision` dance).
        """
        if revision > self.revision:
            raise ValueError(
                f"cannot compact future revision {revision} "
                f"(current {self.revision})"
            )
        history = self._history
        while history and history[0].revision <= revision:
            history.popleft()
        if revision > self.compacted_revision:
            self.compacted_revision = revision

    def resync(self, watch: Watch) -> int:
        """Queue a snapshot of ``watch``'s prefix as synthetic PUTs
        (see :meth:`Watch.resync`)."""
        count = 0
        for key in self.keys(watch.prefix):
            watch.queue.put(
                WatchEvent("put", key, self._data[key], self.revision)
            )
            count += 1
        if self.revision > watch.last_revision:
            watch.last_revision = self.revision
        return count

    def replay_history(self, watch: Watch, since: int) -> int:
        """Queue the retained events after revision ``since`` under
        ``watch``'s prefix — the precise resync path (DELETEs replay).

        Raises :exc:`~repro.errors.CompactedRevision` when ``since``
        predates the compaction horizon.
        """
        if since < self.compacted_revision:
            raise CompactedRevision(
                f"revision {since} predates compaction horizon "
                f"{self.compacted_revision}"
            )
        prefix = watch.prefix
        count = 0
        for event in self._history:
            if event.revision > since and event.key.startswith(prefix):
                watch.queue.put(event)
                if event.revision > watch.last_revision:
                    watch.last_revision = event.revision
                count += 1
        return count

    # -- internals ------------------------------------------------------------

    @staticmethod
    def _validate(key: str) -> None:
        if not key or not isinstance(key, str):
            raise ValueError(f"bad key {key!r}")
        if key != key.strip():
            raise ValueError(f"key has surrounding whitespace: {key!r}")

    def _record(self, event: WatchEvent) -> None:
        history = self._history
        history.append(event)
        if len(history) > self.history_limit:
            dropped = history.popleft()
            self.compacted_revision = dropped.revision

    def _notify(self, event: WatchEvent) -> None:
        """Dispatch one event to the watches indexed along its key path.

        This is the single live-delivery entry point —
        :class:`repro.chaos.faults.FaultyKVStore` wraps it to inject
        drops/delays/duplicates, so every delivery must flow through
        here (history recording deliberately does *not*: the store's
        truth is not subject to the watcher-link fault model).

        Cost: O(key segments) trie hops plus the watch entries hanging
        off that path — never a scan of all registered watches.
        """
        node = self._root
        checks = 0
        delivered = 0
        for segment in event.key.split("/"):
            entries = node.entries
            if entries:
                for partial, watch in entries:
                    checks += 1
                    if not watch.cancelled and segment.startswith(partial):
                        self._deliver(watch, event)
                        delivered += 1
            node = node.children.get(segment)
            if node is None:
                break
        self.dispatch_events += 1
        self.dispatch_checks += checks
        self.dispatch_deliveries += delivered

    def _deliver(self, watch: Watch, event: WatchEvent) -> None:
        if event.revision > watch.last_revision:
            watch.last_revision = event.revision
        if watch.coalesce_s is None:
            watch.queue.put(event)
            return
        buffer = watch._buffer
        if not buffer:
            # First event of a window: arm one flush timer.  The dict
            # replace below keeps first-touch key order while the value
            # collapses to the latest event for that key.
            timer = Timeout(self.env, watch.coalesce_s)
            timer._add_callback(lambda _e, w=watch: w._flush())
        buffer[event.key] = event

    # trie maintenance ---------------------------------------------------------

    def _index_key(self, key: str) -> None:
        node = self._root
        for segment in key.split("/"):
            child = node.children.get(segment)
            if child is None:
                child = node.children[segment] = _Node()
            node = child
        node.key = key

    def _unindex_key(self, key: str) -> None:
        segments = key.split("/")
        node = self._walk(segments)
        if node is None:  # pragma: no cover - index/data always in sync
            return
        node.key = None
        self._prune(segments)

    def _index_watch(self, watch: Watch) -> None:
        segments = watch.prefix.split("/")
        node = self._root
        for segment in segments[:-1]:
            child = node.children.get(segment)
            if child is None:
                child = node.children[segment] = _Node()
            node = child
        node.entries.append((segments[-1], watch))
        self._watches.add(watch)

    def _unindex_watch(self, watch: Watch) -> None:
        self._watches.discard(watch)
        segments = watch.prefix.split("/")
        node = self._walk(segments[:-1])
        if node is None:
            return
        entry = (segments[-1], watch)
        if entry in node.entries:
            node.entries.remove(entry)
            self._prune(segments[:-1])

    def _walk(self, segments: list[str]) -> Optional[_Node]:
        node = self._root
        for segment in segments:
            node = node.children.get(segment)
            if node is None:
                return None
        return node

    def _prune(self, segments: list[str]) -> None:
        """Drop now-empty trie nodes along ``segments``, leaf-up."""
        path = [self._root]
        for segment in segments:
            node = path[-1].children.get(segment)
            if node is None:
                return
            path.append(node)
        for depth in range(len(path) - 1, 0, -1):
            node = path[depth]
            if node.children or node.entries or node.key is not None:
                break
            del path[depth - 1].children[segments[depth - 1]]

    def _collect(self, node: _Node, out: list[str]) -> None:
        if node.key is not None:
            out.append(node.key)
        for child in node.children.values():
            self._collect(child, out)

    # lease expiry -------------------------------------------------------------

    def _arm_expiry(self) -> None:
        """Ensure a timer fires no later than the earliest lease deadline."""
        if not self._lease_heap:
            return
        deadline = self._lease_heap[0][0]
        armed = self._expiry_armed_at
        if armed is not None and armed <= deadline:
            return
        self._expiry_armed_at = deadline
        timer = Timeout(self.env, max(0.0, deadline - self.env.now))
        timer._add_callback(self._expiry_tick)

    def _expiry_tick(self, _event: object) -> None:
        self._expiry_armed_at = None
        now = self.env.now
        heap = self._lease_heap
        while heap and heap[0][0] <= now:
            _, lease_id = heappop(heap)
            lease = self._leases.get(lease_id)
            if lease is None or not lease.alive:
                continue  # revoked, or a stale entry for a dead lease
            if lease.deadline > now:
                continue  # refreshed; a fresher heap entry exists
            self._expire(lease, run_hook=True)
        self._arm_expiry()

    def _expire(self, lease: Lease, run_hook: bool) -> list[str]:
        lease.alive = False
        self._leases.pop(lease.lease_id, None)
        doomed = list(lease.keys)
        lease.keys.clear()
        for key in doomed:
            self._key_lease.pop(key, None)
            self.delete(key)
        if run_hook and lease.on_expire is not None:
            lease.on_expire(lease)
        return doomed

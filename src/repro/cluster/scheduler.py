"""Container placement strategies for the cluster orchestrator.

The paper leans on the fact that "currently most of the container
clusters are managed by centralized cluster orchestrator (e.g. Mesos,
Kubernetes, Docker Swarm)" (§3.1).  Placement policy matters to FreeFlow
because it decides how often the shared-memory fast path applies:
packing communicating containers together turns inter-host RDMA flows
into intra-host shm flows — an effect the deployment-cases bench (E11)
sweeps explicitly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, Sequence

from ..errors import PlacementError
from .container import ContainerSpec

if TYPE_CHECKING:  # pragma: no cover
    from ..hardware.host import Host

__all__ = [
    "PlacementStrategy",
    "SpreadStrategy",
    "BinPackStrategy",
    "RoundRobinStrategy",
    "AffinityStrategy",
    "RackAwareStrategy",
]


class PlacementStrategy(Protocol):
    """Chooses a host for a container given current per-host load."""

    def place(
        self,
        spec: ContainerSpec,
        hosts: Sequence["Host"],
        load: dict[str, int],
    ) -> "Host":
        """Return the chosen host; raise PlacementError if impossible."""
        ...  # pragma: no cover


def _require_hosts(hosts: Sequence["Host"]) -> None:
    if not hosts:
        raise PlacementError("no hosts registered with the orchestrator")


class SpreadStrategy:
    """Least-loaded first (Kubernetes default-ish): maximise headroom."""

    def place(self, spec, hosts, load):
        _require_hosts(hosts)
        return min(hosts, key=lambda h: (load.get(h.name, 0), h.name))


class BinPackStrategy:
    """Most-loaded first (with a per-host cap): minimise hosts used.

    Packing increases the chance two communicating containers share a
    host — the FreeFlow-friendliest placement.
    """

    def __init__(self, max_per_host: int = 64) -> None:
        if max_per_host <= 0:
            raise ValueError("max_per_host must be positive")
        self.max_per_host = max_per_host

    def place(self, spec, hosts, load):
        _require_hosts(hosts)
        candidates = [
            h for h in hosts if load.get(h.name, 0) < self.max_per_host
        ]
        if not candidates:
            raise PlacementError(
                f"all hosts at capacity ({self.max_per_host} per host)"
            )
        return max(candidates, key=lambda h: (load.get(h.name, 0), h.name))


class RoundRobinStrategy:
    """Deterministic rotation — handy for reproducible experiments."""

    def __init__(self) -> None:
        self._next = 0

    def place(self, spec, hosts, load):
        _require_hosts(hosts)
        host = hosts[self._next % len(hosts)]
        self._next += 1
        return host


class RackAwareStrategy:
    """Two-level rack-sharded placement: pick the least-loaded rack by
    average per-host load, then the least-loaded up host inside it.

    Cost per submit is O(#racks + rack size) against the orchestrator's
    incrementally-maintained shard counters — it does not scan the fleet,
    so placement cost stops scaling with host count (DESIGN.md §15).  A
    ``rack`` label on the spec pins the choice to that rack.  Without a
    bound cluster (``RackAwareStrategy()``), falls back to spreading over
    the offered candidates.
    """

    def __init__(self, cluster=None) -> None:
        #: The :class:`~repro.cluster.orchestrator.ClusterOrchestrator`
        #: whose rack shards we read; bound late by callers that build
        #: the strategy before the cluster.
        self.cluster = cluster
        self._fallback = SpreadStrategy()

    def place(self, spec, hosts, load):
        cluster = self.cluster
        if cluster is None:
            return self._fallback.place(spec, hosts, load)
        pinned_rack = spec.labels.get("rack")
        if pinned_rack is not None:
            racks = (pinned_rack,)
        else:
            racks = cluster.rack_names()
        best_rack = None
        best_key = None
        for rack in racks:
            up = len(cluster.rack_hosts(rack))
            if up == 0:
                continue
            key = (cluster.rack_load(rack) / up, rack)
            if best_key is None or key < best_key:
                best_key = key
                best_rack = rack
        if best_rack is None:
            raise PlacementError(
                f"no rack with live hosts (racks considered: {list(racks)!r})"
            )
        candidates = cluster.rack_hosts(best_rack)
        return min(candidates, key=lambda h: (load.get(h.name, 0), h.name))


class AffinityStrategy:
    """Honour an ``affinity`` label naming a container to co-locate with.

    Falls back to an inner strategy when no affinity is expressed or the
    target is unknown.
    """

    def __init__(self, locations: dict[str, str], fallback=None) -> None:
        #: Mapping container name -> host name, maintained by the caller.
        self.locations = locations
        self.fallback = fallback or SpreadStrategy()

    def place(self, spec, hosts, load):
        _require_hosts(hosts)
        target = spec.labels.get("affinity")
        if target:
            host_name = self.locations.get(target)
            if host_name is not None:
                for host in hosts:
                    if host.name == host_name:
                        return host
        return self.fallback.place(spec, hosts, load)

"""Container placement strategies for the cluster orchestrator.

The paper leans on the fact that "currently most of the container
clusters are managed by centralized cluster orchestrator (e.g. Mesos,
Kubernetes, Docker Swarm)" (§3.1).  Placement policy matters to FreeFlow
because it decides how often the shared-memory fast path applies:
packing communicating containers together turns inter-host RDMA flows
into intra-host shm flows — an effect the deployment-cases bench (E11)
sweeps explicitly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, Sequence

from ..errors import PlacementError
from .container import ContainerSpec

if TYPE_CHECKING:  # pragma: no cover
    from ..hardware.host import Host

__all__ = [
    "PlacementStrategy",
    "SpreadStrategy",
    "BinPackStrategy",
    "RoundRobinStrategy",
    "AffinityStrategy",
]


class PlacementStrategy(Protocol):
    """Chooses a host for a container given current per-host load."""

    def place(
        self,
        spec: ContainerSpec,
        hosts: Sequence["Host"],
        load: dict[str, int],
    ) -> "Host":
        """Return the chosen host; raise PlacementError if impossible."""
        ...  # pragma: no cover


def _require_hosts(hosts: Sequence["Host"]) -> None:
    if not hosts:
        raise PlacementError("no hosts registered with the orchestrator")


class SpreadStrategy:
    """Least-loaded first (Kubernetes default-ish): maximise headroom."""

    def place(self, spec, hosts, load):
        _require_hosts(hosts)
        return min(hosts, key=lambda h: (load.get(h.name, 0), h.name))


class BinPackStrategy:
    """Most-loaded first (with a per-host cap): minimise hosts used.

    Packing increases the chance two communicating containers share a
    host — the FreeFlow-friendliest placement.
    """

    def __init__(self, max_per_host: int = 64) -> None:
        if max_per_host <= 0:
            raise ValueError("max_per_host must be positive")
        self.max_per_host = max_per_host

    def place(self, spec, hosts, load):
        _require_hosts(hosts)
        candidates = [
            h for h in hosts if load.get(h.name, 0) < self.max_per_host
        ]
        if not candidates:
            raise PlacementError(
                f"all hosts at capacity ({self.max_per_host} per host)"
            )
        return max(candidates, key=lambda h: (load.get(h.name, 0), h.name))


class RoundRobinStrategy:
    """Deterministic rotation — handy for reproducible experiments."""

    def __init__(self) -> None:
        self._next = 0

    def place(self, spec, hosts, load):
        _require_hosts(hosts)
        host = hosts[self._next % len(hosts)]
        self._next += 1
        return host


class AffinityStrategy:
    """Honour an ``affinity`` label naming a container to co-locate with.

    Falls back to an inner strategy when no affinity is expressed or the
    target is unknown.
    """

    def __init__(self, locations: dict[str, str], fallback=None) -> None:
        #: Mapping container name -> host name, maintained by the caller.
        self.locations = locations
        self.fallback = fallback or SpreadStrategy()

    def place(self, spec, hosts, load):
        _require_hosts(hosts)
        target = spec.labels.get("affinity")
        if target:
            host_name = self.locations.get(target)
            if host_name is not None:
                for host in hosts:
                    if host.name == host_name:
                        return host
        return self.fallback.place(spec, hosts, load)

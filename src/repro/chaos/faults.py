"""Fault injectors: controlled damage to existing layers, no forking.

Each injector wraps one seam the production code already exposes —
mutable :class:`~repro.hardware.bandwidth.BandwidthPipe` rates, the
fabric's partition/heal pair, the kernel path's :data:`repro.netstack.
tcp.FAULTS` hook, the orchestrator's NIC-capability registry, the
cluster's host-failure API, and the KV store's ``_notify`` fan-out.
Nothing here reimplements a layer; a scenario that passes with faults
installed is evidence about the *real* code paths.

Every stochastic decision draws from a named
:class:`~repro.sim.rand.RandomStream`, so a scenario's fault timeline is
a pure function of its seed.  Injectors count what they did both on
themselves and into the ``repro.chaos.*`` metric family when a
telemetry registry is active.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

from ..cluster.container import ContainerSpec
from ..cluster.kvstore import WatchEvent
from ..netstack import tcp as _tcp
from ..sim.rand import RandomStream
from ..sim.resources import Store
from ..telemetry.registry import counter_inc

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.kvstore import KeyValueStore, Watch
    from ..cluster.orchestrator import ClusterOrchestrator
    from ..core.network import FreeFlowNetwork
    from ..hardware.host import Host
    from ..hardware.link import Fabric

__all__ = [
    "LinkInjector",
    "KernelPathFaults",
    "NicInjector",
    "HostInjector",
    "FaultyKVStore",
    "CreditStaller",
]


class LinkInjector:
    """Degrade, flap and partition the physical fabric.

    Degradation mutates the per-NIC :class:`BandwidthPipe` rates, which
    the pipes read per-chunk — a transfer in flight slows down
    mid-message, exactly like a real link renegotiating speed.
    Partitions delegate to :meth:`Fabric.partition`, which *parks*
    cross-cut traffic (reliable link layer: retransmit until heal), so
    byte conservation holds across any number of flaps.
    """

    def __init__(self, fabric: "Fabric") -> None:
        self.fabric = fabric
        self._original_rates: dict[int, tuple] = {}
        #: Individual fat-tree cables killed via :meth:`fail_link`
        #: (name pairs), so :meth:`restore_links` can undo them all.
        self._failed_links: list[tuple[str, str]] = []
        self.degrades = 0
        self.partitions = 0
        self.heals = 0
        self.link_fails = 0
        self.link_heals = 0

    def degrade_host(self, host: "Host", factor: float) -> None:
        """Scale ``host``'s NIC egress+ingress rate by ``factor``."""
        if not 0.0 < factor <= 1.0:
            raise ValueError(f"factor must be in (0, 1], got {factor}")
        nic = host.nic
        if id(nic) not in self._original_rates:
            self._original_rates[id(nic)] = (
                nic, nic.egress.rate_bytes, nic.ingress.rate_bytes
            )
        _, egress0, ingress0 = self._original_rates[id(nic)]
        nic.egress.rate_bytes = egress0 * factor
        nic.ingress.rate_bytes = ingress0 * factor
        self.degrades += 1
        counter_inc("repro.chaos.link.degrades")

    def restore_rates(self) -> None:
        """Undo every :meth:`degrade_host` (idempotent)."""
        for nic, egress0, ingress0 in self._original_rates.values():
            nic.egress.rate_bytes = egress0
            nic.ingress.rate_bytes = ingress0
        self._original_rates.clear()

    def partition_hosts(self, side_a: Iterable["Host"],
                        side_b: Iterable["Host"]) -> None:
        """Cut the fabric between two sets of hosts (until :meth:`heal`)."""
        self.fabric.partition(
            [host.nic for host in side_a],
            [host.nic for host in side_b],
        )
        self.partitions += 1
        counter_inc("repro.chaos.link.partitions")

    def heal(self) -> None:
        """Clear all partitions; parked traffic resumes in order."""
        self.fabric.heal()
        self.heals += 1
        counter_inc("repro.chaos.link.heals")

    # -- fat-tree link faults ------------------------------------------------

    def fail_link(self, a_name: str, b_name: str) -> None:
        """Kill one individual fat-tree cable (both directions).

        Unlike :meth:`partition_hosts` this does not cut any host pair:
        the multi-path fabric must *reroute* around the dead cable, and
        queued traffic is drained onto detours immediately.  Requires a
        :class:`~repro.hardware.topology.FatTreeFabric`.
        """
        self.fabric.fail_link(a_name, b_name)
        self._failed_links.append((a_name, b_name))
        self.link_fails += 1
        counter_inc("repro.chaos.link.link_fails")

    def heal_link(self, a_name: str, b_name: str) -> None:
        """Bring one fat-tree cable back up."""
        self.fabric.heal_link(a_name, b_name)
        self._failed_links = [pair for pair in self._failed_links
                              if pair != (a_name, b_name)]
        self.link_heals += 1
        counter_inc("repro.chaos.link.link_heals")

    def restore_links(self) -> None:
        """Heal every cable killed via :meth:`fail_link` (idempotent)."""
        failed, self._failed_links = self._failed_links, []
        for a_name, b_name in failed:
            self.fabric.heal_link(a_name, b_name)


class KernelPathFaults:
    """Packet loss and reordering on the kernel TCP receive path.

    Implements the :data:`repro.netstack.tcp.FAULTS` protocol.  Loss on
    a reliable transport manifests as a retransmit *delay* (the frame is
    recovered, ~one RTO later), so delivery counters still conserve;
    reordering emerges naturally when one message is held past the ones
    queued behind it.
    """

    def __init__(
        self,
        rng: RandomStream,
        loss_p: float = 0.0,
        rto_s: float = 200e-6,
        reorder_p: float = 0.0,
        jitter_s: float = 20e-6,
    ) -> None:
        if rto_s < 0 or jitter_s < 0:
            raise ValueError("delays must be non-negative")
        self.rng = rng
        self.loss_p = loss_p
        self.rto_s = rto_s
        self.reorder_p = reorder_p
        self.jitter_s = jitter_s
        self.losses = 0
        self.reorders = 0
        self.passed = 0

    # -- the tcp.FAULTS protocol --------------------------------------------

    def rx_delay(self, lane, message) -> float:
        """Hold time for one message entering a connection's rx queue."""
        if self.loss_p and self.rng.bernoulli(self.loss_p):
            self.losses += 1
            counter_inc("repro.chaos.tcp.losses")
            # 1-2 RTOs: an occasional double loss of the retransmission.
            return self.rto_s * self.rng.uniform(1.0, 2.0)
        if self.reorder_p and self.rng.bernoulli(self.reorder_p):
            self.reorders += 1
            counter_inc("repro.chaos.tcp.reorders")
            return self.rng.uniform(0.0, self.jitter_s)
        self.passed += 1
        return 0.0

    # -- lifecycle ----------------------------------------------------------

    def install(self) -> "KernelPathFaults":
        if _tcp.FAULTS is not None:
            raise RuntimeError("a kernel-path fault injector is already "
                               "installed")
        _tcp.FAULTS = self
        return self

    def uninstall(self) -> None:
        if _tcp.FAULTS is self:
            _tcp.FAULTS = None


class NicInjector:
    """NIC capability loss: RDMA/DPDK die (or degrade) at runtime.

    Thin wrapper over the network orchestrator's capability registry —
    the point is that *nothing else* is touched: the publish under
    ``/network/nics/<host>`` must be enough for the reconciler to move
    live flows onto the kernel fallback, and back after :meth:`restore`.
    """

    def __init__(self, network: "FreeFlowNetwork") -> None:
        self.network = network
        self.capability_faults = 0

    def lose_bypass(self, host_name: str, rdma: bool = True,
                    dpdk: bool = True) -> None:
        """The bypass NIC features die on ``host_name``."""
        self.network.orchestrator.set_nic_capability(
            host_name,
            rdma=False if rdma else None,
            dpdk=False if dpdk else None,
        )
        self.capability_faults += 1
        counter_inc("repro.chaos.nic.faults")

    def degrade(self, host_name: str) -> None:
        """Mark the host's whole bypass plumbing unreliable → kernel TCP."""
        self.network.orchestrator.set_nic_capability(host_name,
                                                     degraded=True)
        self.capability_faults += 1
        counter_inc("repro.chaos.nic.faults")

    def restore(self, host_name: str) -> None:
        """Everything works again on ``host_name``."""
        self.network.orchestrator.set_nic_capability(
            host_name, rdma=True, dpdk=True, degraded=False,
        )
        counter_inc("repro.chaos.nic.restores")


class HostInjector:
    """Host/agent crash-and-restart, plus container respawn.

    Crash goes through :meth:`FreeFlowNetwork.handle_host_failure` (the
    agent dies with the host: ``network._agents`` eviction happens in
    the reconciler primitive) or — ``via_watch=True`` — through the
    cluster orchestrator alone, so the *only* signal the network side
    gets is the ``/cluster/hosts/`` DELETE.  The second form is what
    exercises watch loss + resync recovery.
    """

    def __init__(self, network: "FreeFlowNetwork",
                 cluster: "ClusterOrchestrator") -> None:
        self.network = network
        self.cluster = cluster
        self.crashes = 0
        self.restarts = 0
        self.respawns = 0
        self.silences = 0

    def crash(self, host_name: str, via_watch: bool = False) -> list:
        """Kill a host; returns the flows broken (empty for via_watch)."""
        self.crashes += 1
        counter_inc("repro.chaos.host.crashes")
        if via_watch:
            self.cluster.fail_host(host_name)
            return []
        return self.network.handle_host_failure(host_name)

    def silence(self, host_name: str) -> None:
        """The host goes silent: its lease keepalives stop, nothing else.

        Needs a lease-backed scenario (``host_lease_ttl_s``).  The host
        and its containers keep running; only the heartbeat dies — the
        fleet learns one TTL later, when the lease lapses and the store
        cascades the ``/cluster/hosts/`` DELETE to every watcher.
        """
        self.cluster.silence_keepalives(host_name)
        self.silences += 1
        counter_inc("repro.chaos.host.silences")

    def restart(self, host_name: str) -> None:
        """The host machine comes back (empty: containers stay dead)."""
        self.cluster.recover_host(host_name)
        self.restarts += 1
        counter_inc("repro.chaos.host.restarts")

    def respawn(self, name: str, on_host: str, tenant: str = "default"):
        """Schedule a replacement container and attach it to the overlay."""
        container = self.cluster.submit(
            ContainerSpec(name, tenant=tenant, pinned_host=on_host)
        )
        self.network.attach(container)
        self.respawns += 1
        counter_inc("repro.chaos.host.respawns")
        return container


class FaultyKVStore:
    """Degrade a KV store's watch-notification fan-out.

    Installs over an existing :class:`KeyValueStore` by hooking its
    ``_notify`` — the *data* stays linearizable (puts/gets/CAS are
    untouched), but the change feed degrades exactly like an unhealthy
    etcd watch connection: deliveries can be **delayed** (serial FIFO
    pump, so order is preserved), **dropped**, **duplicated**, or — via
    :meth:`stall` — buffered wholesale until :meth:`heal`.  A stall is
    the observable face of "puts stall": writers are synchronous in sim
    time, so what their callers actually block on is the downstream
    reaction, which a stalled feed withholds.

    ``heal(resync=...)`` flushes the buffer in order and then replays
    current state into the given watches (:meth:`Watch.resync`) — the
    redelivery-on-reconnect hardening this PR adds.
    """

    def __init__(
        self,
        store: "KeyValueStore",
        rng: RandomStream,
        delay_s: float = 0.0,
        jitter_s: float = 0.0,
        drop_p: float = 0.0,
        duplicate_p: float = 0.0,
    ) -> None:
        if delay_s < 0 or jitter_s < 0:
            raise ValueError("delays must be non-negative")
        self.store = store
        self.rng = rng
        self.delay_s = delay_s
        self.jitter_s = jitter_s
        self.drop_p = drop_p
        self.duplicate_p = duplicate_p
        self.delivered = 0
        self.dropped = 0
        self.duplicated = 0
        self.stalled = 0
        self._stalling = False
        self._held: list[WatchEvent] = []
        self._orig_notify = None
        self._pipe: Optional[Store] = None

    @property
    def installed(self) -> bool:
        return self._orig_notify is not None

    def install(self) -> "FaultyKVStore":
        if self.installed:
            return self
        self._orig_notify = self.store._notify
        self.store._notify = self._notify
        if self.delay_s or self.jitter_s:
            self._pipe = Store(self.store.env)
            self.store.env.process(self._pump())
        return self

    def uninstall(self) -> None:
        """Restore the store's own fan-out (held events are flushed)."""
        if not self.installed:
            return
        self.heal()
        self.store._notify = self._orig_notify
        self._orig_notify = None

    # -- fault controls ------------------------------------------------------

    def stall(self) -> None:
        """Buffer every notification until :meth:`heal`."""
        self._stalling = True

    def heal(self, resync: Iterable["Watch"] = ()) -> int:
        """End a stall: flush held events in order, then replay state
        into ``resync`` watches.  Returns events flushed + replayed."""
        self._stalling = False
        held = list(self._held)
        self._held.clear()
        for event in held:
            self._deliver(event)
        replayed = 0
        for watch in resync:
            replayed += watch.resync()
        counter_inc("repro.chaos.kv.heals")
        return len(held) + replayed

    # -- the hooked fan-out --------------------------------------------------

    def _notify(self, event: WatchEvent) -> None:
        if self._stalling:
            self._held.append(event)
            self.stalled += 1
            counter_inc("repro.chaos.kv.stalled")
            return
        if self.drop_p and self.rng.bernoulli(self.drop_p):
            self.dropped += 1
            counter_inc("repro.chaos.kv.dropped")
            return
        self._deliver(event)
        if self.duplicate_p and self.rng.bernoulli(self.duplicate_p):
            self.duplicated += 1
            counter_inc("repro.chaos.kv.duplicated")
            self._deliver(event)

    def _deliver(self, event: WatchEvent) -> None:
        if self._pipe is not None:
            self._pipe.put(event)
        else:
            self.delivered += 1
            self._orig_notify(event)

    def _pump(self):
        """Serial delay stage: every delivery waits, order preserved."""
        env = self.store.env
        while True:
            event = yield self._pipe.get()
            delay = self.delay_s
            if self.jitter_s:
                delay += self.rng.uniform(0.0, self.jitter_s)
            if delay > 0:
                yield env.timeout(delay)
            self.delivered += 1
            self._orig_notify(event)


class CreditStaller:
    """Withhold a streaming receiver's credit-return WRITEs.

    Hooks one socket's ``_return_credits`` (an instance-attribute
    override — the class stays untouched, so every other socket keeps
    flowing).  While stalled, consumed ring bytes are *not* advertised
    back: the sender's credit tank drains to zero and its next ``send``
    parks on ``tx-credits`` — the exact hang the runtime wait-for graph
    (:mod:`repro.analysis.waitfor`) exists to explain.  ``heal()`` lifts
    the stall and :meth:`flush` (a generator — run it from a timeline
    step or a process) pushes the batched credit update the receiver
    itself may never send again, because *it* is idle while the sender
    is parked.
    """

    def __init__(self, sock) -> None:
        self.sock = sock
        self.stalled = False
        #: Credit-return attempts swallowed while stalled.
        self.withheld = 0
        self._orig = None

    @property
    def installed(self) -> bool:
        return self._orig is not None

    def install(self) -> "CreditStaller":
        if self.installed:
            return self
        self._orig = self.sock._return_credits
        staller = self

        def _stalled_return_credits():
            if not staller.stalled:
                yield from staller._orig()
                return
            if staller.sock._ring_consumed > staller.sock._credits_returned:
                staller.withheld += 1
                counter_inc("repro.chaos.credits_withheld")

        self.sock._return_credits = _stalled_return_credits
        return self

    def uninstall(self) -> None:
        """Restore the socket's own credit returns (stall lifted)."""
        if not self.installed:
            return
        self.stalled = False
        del self.sock.__dict__["_return_credits"]
        self._orig = None

    def stall(self) -> None:
        self.stalled = True

    def heal(self) -> None:
        self.stalled = False

    def flush(self):
        """Send the withheld credit update now (generator)."""
        yield from self._orig()

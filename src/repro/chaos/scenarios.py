"""The named resilience scenarios (``python -m repro chaos --list``).

Each factory returns a fresh :class:`~repro.chaos.scenario.Scenario`;
the catalogue order is the run order, and ``nic-loss-midflow`` doubles
as the CI smoke gate (fast, zero tolerated violations).  Scenario
actions receive the live :class:`~repro.chaos.runner.ChaosHarness` —
see that class for the attributes (``nic``, ``hosts``, ``link``,
``kv_faults`` …) the closures below use.

Timings are sim-seconds.  The scale (single-digit milliseconds) is
enough for thousands of messages per flow at the default 20 us send
interval while keeping every scenario sub-second in wall time.
"""

from __future__ import annotations

from .faults import CreditStaller, FaultyKVStore, KernelPathFaults
from .invariants import Violation
from .scenario import Placement, Scenario, Step, TrafficPair

__all__ = ["SCENARIOS", "SMOKE_SCENARIO", "get"]


# -- nic-loss-midflow (the smoke gate) -----------------------------------------


def _nic_loss_midflow() -> Scenario:
    """RDMA dies under live flows; policy degrades to kernel TCP and back."""

    def lose(harness):
        harness.nic.lose_bypass("host1")

    def restore(harness):
        harness.nic.restore("host1")

    return Scenario(
        name="nic-loss-midflow",
        description="RDMA+DPDK die on host1 mid-flow; flows fall back to "
                    "kernel TCP, then return when the NIC recovers",
        hosts=2,
        containers=(
            Placement("web", "host0"),
            Placement("cache", "host0"),
            Placement("db", "host1"),
        ),
        traffic=(
            TrafficPair("web", "db"),
            TrafficPair("cache", "db"),
        ),
        steps=(
            Step(0.001, "host1 loses RDMA+DPDK", lose),
            Step(0.003, "host1 NIC recovers", restore),
        ),
        duration_s=0.005,
        conservation="exact",
    )


# -- host-crash-storm ----------------------------------------------------------


def _host_crash_storm() -> Scenario:
    """Two hosts die in sequence; replacements respawn; flows auto-repair."""

    def crash_host2(harness):
        harness.hosts.crash("host2")

    def respawn_db(harness):
        harness.hosts.respawn("db", on_host="host3")

    def crash_host1(harness):
        harness.hosts.crash("host1")

    def respawn_cache(harness):
        harness.hosts.respawn("cache", on_host="host0")

    def recover_machines(harness):
        harness.hosts.restart("host1")
        harness.hosts.restart("host2")

    return Scenario(
        name="host-crash-storm",
        description="host2 then host1 crash under load; containers "
                    "respawn elsewhere and the reconciler repairs every "
                    "flow without caller involvement",
        hosts=4,
        containers=(
            Placement("web", "host0"),
            Placement("cache", "host1"),
            Placement("db", "host2"),
            Placement("worker", "host3"),
        ),
        traffic=(
            TrafficPair("web", "cache"),
            TrafficPair("web", "db"),
            TrafficPair("worker", "db"),
        ),
        steps=(
            Step(0.001, "host2 crashes (db lost)", crash_host2),
            Step(0.0013, "db respawns on host3", respawn_db),
            Step(0.0025, "host1 crashes (cache lost)", crash_host1),
            Step(0.0028, "cache respawns on host0", respawn_cache),
            Step(0.004, "crashed machines rejoin (empty)", recover_machines),
        ),
        duration_s=0.006,
        conservation="no-forge",
        repair_bound_s=0.003,
    )


# -- lease-expiry-storm --------------------------------------------------------


def _lease_expiry_storm() -> Scenario:
    """Two hosts go *silent* at once; lease expiry is the only signal."""

    ttl = 0.0005

    def go_silent(harness):
        # Nothing is told about the failure: the keepalives just stop,
        # for both hosts in the same TTL window (the "storm").  One TTL
        # later the store expires both leases, cascading the host and
        # container DELETEs to every watcher in attachment order.
        harness.hosts.silence("host2")
        harness.hosts.silence("host3")

    def respawn_db(harness):
        harness.hosts.respawn("db", on_host="host1")

    def respawn_worker(harness):
        harness.hosts.respawn("worker", on_host="host0")

    def machines_rejoin(harness):
        # recover_host re-grants the leases and resumes keepalives.
        harness.hosts.restart("host2")
        harness.hosts.restart("host3")

    return Scenario(
        name="lease-expiry-storm",
        description="host2 and host3 go silent in the same TTL window; "
                    "their leases lapse, the expiry DELETE cascade is "
                    "the only failure signal, and the reconciler repairs "
                    "every flow after the respawns",
        hosts=4,
        containers=(
            Placement("web", "host0"),
            Placement("cache", "host1"),
            Placement("db", "host2"),
            Placement("worker", "host3"),
        ),
        traffic=(
            TrafficPair("web", "cache"),
            TrafficPair("web", "db"),
            TrafficPair("worker", "db"),
        ),
        steps=(
            Step(0.001, "host2+host3 keepalives stop", go_silent),
            Step(0.0022, "db respawns on host1", respawn_db),
            Step(0.0024, "worker respawns on host0", respawn_worker),
            Step(0.004, "silent machines rejoin (empty)", machines_rejoin),
        ),
        duration_s=0.006,
        conservation="no-forge",
        repair_bound_s=0.003,
        host_lease_ttl_s=ttl,
    )


# -- control-plane-partition ---------------------------------------------------


def _control_plane_partition() -> Scenario:
    """Both KV stores stall; a migration happens in the dark; heal+resync."""

    def prepare(harness):
        harness.add_kv_fault(
            "net", FaultyKVStore(harness.network.orchestrator.kv,
                                 harness.stream("kv.net")).install()
        )
        harness.add_kv_fault(
            "cluster", FaultyKVStore(harness.cluster.kv,
                                     harness.stream("kv.cluster")).install()
        )

    def stall(harness):
        for fault in harness.kv_faults.values():
            fault.stall()

    def relocate_in_the_dark(harness):
        harness.cluster.relocate("cache", "host1")
        harness.network.orchestrator.refresh_location("cache")

    def heal_and_resync(harness):
        for fault in harness.kv_faults.values():
            fault.heal()
        harness.network.reconciler.resync()
        yield from harness.network.reconciler.wait_settled()

    return Scenario(
        name="control-plane-partition",
        description="the watch fan-out of both KV stores stalls; a "
                    "container migrates while the reconciler is blind; "
                    "heal + resync converge everything",
        hosts=3,
        containers=(
            Placement("web", "host0"),
            Placement("db", "host1"),
            Placement("cache", "host2"),
        ),
        traffic=(
            TrafficPair("web", "db"),
            TrafficPair("web", "cache"),
        ),
        steps=(
            Step(0.001, "control plane partitions (watches stall)", stall),
            Step(0.0015, "cache migrates host2 -> host1 (unseen)",
                 relocate_in_the_dark),
            Step(0.003, "partition heals; reconciler resyncs",
                 heal_and_resync),
        ),
        duration_s=0.005,
        conservation="exact",
        prepare=prepare,
    )


# -- watch-delay ---------------------------------------------------------------


def _watch_delay() -> Scenario:
    """Jittered, duplicated watch deliveries; pumps must stay idempotent."""

    def prepare(harness):
        harness.add_kv_fault(
            "net", FaultyKVStore(
                harness.network.orchestrator.kv, harness.stream("kv.net"),
                delay_s=300e-6, jitter_s=200e-6, duplicate_p=0.3,
            ).install()
        )

    def lose_rdma(harness):
        harness.nic.lose_bypass("host1", dpdk=False)

    def restore_rdma(harness):
        harness.nic.restore("host1")

    def relocate_cache(harness):
        harness.cluster.relocate("cache", "host0")
        harness.network.orchestrator.refresh_location("cache")

    return Scenario(
        name="watch-delay",
        description="every network-KV watch delivery arrives late (with "
                    "jitter) and 30% arrive twice; capability changes and "
                    "a migration still converge exactly once",
        hosts=3,
        containers=(
            Placement("web", "host0"),
            Placement("db", "host1"),
            Placement("cache", "host1"),
        ),
        traffic=(
            TrafficPair("web", "db"),
            TrafficPair("web", "cache"),
        ),
        steps=(
            Step(0.001, "host1 loses RDMA (late news)", lose_rdma),
            Step(0.0025, "host1 RDMA recovers", restore_rdma),
            Step(0.004, "cache migrates host1 -> host0", relocate_cache),
        ),
        duration_s=0.006,
        conservation="exact",
        prepare=prepare,
    )


# -- link-flap -----------------------------------------------------------------


def _link_flap() -> Scenario:
    """The inter-host path flaps; a long outage degrades to kernel TCP."""

    def cut(harness):
        harness.link.partition_hosts(
            [harness.host("host0")], [harness.host("host1")]
        )

    def mend(harness):
        harness.link.heal()

    def degrade_flag(harness):
        harness.nic.degrade("host1")

    def slow_nic(harness):
        harness.link.degrade_host(harness.host("host1"), 0.25)

    def full_recovery(harness):
        harness.link.restore_rates()
        harness.nic.restore("host1")

    return Scenario(
        name="link-flap",
        description="the host0|host1 fabric path flaps twice; during the "
                    "second outage host1 is marked degraded (flows move "
                    "to kernel TCP) and its NIC rate drops to 25%; full "
                    "recovery restores RDMA",
        hosts=2,
        containers=(
            Placement("web", "host0"),
            Placement("db", "host1"),
        ),
        traffic=(
            TrafficPair("web", "db"),
        ),
        steps=(
            Step(0.001, "fabric partition host0|host1", cut),
            Step(0.0013, "partition heals", mend),
            Step(0.0018, "partition again", cut),
            Step(0.002, "host1 marked degraded (rebind to TCP queued)",
                 degrade_flag),
            Step(0.0024, "partition heals; rebind drains through", mend),
            Step(0.003, "host1 NIC degrades to 25% rate", slow_nic),
            Step(0.004, "full recovery (rates + degraded flag)",
                 full_recovery),
        ),
        duration_s=0.006,
        conservation="exact",
    )


# -- lossy-kernel-path ---------------------------------------------------------


def _lossy_kernel_path() -> Scenario:
    """Untrusted tenants on a lossy kernel path: loss burst, still exact."""

    def prepare(harness):
        harness.kernel_faults = KernelPathFaults(
            harness.stream("tcp.faults"),
            loss_p=0.03, rto_s=200e-6, reorder_p=0.08, jitter_s=30e-6,
        ).install()

    def loss_burst(harness):
        harness.kernel_faults.loss_p = 0.15

    def loss_subsides(harness):
        harness.kernel_faults.loss_p = 0.01

    return Scenario(
        name="lossy-kernel-path",
        description="cross-tenant flows pinned to kernel TCP ride 3-15% "
                    "loss (retransmit delay) and 8% reordering; delivery "
                    "stays exact and in order per connection",
        hosts=2,
        containers=(
            Placement("api", "host0", tenant="blue"),
            Placement("web", "host0", tenant="blue"),
            Placement("db", "host1", tenant="red"),
        ),
        traffic=(
            TrafficPair("api", "db", interval_s=40e-6),
            TrafficPair("web", "db", interval_s=40e-6),
        ),
        steps=(
            Step(0.002, "loss burst to 15%", loss_burst),
            Step(0.0035, "loss subsides to 1%", loss_subsides),
        ),
        duration_s=0.006,
        conservation="exact",
        prepare=prepare,
    )


# -- kv-watch-drop -------------------------------------------------------------


def _kv_watch_drop() -> Scenario:
    """Half of all watch deliveries vanish; resync makes the state whole."""

    def prepare(harness):
        harness.add_kv_fault(
            "net", FaultyKVStore(
                harness.network.orchestrator.kv,
                harness.stream("kv.net"), drop_p=0.5,
            ).install()
        )
        harness.add_kv_fault(
            "cluster", FaultyKVStore(
                harness.cluster.kv,
                harness.stream("kv.cluster"), drop_p=0.5,
            ).install()
        )

    def lose_rdma(harness):
        harness.nic.lose_bypass("host1", dpdk=False)

    def crash_unannounced(harness):
        # Only the (50% lossy) host watch can tell the network side.
        harness.hosts.crash("host2", via_watch=True)

    def reconnect_and_resync(harness):
        for fault in harness.kv_faults.values():
            fault.uninstall()
        harness.network.reconciler.resync()
        yield from harness.network.reconciler.wait_settled()

    def respawn_cache(harness):
        harness.hosts.respawn("cache", on_host="host0")

    return Scenario(
        name="kv-watch-drop",
        description="50% of watch deliveries are dropped; host2 dies with "
                    "only the lossy watch to announce it; reconnect + "
                    "resync synthesize the missed events and repairs land",
        hosts=3,
        containers=(
            Placement("web", "host0"),
            Placement("db", "host1"),
            Placement("cache", "host2"),
        ),
        traffic=(
            TrafficPair("web", "db"),
            TrafficPair("web", "cache"),
        ),
        steps=(
            Step(0.001, "host1 loses RDMA (maybe unheard)", lose_rdma),
            Step(0.002, "host2 crashes, watch-only announcement",
                 crash_unannounced),
            Step(0.003, "watch connection re-established; resync",
                 reconnect_and_resync),
            Step(0.0033, "cache respawns on host0", respawn_cache),
        ),
        duration_s=0.0055,
        conservation="no-forge",
        repair_bound_s=0.004,
        prepare=prepare,
    )


# -- credit-stall --------------------------------------------------------------


def _credit_stall() -> Scenario:
    """A receiver stops returning ring credits; the wait-for graph must
    name who holds them, and healing must conserve the stream."""

    from ..core.sockets import RING_BYTES

    chunk = 1024
    total = RING_BYTES + 64 * 1024
    state: dict = {"sent": 0, "received": 0, "snapshot": None,
                   "stall_level": None, "staller": None}

    def open_stream(harness):
        from ..core import SocketLayer

        layer = SocketLayer(harness.network, streaming=True)
        db = harness.cluster.container("db")
        web = harness.cluster.container("web")
        listener = layer.listen(db, 7000)
        env = harness.env

        def server():
            sock = yield from listener.accept()
            state["server_sock"] = sock
            got, _payload = yield from sock.recv_exactly(total)
            state["received"] = got

        env.process(server())
        client = layer.socket(web)
        yield from client.connect(db.ip, 7000)
        state["client_sock"] = client
        while "server_sock" not in state:
            yield env.timeout(1e-6)
        # Stall the receiver's credit returns before the first batch is
        # owed: every CREDIT_IMM from here on is withheld.
        state["staller"] = CreditStaller(state["server_sock"]).install()
        state["staller"].stall()

        def pump():
            for _ in range(total // chunk):
                yield from client.send(chunk)
                state["sent"] += chunk
            yield from client.shutdown()

        env.process(pump())

    def probe(harness):
        # Mid-stall: the sender's credit tank must be exhausted and the
        # wait-for graph must name who holds the missing credits.  Kept
        # out of the report (checked by the extra invariant) so the
        # report stays a pure function of (scenario, seed).
        from ..analysis import waitfor

        state["stall_level"] = state["client_sock"]._tx_credits.level
        state["snapshot"] = waitfor.report()

    def heal(harness):
        staller = state["staller"]
        staller.heal()
        yield from staller.flush()
        staller.uninstall()

    def check_stall_was_observed(harness) -> list:
        problems = []
        if state["sent"] != total or state["received"] != total:
            problems.append(Violation(
                "credit-stall.conservation",
                f"stream not conserved: sent {state['sent']} received "
                f"{state['received']} of {total} byte(s)",
            ))
        staller = state["staller"]
        if staller is None or staller.withheld < 1:
            problems.append(Violation(
                "credit-stall.fault-armed",
                "the staller never withheld a credit return — the "
                "scenario exercised nothing",
            ))
        if state["stall_level"] != 0:
            problems.append(Violation(
                "credit-stall.exhaustion",
                f"sender credit tank at {state['stall_level']!r} at the "
                f"probe (expected 0: fully debited)",
            ))
        snapshot = state["snapshot"] or {}
        parked = {
            entry["waits_on"]: entry
            for entry in snapshot.get("parked", ())
        }
        wait = parked.get("socket.web.tx-credits")
        if wait is None or wait["kind"] != "tank-get":
            problems.append(Violation(
                "credit-stall.wait-named",
                f"wait-for graph did not name the stalled credit tank; "
                f"parked on: {sorted(parked)}",
            ))
        else:
            held = sum(h["amount"] for h in wait["holders"]
                       if h["holds"] == "credit" and "pump" in h["process"])
            if held != RING_BYTES:
                problems.append(Violation(
                    "credit-stall.owner-named",
                    f"ownership ledger names {held} credit byte(s) held "
                    f"by the pump (expected the full ring, {RING_BYTES})",
                ))
        return problems

    return Scenario(
        name="credit-stall",
        description="a streaming receiver silently stops returning ring "
                    "credits; the sender parks on its credit tank, the "
                    "wait-for graph names the owner of every missing "
                    "byte, and healing the stall conserves the stream",
        hosts=2,
        containers=(
            Placement("web", "host0"),
            Placement("db", "host1"),
        ),
        traffic=(),
        steps=(
            Step(0.0002, "stream opens; credit returns stalled",
                 open_stream),
            Step(0.002, "probe: snapshot the wait-for graph", probe),
            Step(0.004, "stall heals; withheld credits flush", heal),
        ),
        duration_s=0.006,
        conservation="exact",
        extra_invariants=(check_stall_was_observed,),
    )


# -- core-link-failure ---------------------------------------------------------


def _core_link_failure() -> Scenario:
    """A fat-tree core link dies under cross-pod traffic; every flow
    reroutes onto the surviving equal-cost paths without drops or
    intra-flowlet reordering, and the dead cable moves no bytes until
    it heals."""

    state: dict = {"dead": None, "frozen_bytes": None, "was_down": None,
                   "recv_at_kill": None, "recv_at_heal": None,
                   "bytes_before_kill": 0}

    def _cable_bytes(harness) -> int:
        a, b = state["dead"]
        topo = harness.fabric.topology
        return (topo.link_by_name(a, b).pipe.bytes_moved
                + topo.link_by_name(b, a).pipe.bytes_moved)

    def kill_busiest_core(harness):
        link = harness.fabric.busiest_core_link()
        state["dead"] = (link.src.name, link.dst.name)
        state["bytes_before_kill"] = _cable_bytes(harness)
        harness.link.fail_link(*state["dead"])

    def snapshot_outage(harness):
        # A frame already on the wire at the kill finishes its hop (the
        # sim has no mid-transfer preemption), so the freeze baseline is
        # taken here, one in-flight window later, not at the kill itself.
        state["frozen_bytes"] = _cable_bytes(harness)
        state["recv_at_kill"] = {
            label: counts["received"]
            for label, counts in harness.counters.items()
        }

    def heal_core(harness):
        a, b = state["dead"]
        topo = harness.fabric.topology
        state["was_down"] = (not topo.link_by_name(a, b).up
                             and not topo.link_by_name(b, a).up)
        state["recv_at_heal"] = {
            label: counts["received"]
            for label, counts in harness.counters.items()
        }
        # Freeze check happens before the heal un-freezes the cable.
        state["frozen_at_heal"] = _cable_bytes(harness)
        harness.link.heal_link(a, b)

    def check_reroute(harness) -> list:
        problems = []
        if state["bytes_before_kill"] <= 0:
            problems.append(Violation(
                "core-link.fault-armed",
                "the busiest core link had moved no bytes at the kill — "
                "the scenario exercised nothing",
            ))
        if not state["was_down"]:
            problems.append(Violation(
                "core-link.cable-down",
                f"cable {state['dead']} was not down (both directions) "
                f"during the outage",
            ))
        if state["frozen_at_heal"] != state["frozen_bytes"]:
            problems.append(Violation(
                "core-link.dead-cable-frozen",
                f"dead cable {state['dead']} moved "
                f"{state['frozen_at_heal'] - state['frozen_bytes']} "
                f"byte(s) during the outage",
            ))
        for label, before in state["recv_at_kill"].items():
            after = state["recv_at_heal"][label]
            if after <= before:
                problems.append(Violation(
                    "core-link.flow-converged",
                    f"{label} delivered nothing during the outage "
                    f"({before} -> {after}): it never rerouted",
                ))
        if harness.fabric.reorders() != 0:
            problems.append(Violation(
                "core-link.flowlet-order",
                f"{harness.fabric.reorders()} intra-flowlet "
                f"reordering(s) observed",
            ))
        if harness.link.link_fails != 1 or harness.link.link_heals != 1:
            problems.append(Violation(
                "core-link.fault-count",
                f"expected exactly one fail+heal, saw "
                f"{harness.link.link_fails}/{harness.link.link_heals}",
            ))
        return problems

    return Scenario(
        name="core-link-failure",
        description="the busiest agg-core cable of a k=4 fat-tree dies "
                    "under cross-pod traffic; flowlets re-hash onto the "
                    "surviving paths, delivery stays exact and ordered, "
                    "and the dead cable is byte-frozen until it heals",
        hosts=8,
        containers=(
            Placement("web", "host0"),
            Placement("api", "host1"),
            Placement("db", "host4"),
            Placement("store", "host5"),
        ),
        traffic=(
            TrafficPair("web", "db"),
            TrafficPair("api", "store"),
            TrafficPair("web", "store"),
        ),
        steps=(
            Step(0.001, "busiest core cable dies", kill_busiest_core),
            Step(0.0012, "outage baseline snapshot", snapshot_outage),
            Step(0.0035, "core cable heals", heal_core),
        ),
        duration_s=0.005,
        conservation="exact",
        fat_tree_k=4,
        extra_invariants=(check_reroute,),
    )


#: Catalogue, in run order.  The first entry is the CI smoke gate.
SCENARIOS = {
    factory().name: factory
    for factory in (
        _nic_loss_midflow,
        _host_crash_storm,
        _lease_expiry_storm,
        _control_plane_partition,
        _watch_delay,
        _link_flap,
        _lossy_kernel_path,
        _kv_watch_drop,
        _credit_stall,
        _core_link_failure,
    )
}

SMOKE_SCENARIO = "nic-loss-midflow"


def get(name: str) -> Scenario:
    """Build a fresh Scenario by name (KeyError lists what exists)."""
    try:
        factory = SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown scenario {name!r}; known: {known}") from None
    return factory()

"""The scenario DSL: a declarative fault timeline over steady traffic.

A :class:`Scenario` is pure data — topology, traffic matrix, a sorted
list of timed :class:`Step` actions, and the invariant knobs the runner
checks at the end.  Actions receive the live
:class:`~repro.chaos.runner.ChaosHarness` and may be plain callables or
generators (run inline in the timeline process, so a step can wait for
the reconciler to settle before the next fault lands).

Keeping scenarios declarative buys two things: the runner can print an
accurate schedule without executing anything, and determinism is easy to
audit — the only stochastic inputs are the named streams the harness
derives from the experiment seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

__all__ = [
    "Placement",
    "TrafficPair",
    "Step",
    "Scenario",
    "CONSERVATION_MODES",
]

#: ``exact``  — every message sent must be received (reliable transport,
#:             no endpoint death): sent == received per pair.
#: ``no-forge`` — endpoints may die with messages in flight: received
#:             <= sent per pair, and nothing may be received twice
#:             (the count can never exceed what was sent).
CONSERVATION_MODES = ("exact", "no-forge")


@dataclass(frozen=True)
class Placement:
    """One container: where it starts and which tenant owns it."""

    name: str
    host: str
    tenant: str = "default"


@dataclass(frozen=True)
class TrafficPair:
    """One steady-state flow: src sends fixed-size messages to dst."""

    src: str
    dst: str
    message_bytes: int = 4096
    interval_s: float = 20e-6

    @property
    def label(self) -> str:
        return f"{self.src}->{self.dst}"


@dataclass(frozen=True)
class Step:
    """One timed fault (or probe) on the scenario timeline."""

    at_s: float
    label: str
    action: Callable

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ValueError(f"step {self.label!r}: at_s must be >= 0")
        if not callable(self.action):
            raise TypeError(f"step {self.label!r}: action must be callable")


@dataclass(frozen=True)
class Scenario:
    """A named, self-contained resilience experiment."""

    name: str
    description: str
    hosts: int
    containers: Tuple[Placement, ...]
    traffic: Tuple[TrafficPair, ...]
    steps: Tuple[Step, ...]
    duration_s: float
    #: Which conservation invariant applies (see CONSERVATION_MODES).
    conservation: str = "exact"
    #: Max BROKEN -> ACTIVE repair latency before the probe flags it.
    repair_bound_s: float = 0.02
    #: At the end, each ACTIVE flow's mechanism must match a fresh
    #: policy decision (no flow left on a stale choice).
    check_policy_freshness: bool = True
    #: Ceiling on the post-traffic quiesce wait.
    quiesce_deadline_s: float = 0.1
    #: Optional pre-traffic hook (install injectors, shape topology).
    prepare: Optional[Callable] = None
    #: With a TTL set, host liveness is lease-backed: the harness builds
    #: the cluster with ``host_lease_ttl_s`` and steps can silence a
    #: host's keepalives (``harness.hosts.silence``) to model silent
    #: death — the fleet learns via lease expiry, not an explicit call.
    host_lease_ttl_s: Optional[float] = None
    #: With an arity set, the harness builds a k-ary fat-tree fabric
    #: (multi-path ECMP + flowlet routing) instead of the single
    #: non-blocking switch; steps can then kill individual links
    #: (``harness.link.fail_link``) and the scenario's invariants can
    #: read the fabric's flowlet/reorder/detour accounting.
    fat_tree_k: Optional[int] = None
    #: Flowlet idle-gap override for fat-tree scenarios (None keeps the
    #: selector default; ``float('inf')`` pins paths: plain ECMP).
    flowlet_gap_s: Optional[float] = None
    #: Scenario-specific end-of-run probes.  Each is called with the
    #: harness (after the standard invariants, only if the run did not
    #: crash) and returns a list of
    #: :class:`~repro.chaos.invariants.Violation` records.
    extra_invariants: Tuple[Callable, ...] = ()

    def __post_init__(self) -> None:
        if self.hosts < 1:
            raise ValueError("scenario needs at least one host")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.host_lease_ttl_s is not None and self.host_lease_ttl_s <= 0:
            raise ValueError("host_lease_ttl_s must be positive")
        if self.fat_tree_k is not None:
            if self.fat_tree_k < 2 or self.fat_tree_k % 2:
                raise ValueError("fat_tree_k must be even and >= 2")
            if self.hosts > self.fat_tree_k ** 3 // 4:
                raise ValueError(
                    f"scenario {self.name!r}: {self.hosts} hosts exceed "
                    f"the k={self.fat_tree_k} fat-tree's "
                    f"{self.fat_tree_k ** 3 // 4} ports"
                )
        if self.conservation not in CONSERVATION_MODES:
            raise ValueError(
                f"conservation must be one of {CONSERVATION_MODES}, "
                f"got {self.conservation!r}"
            )
        if list(self.steps) != sorted(self.steps, key=lambda s: s.at_s):
            raise ValueError(f"scenario {self.name!r}: steps must be "
                             "sorted by at_s")
        if any(step.at_s > self.duration_s for step in self.steps):
            raise ValueError(f"scenario {self.name!r}: step beyond "
                             "duration_s")
        names = [p.name for p in self.containers]
        if len(set(names)) != len(names):
            raise ValueError(f"scenario {self.name!r}: duplicate "
                             "container names")
        known = set(names)
        for pair in self.traffic:
            if pair.src not in known or pair.dst not in known:
                raise ValueError(
                    f"scenario {self.name!r}: traffic pair "
                    f"{pair.label} references unknown containers"
                )

    def schedule(self) -> list:
        """(at_s, label) rows — printable without executing anything."""
        return [(step.at_s, step.label) for step in self.steps]

"""Deterministic fault injection + resilience verification.

``python -m repro chaos`` runs the named scenarios in
:mod:`~repro.chaos.scenarios` — each a declarative fault timeline
(:mod:`~repro.chaos.scenario`) over steady-state traffic, driven by the
injectors in :mod:`~repro.chaos.faults` and judged by the invariant
probes in :mod:`~repro.chaos.invariants`.  Same ``--seed``, same report,
byte for byte.
"""

from .faults import (
    FaultyKVStore,
    HostInjector,
    KernelPathFaults,
    LinkInjector,
    NicInjector,
)
from .invariants import (
    Violation,
    check_conservation,
    check_convergence,
    check_policy_freshness,
    check_repair_time,
    check_trace_consistency,
)
from .runner import ChaosHarness, main, run_many, run_scenario
from .scenario import Placement, Scenario, Step, TrafficPair
from .scenarios import SCENARIOS, SMOKE_SCENARIO, get

__all__ = [
    "ChaosHarness",
    "FaultyKVStore",
    "HostInjector",
    "KernelPathFaults",
    "LinkInjector",
    "NicInjector",
    "Placement",
    "SCENARIOS",
    "SMOKE_SCENARIO",
    "Scenario",
    "Step",
    "TrafficPair",
    "Violation",
    "check_conservation",
    "check_convergence",
    "check_policy_freshness",
    "check_repair_time",
    "check_trace_consistency",
    "get",
    "main",
    "run_many",
    "run_scenario",
]

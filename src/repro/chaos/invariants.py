"""Invariant probes: what must still be true after the faults.

Each probe is a pure function over end-of-scenario state (the flow
table, the harness's app-level traffic counters, the control-plane event
log) returning a list of :class:`Violation` — empty means the system
rode out the scenario.  The runner aggregates them; CI fails on any.

The probes deliberately reuse existing observability rather than
private state: convergence reads the :class:`FlowTable`, repair latency
and trace consistency are reconstructed from the
:data:`~repro.telemetry.events.FLOW_TRANSITION` stream (so they also
verify the telemetry contract itself), and the PR-4 runtime sanitizer —
armed for the whole scenario — covers the engine-level invariants
(no past-dated events, transplant conservation, FlowTable-only state
writes) with its own exception on violation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..core.flows import FlowState
from ..errors import UnknownContainer
from ..telemetry.events import FLOW_TRANSITION

if TYPE_CHECKING:  # pragma: no cover
    from ..core.flows import FlowTable
    from ..core.network import FreeFlowNetwork
    from ..telemetry.events import EventLog

__all__ = [
    "Violation",
    "check_convergence",
    "check_conservation",
    "check_repair_time",
    "check_trace_consistency",
    "check_policy_freshness",
]


@dataclass(frozen=True)
class Violation:
    """One invariant breach, self-describing for the report."""

    invariant: str
    detail: str

    def as_record(self) -> dict:
        return {"invariant": self.invariant, "detail": self.detail}


def check_convergence(table: "FlowTable") -> list[Violation]:
    """Every flow ends ACTIVE (CLOSED ones have left the table).

    A flow stuck BROKEN, REBINDING, PAUSED or RESOLVING after the
    scenario's quiesce window means some repair path gave up or hung.
    """
    violations = []
    for flow in table.open_flows():
        if flow.state is not FlowState.ACTIVE:
            violations.append(Violation(
                "convergence",
                f"flow {flow.flow_id} stuck in {flow.state.value} "
                f"(gen {flow.generation})",
            ))
    return violations


def check_conservation(counters: dict, mode: str) -> list[Violation]:
    """App-level message conservation per traffic pair.

    ``exact``: reliable transport and no endpoint death — every sent
    message must have been received.  ``no-forge``: endpoints died
    mid-scenario, so in-flight messages may legitimately be lost, but
    the receiver can never count *more* than was sent.
    """
    violations = []
    for label in sorted(counters):
        sent = counters[label]["sent"]
        received = counters[label]["received"]
        if received > sent:
            violations.append(Violation(
                "conservation",
                f"{label}: received {received} > sent {sent} "
                "(messages forged)",
            ))
        elif mode == "exact" and received != sent:
            violations.append(Violation(
                "conservation",
                f"{label}: sent {sent} != received {received} "
                f"({sent - received} lost on a reliable path)",
            ))
    return violations


def check_repair_time(log: "EventLog", bound_s: float) -> list[Violation]:
    """Every BROKEN flow returned to ACTIVE within ``bound_s``.

    Reconstructed from the FLOW_TRANSITION stream: the clock starts when
    a flow enters BROKEN and stops at its next arrival in ACTIVE.  A
    flow still broken at the end is convergence's problem, not ours.
    """
    violations = []
    broken_since: dict[str, float] = {}
    for event in log.of_kind(FLOW_TRANSITION):
        flow_id = event.fields["flow"]
        new = event.fields["new"]
        if new == FlowState.BROKEN.value:
            broken_since.setdefault(flow_id, event.time_s)
        elif new == FlowState.ACTIVE.value and flow_id in broken_since:
            elapsed = event.time_s - broken_since.pop(flow_id)
            if elapsed > bound_s:
                violations.append(Violation(
                    "repair-time",
                    f"flow {flow_id} took {elapsed * 1e3:.3f} ms to "
                    f"repair (bound {bound_s * 1e3:.3f} ms)",
                ))
    return violations


def check_trace_consistency(log: "EventLog") -> list[Violation]:
    """The transition stream itself must be complete and legal.

    * No evictions — an evicted event would make every other probe
      unsound, so the harness sizes the ring for the scenario and this
      check proves the sizing held.
    * Per flow: the first event starts from ``none`` (open), and each
      event's ``old`` equals the previous event's ``new`` — a gap means
      a transition bypassed the FlowTable or the log dropped one.
    * Nothing follows a ``closed``.
    """
    violations = []
    if log.evicted:
        violations.append(Violation(
            "trace-consistency",
            f"event log evicted {log.evicted} events; probes unsound "
            "(raise the harness's event capacity)",
        ))
    last_state: dict[str, str] = {}
    for event in log.of_kind(FLOW_TRANSITION):
        flow_id = event.fields["flow"]
        old = event.fields["old"]
        new = event.fields["new"]
        previous = last_state.get(flow_id)
        if previous is None:
            if old != "none":
                violations.append(Violation(
                    "trace-consistency",
                    f"flow {flow_id}: first logged transition starts at "
                    f"{old!r}, not 'none'",
                ))
        elif previous == FlowState.CLOSED.value:
            violations.append(Violation(
                "trace-consistency",
                f"flow {flow_id}: transition {old} -> {new} after close",
            ))
        elif old != previous:
            violations.append(Violation(
                "trace-consistency",
                f"flow {flow_id}: gap in history ({previous} .. {old} "
                f"-> {new})",
            ))
        last_state[flow_id] = new
    return violations


def check_policy_freshness(network: "FreeFlowNetwork") -> list[Violation]:
    """No surviving flow runs on a stale mechanism decision.

    After the dust settles, re-deciding each ACTIVE flow against the
    orchestrator's *current* global state must agree with the mechanism
    the flow actually uses — otherwise some registry change never
    reached the reconciler (lost watch event without resync).
    """
    violations = []
    for flow in network.flows.open_flows():
        if flow.state is not FlowState.ACTIVE:
            continue
        try:
            fresh = network.orchestrator.decide(flow.src_name,
                                                flow.dst_name)
        except UnknownContainer:
            continue
        if fresh.mechanism is not flow.mechanism:
            violations.append(Violation(
                "policy-freshness",
                f"flow {flow.flow_id} runs {flow.mechanism.value} but "
                f"current policy says {fresh.mechanism.value}",
            ))
    return violations

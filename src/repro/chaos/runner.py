"""Scenario runner: build testbed, drive faults, verify, report.

``python -m repro chaos`` runs the whole catalogue (or ``--scenario``/
``--smoke`` subsets) and prints a resilience table plus, with
``--json``, a machine-readable report.  Determinism is a hard contract:
the report is a pure function of (scenario set, seed) — every random
draw comes from the harness's :class:`StreamFactory`, sim time is the
only clock, and the JSON serializer sorts keys — so CI can diff two
runs byte-for-byte.

The PR-4 runtime sanitizer is armed for every scenario (engine-level
invariants raise mid-run instead of corrupting the report), and the
scenario-level probes from :mod:`repro.chaos.invariants` run at the end.
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys
from typing import Optional

from ..analysis import sanitizer as _sanitizer
from ..analysis import waitfor as _waitfor
from ..cluster import ClusterOrchestrator, ContainerSpec
from ..core import FreeFlowNetwork
from ..core.flows import FlowState
from ..errors import FreeFlowError, SanitizerViolation
from ..hardware import Fabric, Host
from ..sim import Environment
from ..sim.backoff import Backoff
from ..sim.rand import RandomStream, StreamFactory
from ..telemetry import session as telemetry_session
from ..telemetry.registry import counter_inc
from .faults import HostInjector, LinkInjector, NicInjector
from .invariants import (
    Violation,
    check_conservation,
    check_convergence,
    check_policy_freshness,
    check_repair_time,
    check_trace_consistency,
)
from .scenario import Scenario
from .scenarios import SCENARIOS, SMOKE_SCENARIO, get

__all__ = ["ChaosHarness", "run_scenario", "run_many", "main"]

#: Event-log ring size per scenario: large enough that the
#: trace-consistency probe never sees an eviction at these durations.
EVENT_CAPACITY = 65536


class ChaosHarness:
    """One scenario's live testbed + injectors + traffic bookkeeping.

    Scenario step closures receive this object.  The interesting
    attributes:

    * ``env`` / ``cluster`` / ``network`` / ``fabric`` — the testbed;
    * ``link`` / ``nic`` / ``hosts`` — fault injectors (fabric, NIC
      capability registry, host crash/respawn);
    * ``kernel_faults`` — optional :class:`KernelPathFaults` (install in
      ``prepare``; the harness uninstalls it on teardown);
    * ``kv_faults`` — label → :class:`FaultyKVStore` registered via
      :meth:`add_kv_fault` (auto-uninstalled on teardown);
    * ``flows`` — traffic-pair label → live :class:`FlowConnection`;
    * ``counters`` — label → ``{"sent": n, "received": n}`` app-level
      delivery counts the conservation probe checks.
    """

    #: Pause before an application-level retry after a send/recv error.
    RETRY_S = 50e-6
    QUIESCE_POLL_S = 100e-6

    def __init__(self, scenario: Scenario, seed: int) -> None:
        self.scenario = scenario
        self.seed = seed
        self.streams = StreamFactory(seed)
        self.env = Environment()
        if scenario.fat_tree_k is not None:
            from ..hardware import FatTreeFabric

            self.fabric = FatTreeFabric(
                self.env, k=scenario.fat_tree_k,
                flowlet_gap_s=scenario.flowlet_gap_s,
            )
        else:
            self.fabric = Fabric(self.env)
        self.cluster = ClusterOrchestrator(
            self.env, host_lease_ttl_s=scenario.host_lease_ttl_s
        )
        for index in range(scenario.hosts):
            self.cluster.add_host(
                Host(self.env, f"host{index}", fabric=self.fabric)
            )
        self.network = FreeFlowNetwork(self.cluster)
        self.network.reconciler.backoff = Backoff(
            self.stream("reconciler.backoff")
        )
        self.link = LinkInjector(self.fabric)
        self.nic = NicInjector(self.network)
        self.hosts = HostInjector(self.network, self.cluster)
        self.kernel_faults = None
        self.kv_faults: dict = {}
        self.flows: dict = {}
        self.counters = {
            pair.label: {"sent": 0, "received": 0}
            for pair in scenario.traffic
        }
        self.step_log: list[dict] = []
        self._stop = False

    # -- helpers for scenario closures ---------------------------------------

    def stream(self, name: str) -> RandomStream:
        """A named random stream derived from the scenario seed."""
        return self.streams.stream(f"chaos.{self.scenario.name}.{name}")

    def host(self, name: str) -> Host:
        return self.cluster.host(name)

    def add_kv_fault(self, label: str, fault) -> None:
        """Track an installed FaultyKVStore for teardown + reporting."""
        if label in self.kv_faults:
            raise ValueError(f"kv fault {label!r} already registered")
        self.kv_faults[label] = fault

    # -- build / teardown ----------------------------------------------------

    def build(self) -> None:
        """Attach containers, start the reconciler, connect the flows."""
        self.network.reconciler.start()
        for placement in self.scenario.containers:
            container = self.cluster.submit(ContainerSpec(
                placement.name, tenant=placement.tenant,
                pinned_host=placement.host,
            ))
            self.network.attach(container)
        if self.scenario.prepare is not None:
            self.scenario.prepare(self)

        def connect():
            for pair in self.scenario.traffic:
                flow = yield from self.network.connect_containers(
                    pair.src, pair.dst
                )
                self.flows[pair.label] = flow

        self.env.run(until=self.env.process(connect()))
        for pair in self.scenario.traffic:
            self.env.process(self._sender(pair))
            self.env.process(self._receiver(pair))

    def teardown(self) -> None:
        """Uninstall every injector (idempotent; runs even on failure)."""
        if self.kernel_faults is not None:
            self.kernel_faults.uninstall()
        for fault in self.kv_faults.values():
            fault.uninstall()
        self.link.restore_rates()
        self.link.restore_links()
        self.fabric.heal()
        self.network.reconciler.stop()

    # -- steady-state traffic ------------------------------------------------

    def _sender(self, pair):
        """App-level sender: retries through faults until told to stop."""
        counters = self.counters[pair.label]
        while not self._stop:
            flow = self.flows[pair.label]
            try:
                yield from flow.a.send(pair.message_bytes)
            except FreeFlowError:
                # Broken mid-fault: back off, reconnect at the facade.
                yield self.env.timeout(self.RETRY_S)
                continue
            counters["sent"] += 1
            yield self.env.timeout(pair.interval_s)

    def _receiver(self, pair):
        """App-level receiver: survives resets, counts deliveries."""
        counters = self.counters[pair.label]
        while True:
            flow = self.flows[pair.label]
            try:
                yield from flow.b.recv()
            except FreeFlowError:
                yield self.env.timeout(self.RETRY_S)
                continue
            counters["received"] += 1

    # -- the timeline --------------------------------------------------------

    def timeline(self):
        """Generator: execute the scenario's steps, then quiesce."""
        for step in self.scenario.steps:
            wait = step.at_s - self.env.now
            if wait > 0:
                yield self.env.timeout(wait)
            # One entry per scenario step: bounded by the scenario itself.
            self.step_log.append(  # simlint: disable=SIM004
                {"at_s": round(self.env.now, 9), "label": step.label}
            )
            counter_inc("repro.chaos.steps")
            result = step.action(self)
            if inspect.isgenerator(result):
                yield from result
        remaining = self.scenario.duration_s - self.env.now
        if remaining > 0:
            yield self.env.timeout(remaining)
        self._stop = True
        yield from self._quiesce()
        yield from self._settle()

    def _quiesce(self):
        """Wait for in-flight traffic to land (bounded by the deadline).

        Exact-conservation scenarios exit as soon as every pair's
        received count catches its sent count; no-forge scenarios exit
        once the received totals stop moving.
        """
        deadline = self.env.now + self.scenario.quiesce_deadline_s
        stable = 0
        last_total = -1
        while self.env.now < deadline:
            if all(c["received"] >= c["sent"]
                   for c in self.counters.values()):
                return
            total = sum(c["received"] for c in self.counters.values())
            if total == last_total:
                stable += 1
                if stable >= 5 and self.scenario.conservation == "no-forge":
                    return
            else:
                stable = 0
                last_total = total
            yield self.env.timeout(self.QUIESCE_POLL_S)

    def _settle(self):
        """Bounded variant of ``reconciler.wait_settled`` (never hangs)."""
        reconciler = self.network.reconciler
        deadline = self.env.now + self.scenario.quiesce_deadline_s
        quiet = 0
        while quiet < 2 and self.env.now < deadline:
            yield self.env.timeout(reconciler.SETTLE_POLL_S)
            if reconciler._busy or any(
                watch.has_pending() for watch in reconciler._watches
            ):
                quiet = 0
                continue
            if any(flow.state is FlowState.REBINDING
                   for flow in self.network.flows.open_flows()):
                quiet = 0
                continue
            quiet += 1


def run_scenario(scenario: Scenario, seed: int = 1) -> dict:
    """Run one scenario under telemetry + sanitizer; return its report."""
    harness = ChaosHarness(scenario, seed)
    violations: list[Violation] = []
    crashed: Optional[str] = None
    armed_here = not _sanitizer.installed()
    if armed_here:
        _sanitizer.install()
    # The wait-for graph rides along (LIFO under the sanitizer): lock
    # cycles raise DeadlockDetected mid-run, and scenario probes can
    # snapshot waitfor.report() to name who holds a stalled credit.
    waitfor_here = not _waitfor.installed()
    if waitfor_here:
        _waitfor.install()
    try:
        with telemetry_session(sample_rate=0.0,
                               event_capacity=EVENT_CAPACITY) as handle:
            try:
                harness.build()
                harness.env.run(
                    until=harness.env.process(harness.timeline())
                )
            except SanitizerViolation as exc:
                crashed = f"sanitizer: {exc}"
            except FreeFlowError as exc:
                crashed = f"{type(exc).__name__}: {exc}"
            finally:
                harness.teardown()
            if crashed is not None:
                violations.append(Violation("runtime", crashed))
            else:
                violations.extend(
                    check_convergence(harness.network.flows))
                violations.extend(check_conservation(
                    harness.counters, scenario.conservation))
                violations.extend(check_repair_time(
                    handle.events, scenario.repair_bound_s))
                violations.extend(check_trace_consistency(handle.events))
                if scenario.check_policy_freshness:
                    violations.extend(
                        check_policy_freshness(harness.network))
                for probe in scenario.extra_invariants:
                    violations.extend(probe(harness))
            transition_count = len(handle.events.of_kind("flow.transition"))
    finally:
        if waitfor_here:
            _waitfor.uninstall()
        if armed_here:
            _sanitizer.uninstall()
    reconciler = harness.network.reconciler
    report = {
        "scenario": scenario.name,
        "description": scenario.description,
        "seed": seed,
        "conservation_mode": scenario.conservation,
        "duration_s": scenario.duration_s,
        "sim_time_s": round(harness.env.now, 9),
        "steps": harness.step_log,
        "traffic": {
            label: dict(sorted(counts.items()))
            for label, counts in sorted(harness.counters.items())
        },
        "flows": {
            label: {
                "state": flow.state.value,
                "mechanism": (flow.mechanism.value
                              if flow.decision is not None else None),
                "generation": flow.generation,
            }
            for label, flow in sorted(harness.flows.items())
        },
        "faults": _fault_stats(harness),
        "reconciler": {
            "rebinds": reconciler.rebinds,
            "repairs": reconciler.repairs,
            "reconciliations": reconciler.reconciliations,
            "capability_rechecks": reconciler.capability_rechecks,
            "failures_handled": reconciler.failures_handled,
            "retries": reconciler.retries,
            "gave_up": reconciler.gave_up,
            "resyncs": reconciler.resyncs,
        },
        "transitions": transition_count,
        "violations": [v.as_record() for v in violations],
        "ok": not violations,
    }
    return report


def _fault_stats(harness: ChaosHarness) -> dict:
    stats = {
        "link": {
            "degrades": harness.link.degrades,
            "partitions": harness.link.partitions,
            "heals": harness.link.heals,
            "link_fails": harness.link.link_fails,
            "link_heals": harness.link.link_heals,
        },
        "nic": {"capability_faults": harness.nic.capability_faults},
        "host": {
            "crashes": harness.hosts.crashes,
            "restarts": harness.hosts.restarts,
            "respawns": harness.hosts.respawns,
        },
        "kv": {
            label: {
                "delivered": fault.delivered,
                "dropped": fault.dropped,
                "duplicated": fault.duplicated,
                "stalled": fault.stalled,
            }
            for label, fault in sorted(harness.kv_faults.items())
        },
    }
    if harness.kernel_faults is not None:
        stats["tcp"] = {
            "losses": harness.kernel_faults.losses,
            "reorders": harness.kernel_faults.reorders,
            "passed": harness.kernel_faults.passed,
        }
    return stats


def run_many(names, seed: int = 1) -> dict:
    """Run scenarios in catalogue order; aggregate into one report."""
    results = [run_scenario(get(name), seed) for name in names]
    return {
        "seed": seed,
        "scenarios": results,
        "ok": all(r["ok"] for r in results),
    }


def _format_table(report: dict) -> str:
    """The human-facing resilience table."""
    header = (f"  {'scenario':26s} {'flows':>5s} {'sent':>6s} "
              f"{'recv':>6s} {'rebinds':>7s} {'repairs':>7s} "
              f"{'viol':>4s}  verdict")
    lines = [header, "  " + "-" * (len(header) - 2)]
    for result in report["scenarios"]:
        sent = sum(c["sent"] for c in result["traffic"].values())
        received = sum(c["received"] for c in result["traffic"].values())
        verdict = "PASS" if result["ok"] else "FAIL"
        lines.append(
            f"  {result['scenario']:26s} {len(result['flows']):5d} "
            f"{sent:6d} {received:6d} "
            f"{result['reconciler']['rebinds']:7d} "
            f"{result['reconciler']['repairs']:7d} "
            f"{len(result['violations']):4d}  {verdict}"
        )
        for violation in result["violations"]:
            lines.append(f"      !! {violation['invariant']}: "
                         f"{violation['detail']}")
    overall = "PASS" if report["ok"] else "FAIL"
    lines.append(f"  overall: {overall} "
                 f"({len(report['scenarios'])} scenario(s), seed "
                 f"{report['seed']})")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro chaos",
        description="Deterministic fault-injection scenarios over the "
                    "FreeFlow control plane",
    )
    parser.add_argument("--seed", type=int, default=1,
                        help="experiment seed (same seed => byte-identical "
                             "report)")
    parser.add_argument("--scenario", action="append", default=None,
                        metavar="NAME",
                        help="run only NAME (repeatable; default: all)")
    parser.add_argument("--smoke", action="store_true",
                        help=f"run only the CI smoke scenario "
                             f"({SMOKE_SCENARIO})")
    parser.add_argument("--list", action="store_true",
                        help="list scenarios and their fault schedules")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the full report as JSON "
                             "('-' for stdout)")
    args = parser.parse_args(argv)

    if args.list:
        for name in SCENARIOS:
            scenario = get(name)
            print(f"{name}: {scenario.description}")
            for at_s, label in scenario.schedule():
                print(f"    t={at_s * 1e3:7.2f} ms  {label}")
        return 0

    if args.smoke:
        names = [SMOKE_SCENARIO]
    elif args.scenario:
        try:
            names = [get(name).name for name in args.scenario]
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
    else:
        names = list(SCENARIOS)

    print(f"[repro] chaos: {len(names)} scenario(s), seed {args.seed}")
    report = run_many(names, seed=args.seed)
    print(_format_table(report))
    if args.json:
        payload = json.dumps(report, sort_keys=True, indent=2) + "\n"
        if args.json == "-":
            sys.stdout.write(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as fh:
                fh.write(payload)
            print(f"  report written to {args.json}")
    return 0 if report["ok"] else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

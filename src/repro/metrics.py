"""Measurement harness (S14): the paper's three metrics, made runnable.

Every evaluation figure reports some mix of *throughput*, *latency* and
*CPU usage*.  This module drives any duplex endpoint pair (kernel TCP
ends, transport channel ends, FreeFlow connection ends — they all share
the ``send``/``recv`` generator protocol) through the two canonical
workloads and collects those metrics:

* :func:`run_stream` — saturating one-way stream of fixed-size messages
  (throughput + CPU);
* :func:`run_pingpong` — closed-loop request/response (latency
  distribution).

Both take care of warm-up, accounting resets and running the simulation,
so a benchmark is three lines: build testbed, connect, measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from .hardware.specs import to_gbps
from .sim.monitor import Series
from .sim.process import Interrupt
from .telemetry import registry as _registry
from .telemetry import tracer as _tracer

if TYPE_CHECKING:  # pragma: no cover
    from .hardware.host import Host
    from .sim.scheduler import Environment

__all__ = ["StreamResult", "PingPongResult", "run_stream", "run_pingpong"]


@dataclass
class StreamResult:
    """Outcome of a saturating streaming measurement."""

    gbps: float
    messages: int
    payload_bytes: int
    duration_s: float
    cpu_percent: dict[str, float] = field(default_factory=dict)
    nic_engine_util: dict[str, float] = field(default_factory=dict)
    link_util: dict[str, float] = field(default_factory=dict)
    membus_util: dict[str, float] = field(default_factory=dict)
    #: Bytes delivered per endpoint pair within the measurement window.
    per_pair_bytes: list = field(default_factory=list)
    #: Engine events processed during the measurement window — the cost of
    #: simulating this workload, for perf tracking (see bench_engine.py).
    engine_events: int = 0
    #: Per-hop latency breakdown from the active tracer (None when
    #: tracing was disabled or sampled nothing during the run).
    breakdown: Optional[dict] = None

    @property
    def total_cpu_percent(self) -> float:
        return sum(self.cpu_percent.values())

    def pair_gbps(self, index: int) -> float:
        """Goodput of one pair over the measurement window."""
        if self.duration_s <= 0:
            return 0.0
        return to_gbps(self.per_pair_bytes[index] / self.duration_s)


@dataclass
class PingPongResult:
    """Outcome of a closed-loop latency measurement."""

    latencies: Series
    rounds: int
    message_bytes: int
    #: Per-hop latency breakdown from the active tracer (None when
    #: tracing was disabled or sampled nothing during the run).
    breakdown: Optional[dict] = None

    def mean_us(self) -> float:
        return self.latencies.mean() * 1e6

    def p99_us(self) -> float:
        return self.latencies.percentile(99) * 1e6


def _pair_in_flight(send_end, recv_end) -> int:
    """Count of messages accepted but not yet delivered on one pair.

    Every supported endpoint flavour exposes one of two shapes: an
    ``_out`` lane whose stats carry both ``messages_sent`` and
    ``messages_delivered`` (transport lanes, kernel-TCP directions), or a
    ``_connection`` with an ``in_flight()`` method (FreeFlow connection
    ends).  Anything else is a bug in the caller — silently answering 0
    here used to end the drain loop early and corrupt the *next*
    measurement on the channel, so unknown endpoints are rejected loudly.
    """
    out_lane = getattr(send_end, "_out", None)
    if out_lane is not None and hasattr(out_lane, "stats"):
        stats = out_lane.stats
        sent = getattr(stats, "messages_sent", None)
        delivered = getattr(stats, "messages_delivered", None)
        if sent is not None and delivered is not None:
            return sent - delivered
    connection = getattr(send_end, "_connection", None)
    if connection is not None:
        return connection.in_flight()
    raise TypeError(
        f"cannot count in-flight messages on {type(send_end).__name__}: "
        "expected an endpoint with lane stats "
        "(messages_sent/messages_delivered) or a FlowConnection facade"
    )


def _snapshot(hosts: Sequence["Host"]) -> tuple[dict, dict, dict, dict]:
    """Per-host utilisation, read through the registry's single set of
    host readers so the harness and the ``repro.host.*`` gauges can
    never disagree about what "utilisation" means."""
    cpu: dict = {}
    engine: dict = {}
    link: dict = {}
    membus: dict = {}
    for host in hosts:
        util = _registry.host_utilisation(host)
        cpu[host.name] = util["cpu_pct"]
        engine[host.name] = util["nic_engine_util"]
        link[host.name] = util["link_util"]
        membus[host.name] = util["membus_util"]
    return cpu, engine, link, membus


def run_stream(
    env: "Environment",
    pairs,
    duration_s: float = 0.05,
    message_bytes: int = 1 << 20,
    hosts: Sequence["Host"] = (),
    warmup_s: float = 0.002,
    drain_s: float = 0.001,
    max_drain_s: float = 1.0,
) -> StreamResult:
    """Saturate one or more endpoint pairs and measure delivered goodput.

    ``pairs`` is one ``(send_end, recv_end)`` tuple or a list of them
    (multi-pair experiments pass 2-16).  Each sender pushes back-to-back
    ``message_bytes`` messages; each receiver consumes as fast as the
    data plane delivers.  Counting starts after ``warmup_s``.
    """
    if hasattr(pairs, "send"):
        raise TypeError("pass (send_end, recv_end) tuples, not a single end")
    if pairs and hasattr(pairs[0], "send"):
        pairs = [tuple(pairs)]
    if not pairs:
        raise ValueError("need at least one endpoint pair")

    stop_at = env.now + warmup_s + duration_s
    counting = {"on": warmup_s == 0, "messages": 0, "bytes": 0}
    per_pair = [0] * len(pairs)
    tracer = _tracer.ACTIVE
    trace_mark = len(tracer) if tracer is not None else 0

    def sender(end):
        try:
            while env.now < stop_at:
                yield from end.send(message_bytes)
        except Interrupt:
            return

    def receiver(end, index):
        try:
            while True:
                message = yield from end.recv()
                if counting["on"]:
                    counting["messages"] += 1
                    counting["bytes"] += message.size_bytes
                    per_pair[index] += message.size_bytes
        except Interrupt:
            return

    workers = []
    for index, (send_end, recv_end) in enumerate(pairs):
        workers.append(env.process(sender(send_end)))
        workers.append(env.process(receiver(recv_end, index)))

    if warmup_s > 0:
        env.run(until=env.now + warmup_s)
        for host in hosts:
            host.reset_accounting()
        counting["on"] = True
    measure_start = env.now
    events_before = env.events_processed
    env.run(until=stop_at)
    elapsed = env.now - measure_start
    engine_events = env.events_processed - events_before
    cpu, engine, link, membus = _snapshot(hosts)
    # Tear the workload down so the endpoints are reusable: stop the
    # senders, let the receivers drain everything still in flight, then
    # retire the receivers — a parked receiver (or a stale queued
    # message) would corrupt the next measurement on this channel.
    counting["on"] = False
    for worker in workers[0::2]:
        if worker.is_alive:
            worker.interrupt("measurement over")
    deadline = env.now + max_drain_s
    while env.now < deadline:
        env.run(until=min(deadline, env.now + drain_s))
        if all(_pair_in_flight(s, r) == 0 for s, r in pairs):
            # One settle window so the last delivery gets consumed.
            env.run(until=env.now + drain_s)
            break
    for worker in workers[1::2]:
        if worker.is_alive:
            worker.interrupt("measurement over")
    env.run(until=env.now)

    result = StreamResult(
        gbps=to_gbps(counting["bytes"] / elapsed) if elapsed > 0 else 0.0,
        messages=counting["messages"],
        payload_bytes=counting["bytes"],
        duration_s=elapsed,
        cpu_percent=cpu,
        nic_engine_util=engine,
        link_util=link,
        membus_util=membus,
        per_pair_bytes=per_pair,
        engine_events=engine_events,
    )
    if tracer is not None and len(tracer) > trace_mark:
        result.breakdown = tracer.breakdown(start=trace_mark)
    _registry.counter_inc("repro.bench.stream.runs")
    _registry.histogram_observe("repro.bench.stream.gbps", result.gbps)
    return result


def run_pingpong(
    env: "Environment",
    client_end,
    server_end,
    rounds: int = 200,
    message_bytes: int = 4096,
    warmup_rounds: int = 20,
) -> PingPongResult:
    """Closed-loop ping-pong; records one-way latencies (RTT / 2)."""
    if rounds <= 0:
        raise ValueError("rounds must be positive")
    latencies = Series()
    tracer = _tracer.ACTIVE
    trace_mark = len(tracer) if tracer is not None else 0

    def client():
        nonlocal trace_mark
        for i in range(warmup_rounds + rounds):
            if i == warmup_rounds and tracer is not None:
                # Scope the breakdown to the measured rounds only.
                trace_mark = len(tracer)
            started = env.now
            yield from client_end.send(message_bytes)
            yield from client_end.recv()
            if i >= warmup_rounds:
                latencies.add((env.now - started) / 2)
                _registry.histogram_observe(
                    "repro.bench.pingpong.latency_s", (env.now - started) / 2
                )

    def server():
        try:
            while True:
                yield from server_end.recv()
                yield from server_end.send(message_bytes)
        except Interrupt:
            return

    done = env.process(client())
    echo = env.process(server())
    env.run(until=done)
    if echo.is_alive:
        echo.interrupt("measurement over")
    env.run(until=env.now)
    result = PingPongResult(
        latencies=latencies, rounds=rounds, message_bytes=message_bytes
    )
    if tracer is not None and len(tracer) > trace_mark:
        result.breakdown = tracer.breakdown(start=trace_mark)
    _registry.counter_inc("repro.bench.pingpong.runs")
    return result

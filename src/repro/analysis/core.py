"""simlint core: findings, pragmas, baselines and the file walker.

The analyzer (``python -m repro lint``) checks repo-specific invariants
no generic linter can see — determinism, lost events, yield-atomicity,
unbounded growth, telemetry naming, flow-state ownership, bare asserts.
This module owns everything *around* the rules:

* :class:`Finding` — one diagnostic, with a line-number-free
  :meth:`~Finding.fingerprint` so baselines survive unrelated edits;
* inline pragmas — ``# simlint: disable=SIM004`` suppresses the named
  rules on that line, ``# simlint: disable-file=SIM001`` for the file;
* the baseline file (``.simlint-baseline.json``) — known findings the
  gate tolerates, so ``--fail-on-new`` only trips on regressions;
* :func:`lint_paths` — walk files, build the cross-file context (metric
  families registered in ``telemetry/registry.py``), run every rule.

Only the stdlib ``ast`` module is used; the analyzer adds no deps.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence

__all__ = [
    "Finding",
    "LintContext",
    "Suppressions",
    "collect_files",
    "display_path",
    "lint_source",
    "lint_paths",
    "load_baseline",
    "write_baseline",
    "partition",
]

#: Inline suppression syntax.  ``disable`` scopes to the carrying line
#: (or, on a comment-only line, to the next code line — which leaves
#: room for a justification sentence), ``disable-file`` to the whole
#: file.  Rule lists are comma-separated.
_PRAGMA_RE = re.compile(
    r"#.*\bsimlint:\s*(disable|disable-file)\s*=\s*([A-Z0-9,\s]+)"
)

#: Metric-name literal shape (see rules.SIM005): collected from
#: ``telemetry/registry.py`` to build the known-family cross-check set.
_METRIC_LITERAL_RE = re.compile(r"^repro\.[a-z0-9_.]+$")


@dataclass(frozen=True)
class Finding:
    """One diagnostic: a rule violated at a specific place."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    snippet: str = ""

    def fingerprint(self) -> tuple:
        """Line-number-free identity used by the baseline.

        ``(rule, path, snippet)`` survives edits elsewhere in the file;
        moving or rewriting the offending line invalidates the entry,
        which is what a baseline should do.
        """
        return (self.rule, self.path, self.snippet)

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_record(self) -> dict:
        return {"rule": self.rule, "path": self.path, "snippet": self.snippet}


@dataclass
class LintContext:
    """Cross-file facts the per-file rules need.

    ``known_families`` is the set of two-segment metric prefixes
    (``repro.lane``, ``repro.socket`` …) registered or declared in
    ``telemetry/registry.py``; ``None`` disables the SIM005 cross-check
    (pattern checking still applies).

    ``project`` is the whole-program wait/credit analysis
    (:class:`~repro.analysis.waitgraph.ProjectWaitGraph`) built by
    :func:`lint_paths` — SIM010 cycles can span files, so the graph must
    see every linted module at once.  When it is absent (bare
    :func:`lint_source` calls, e.g. the test fixtures), the wait rules
    fall back to a per-tree analysis memoized in ``single_cache``.
    """

    known_families: Optional[set] = None
    project: Optional[object] = None
    single_cache: dict = field(default_factory=dict)


class Suppressions:
    """Per-file pragma index: which rules are disabled where."""

    def __init__(self, source: str) -> None:
        self.file_rules: set[str] = set()
        self.line_rules: dict[int, set[str]] = {}
        lines = source.splitlines()
        #: Pragmas from comment-only lines waiting for the next code line.
        carried: set[str] = set()
        for lineno, line in enumerate(lines, start=1):
            stripped = line.strip()
            comment_only = stripped.startswith("#")
            match = _PRAGMA_RE.search(line)
            if match is not None:
                rules = {
                    rule.strip()
                    for rule in match.group(2).split(",")
                    if rule.strip()
                }
                if match.group(1) == "disable-file":
                    self.file_rules |= rules
                elif comment_only:
                    carried |= rules
                else:
                    self.line_rules.setdefault(lineno, set()).update(rules)
            if carried and stripped and not comment_only:
                self.line_rules.setdefault(lineno, set()).update(carried)
                carried = set()

    def suppresses(self, rule: str, line: int) -> bool:
        if rule in self.file_rules:
            return True
        return rule in self.line_rules.get(line, ())


def display_path(path: "str | Path") -> str:
    """Stable, repo-relative display form of ``path``.

    Paths inside the package are shown from the last ``repro``/``tests``
    path component (``repro/core/flows.py``), so fingerprints match no
    matter where the checkout lives; anything else is shown as given.
    """
    parts = Path(path).parts
    for anchor in ("repro", "tests", "benchmarks"):
        if anchor in parts:
            index = len(parts) - 1 - parts[::-1].index(anchor)
            if index < len(parts) - 1 or parts[-1] == anchor:
                return "/".join(parts[index:])
    return Path(path).as_posix()


def collect_files(paths: Iterable["str | Path"]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: list[Path] = []
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            out.extend(
                candidate
                for candidate in sorted(path.rglob("*.py"))
                if "__pycache__" not in candidate.parts
            )
        elif path.suffix == ".py":
            out.append(path)
    return out


def _registry_families(files: Sequence[Path]) -> Optional[set]:
    """Metric families declared in ``telemetry/registry.py``.

    Every string literal in the registry module matching the metric
    shape contributes its first two dotted segments — this picks up both
    the pull-style registration prefixes (``repro.lane``, ``repro.host``)
    and the declared :data:`~repro.telemetry.registry.KNOWN_FAMILIES`
    tuple for push-style counters.  Returns None when no registry module
    is among the linted files (cross-check disabled).
    """
    families: set[str] = set()
    seen_registry = False
    for path in files:
        shown = display_path(path)
        if not shown.endswith("telemetry/registry.py"):
            continue
        seen_registry = True
        try:
            tree = ast.parse(path.read_text())
        except (OSError, SyntaxError):  # pragma: no cover - unreadable
            continue
        for node in ast.walk(tree):
            if (isinstance(node, ast.Constant)
                    and isinstance(node.value, str)
                    and _METRIC_LITERAL_RE.match(node.value)):
                segments = node.value.strip(".").split(".")
                if len(segments) >= 2:
                    families.add(".".join(segments[:2]))
    return families if seen_registry else None


def lint_source(
    source: str,
    path: "str | Path",
    rules: Optional[Sequence] = None,
    ctx: Optional[LintContext] = None,
) -> list[Finding]:
    """Run every rule over one file's source text."""
    from .rules import ALL_RULES

    shown = display_path(path)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [Finding("SIM000", shown, exc.lineno or 1, 0,
                        f"syntax error: {exc.msg}")]
    if ctx is None:
        ctx = LintContext()
    suppressions = Suppressions(source)
    lines = source.splitlines()
    findings: list[Finding] = []
    for rule in (ALL_RULES if rules is None else rules):
        for finding in rule.check(tree, shown, lines, ctx):
            if not suppressions.suppresses(finding.rule, finding.line):
                findings.append(finding)
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return findings


def lint_paths(
    paths: Iterable["str | Path"],
    rules: Optional[Sequence] = None,
    known_families: Optional[set] = None,
) -> list[Finding]:
    """Lint files/directories; returns all findings, path-ordered."""
    files = collect_files(paths)
    if known_families is None:
        known_families = _registry_families(files)
    ctx = LintContext(known_families=known_families,
                      project=_project_waitgraph(files))
    findings: list[Finding] = []
    for path in files:
        findings.extend(lint_source(path.read_text(), path, rules, ctx))
    return findings


def _project_waitgraph(files: Sequence[Path]):
    """Whole-program wait/credit analysis over the collected files.

    Files that fail to read or parse are simply left out — the per-file
    pass reports their syntax error as SIM000 anyway.
    """
    from .waitgraph import analyze_modules

    modules = []
    for path in files:
        try:
            modules.append((display_path(path), ast.parse(path.read_text())))
        except (OSError, SyntaxError):
            continue
    return analyze_modules(modules)


# -- baseline ---------------------------------------------------------------


def load_baseline(path: "str | Path") -> set[tuple]:
    """Fingerprints of the tolerated findings (empty set if no file)."""
    baseline_path = Path(path)
    if not baseline_path.exists():
        return set()
    data = json.loads(baseline_path.read_text())
    return {
        (entry["rule"], entry["path"], entry.get("snippet", ""))
        for entry in data.get("findings", [])
    }


def write_baseline(path: "str | Path", findings: Sequence[Finding]) -> None:
    """Persist ``findings`` as the new tolerated set (sorted, stable)."""
    records = sorted(
        (finding.as_record() for finding in findings),
        key=lambda record: (record["path"], record["rule"], record["snippet"]),
    )
    payload = {
        "comment": (
            "simlint baseline: known findings `python -m repro lint "
            "--fail-on-new` tolerates. Regenerate with --write-baseline; "
            "shrink it whenever a finding is fixed."
        ),
        "findings": records,
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def partition(
    findings: Sequence[Finding], baseline: set[tuple]
) -> tuple[list[Finding], list[Finding]]:
    """Split into (new, baselined) against the fingerprint set."""
    new: list[Finding] = []
    known: list[Finding] = []
    for finding in findings:
        (known if finding.fingerprint() in baseline else new).append(finding)
    return new, known

"""Runtime wait-for graph: who is parked on what, and who can fire it.

The static pass (:mod:`repro.analysis.waitgraph`) proves properties of
the *source*; this module watches the *running* engine — armed by
``REPRO_WAITFOR=1`` or :func:`install`.  It hooks the three resource
families (:class:`~repro.sim.resources.Resource`,
:class:`~repro.sim.resources.Store`, :class:`~repro.sim.resources.Tank`)
plus :meth:`Environment.run <repro.sim.scheduler.Environment.run>`:

* **Park tracking** — every blocking ``request()``/``get()``/``put()``
  issued from inside a process records a wait edge ``process →
  resource`` (fast-path operations that complete on the spot cost one
  dict probe and no edge).
* **Lock cycle check at park time** — when a process blocks on a
  :class:`Resource` slot, the holders of that slot are chased through
  their own lock waits; a ring back to the parking process raises
  :class:`~repro.errors.DeadlockDetected` *at the park site*, naming
  every process and resource in the cycle.  Only pure-lock cycles
  raise: a slot can never be released by anyone outside the ring.
  Tank/store waits are backpressure — a third party can always put or
  get — so they never raise, but they do appear in the reports.
* **Ownership ledgers** — each :class:`Tank` carries a signed FIFO
  ledger of outstanding amounts: net successful ``put`` entries mean
  those processes hold ring/window occupancy, net successful ``get``
  entries mean they hold credit.  The inverse operation repays the
  ledger head first (the FIFO matches the tank's own grant order), so
  at any instant the ledger names exactly who owes the bytes a parked
  peer is waiting for.
* **Idle report instead of a silent hang** — when ``run()`` returns
  with the event queues drained while processes are still parked, the
  full ownership chain (who waits on what, who holds it, how much) is
  snapshotted; :func:`idle_report` returns it.  A live snapshot is
  available any time via :func:`report` — the chaos harness uses it to
  assert that a stalled credit's owner is named while the stall is in
  progress.

Resources accept a ``label=`` at construction; unlabeled ones get a
deterministic ``<type>#<n>`` name in first-seen order (never ``id()``/
hex, so reports are byte-stable across runs).  Processes are named from
their generator's qualname, with a ``#n`` suffix for repeats.

Composes with the sanitizer and the profiler in any order: ``install``
saves whatever methods it finds and ``uninstall`` restores exactly
those, so instrumentation must be removed LIFO (the same contract the
other two follow).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from ..errors import DeadlockDetected

__all__ = [
    "install",
    "uninstall",
    "installed",
    "stats",
    "reset_stats",
    "report",
    "idle_report",
]

#: Sweep threshold for the request→owner map (see _sweep_request_owners).
_OWNER_SWEEP_AT = 4096


class _State:
    """Saved originals + live wait-for graph while installed."""

    def __init__(self) -> None:
        self.orig_request = None
        self.orig_store_get = None
        self.orig_tank_get = None
        self.orig_tank_put = None
        self.orig_run = None
        #: process -> (event, resource, kind, amount) for its live wait.
        self.waits: dict = {}
        #: Request -> owning process (granted or queued).
        self.request_owner: dict = {}
        #: Tank -> [sign, deque[(process, amount)]].  sign +1: the
        #: entries hold occupancy (net puts); sign -1: they hold credit
        #: (net gets); 0: settled.
        self.ledgers: dict = {}
        self.labels: dict = {}
        self.label_counts: dict = {}
        self.proc_names: dict = {}
        self.name_counts: dict = {}
        self.checks: dict = {}
        self.violations = 0
        self.last_idle: Optional[dict] = None


_state: Optional[_State] = None


def installed() -> bool:
    return _state is not None


def stats() -> dict:
    """Counters: parks recorded, cycle checks run, violations raised."""
    if _state is None:
        return {"installed": False}
    return {
        "installed": True,
        "violations": _state.violations,
        **dict(sorted(_state.checks.items())),
    }


def reset_stats() -> None:
    """Drop all accumulated state (counters, waits, ledgers, names).

    Call between independent simulation runs under one install — stale
    waits from a finished environment would otherwise bleed into the
    next run's reports.
    """
    if _state is not None:
        _state.checks.clear()
        _state.violations = 0
        _state.last_idle = None
        _state.waits.clear()
        _state.request_owner.clear()
        _state.ledgers.clear()
        _state.labels.clear()
        _state.label_counts.clear()
        _state.proc_names.clear()
        _state.name_counts.clear()


def _bump(key: str) -> None:
    state = _state
    if state is not None:
        state.checks[key] = state.checks.get(key, 0) + 1


# -- naming ------------------------------------------------------------------


def _label(state: _State, resource) -> str:
    explicit = getattr(resource, "label", None)
    if explicit:
        return explicit
    name = state.labels.get(resource)
    if name is None:
        base = type(resource).__name__.lower()
        n = state.label_counts.get(base, 0) + 1
        state.label_counts[base] = n
        name = f"{base}#{n}"
        state.labels[resource] = name
    return name


def _proc_name(state: _State, proc) -> str:
    if proc is None:
        return "external"
    name = state.proc_names.get(proc)
    if name is None:
        gen = proc._generator
        code = getattr(gen, "gi_code", None)
        base = (getattr(code, "co_qualname", None)
                or getattr(gen, "__name__", None) or "process")
        # Qualnames of nested generators carry an `outer.<locals>.`
        # prefix that only adds noise to reports; keep the leaf name
        # (collisions are disambiguated by the #n suffix below).
        base = base.rpartition(".")[2]
        n = state.name_counts.get(base, 0) + 1
        state.name_counts[base] = n
        name = base if n == 1 else f"{base}#{n}"
        state.proc_names[proc] = name
    return name


# -- wait records ------------------------------------------------------------


def _record_wait(state, proc, event, resource, kind, amount) -> None:
    record = (event, resource, kind, amount)
    state.waits[proc] = record
    _bump("parks")

    def _purge(_event, state=state, proc=proc, record=record):
        if state.waits.get(proc) is record:
            del state.waits[proc]

    event._add_callback(_purge)


def _wait_live(wait) -> bool:
    """Is this wait still pending?  (Abandoned waits leave no trace on
    the event, so validity is checked against the resource's queue.)"""
    event, resource, kind, _amount = wait
    if event.triggered:
        return False
    if kind == "lock":
        return event in resource.queue
    if kind == "store-get":
        return event in resource._get_queue
    if kind == "tank-get":
        return event in resource._gets
    return event in resource._puts  # tank-put


def _live_wait(state, proc):
    """The process's wait record, lazily purging stale entries."""
    wait = state.waits.get(proc)
    if wait is None:
        return None
    if not _wait_live(wait):
        del state.waits[proc]
        return None
    return wait


# -- tank ledgers ------------------------------------------------------------


def _tank_account(state, tank, proc, amount, sign) -> None:
    """Fold one successful get (sign -1) / put (sign +1) into the ledger.

    An op of the opposite sign repays the FIFO head first; any leftover
    flips the ledger's sign.  Amounts of zero settle nothing and are
    dropped.
    """
    _bump("tank_ops")
    if amount <= 0:
        return
    entry = state.ledgers.get(tank)
    if entry is None:
        entry = state.ledgers[tank] = [0, deque()]
    entries = entry[1]
    remaining = amount
    if entry[0] == -sign:
        while remaining and entries:
            holder, held = entries[0]
            if held > remaining:
                entries[0] = (holder, held - remaining)
                remaining = 0
            else:
                entries.popleft()
                remaining -= held
        if not entries:
            entry[0] = 0
    if remaining:
        entries.append((proc, remaining))
        entry[0] = sign


def _tank_holders(state, tank) -> list:
    entry = state.ledgers.get(tank)
    if entry is None or not entry[1]:
        return []
    holds = "occupancy" if entry[0] > 0 else "credit"
    return [
        {"process": _proc_name(state, holder), "holds": holds,
         "amount": held}
        for holder, held in entry[1]
    ]


# -- lock cycle check --------------------------------------------------------


def _lock_holders(state, resource) -> list:
    out = []
    for request in resource.users:
        owner = state.request_owner.get(request)
        if owner is not None:
            out.append(owner)
    return out


def _sweep_request_owners(state) -> None:
    state.request_owner = {
        request: owner
        for request, owner in state.request_owner.items()
        if request in request.resource.users
        or request in request.resource.queue
    }


def _lock_cycle_check(state, proc, resource) -> None:
    """DFS the holder chain from ``resource``; a path of lock waits
    leading back to ``proc`` is an unbreakable ring — raise."""
    _bump("lock_checks")

    def _walk(waiter, res, path, seen):
        for holder in _lock_holders(state, res):
            step = (waiter, res, holder)
            if holder is proc:
                _raise_deadlock(state, path + [step])
            if holder in seen:
                continue
            wait = _live_wait(state, holder)
            if wait is None or wait[2] != "lock":
                continue
            _walk(holder, wait[1], path + [step], seen | {holder})

    _walk(proc, resource, [], {proc})


def _raise_deadlock(state, steps) -> None:
    state.violations += 1
    parts = [
        f"{_proc_name(state, waiter)} waits on {_label(state, res)} "
        f"held by {_proc_name(state, holder)}"
        for waiter, res, holder in steps
    ]
    raise DeadlockDetected(
        "lock wait-for cycle (no process in the ring can ever release): "
        + "; ".join(parts)
    )


# -- traced resource operations ----------------------------------------------


def _traced_request(self, priority: int = 0):
    state = _state
    request = state.orig_request(self, priority)
    proc = self.env._active_process
    if proc is not None:
        state.request_owner[request] = proc
        if len(state.request_owner) > _OWNER_SWEEP_AT:
            _sweep_request_owners(state)
        if not request.triggered:
            _record_wait(state, proc, request, self, "lock", None)
            _lock_cycle_check(state, proc, self)
    return request


def _traced_store_get(self, predicate=None):
    state = _state
    event = state.orig_store_get(self, predicate)
    if not event.triggered:
        proc = self.env._active_process
        if proc is not None:
            _record_wait(state, proc, event, self, "store-get", None)
    return event


def _traced_tank_get(self, amount):
    state = _state
    event = state.orig_tank_get(self, amount)
    proc = self.env._active_process
    if event.triggered:
        _tank_account(state, self, proc, amount, -1)
    else:
        if proc is not None:
            _record_wait(state, proc, event, self, "tank-get", amount)

        def _granted(_event, state=state, tank=self, proc=proc,
                     amount=amount):
            _tank_account(state, tank, proc, amount, -1)

        event._add_callback(_granted)
    return event


def _traced_tank_put(self, amount):
    state = _state
    event = state.orig_tank_put(self, amount)
    proc = self.env._active_process
    if event.triggered:
        _tank_account(state, self, proc, amount, +1)
    else:
        if proc is not None:
            _record_wait(state, proc, event, self, "tank-put", amount)

        def _granted(_event, state=state, tank=self, proc=proc,
                     amount=amount):
            _tank_account(state, tank, proc, amount, +1)

        event._add_callback(_granted)
    return event


# -- reports -----------------------------------------------------------------


def report() -> dict:
    """Live snapshot: every parked process, what it waits on, and the
    ownership chain that could fire it."""
    state = _state
    if state is None:
        return {"installed": False}
    parked = []
    for proc in list(state.waits):
        wait = _live_wait(state, proc)
        if wait is None:
            continue
        _event, resource, kind, amount = wait
        if kind == "lock":
            holders = [
                {"process": _proc_name(state, owner), "holds": "slot",
                 "amount": None}
                for owner in _lock_holders(state, resource)
            ]
        elif kind in ("tank-get", "tank-put"):
            holders = _tank_holders(state, resource)
        else:
            holders = []
        parked.append({
            "process": _proc_name(state, proc),
            "waits_on": _label(state, resource),
            "kind": kind,
            "amount": amount,
            "holders": holders,
        })
    parked.sort(key=lambda entry: (entry["process"], entry["waits_on"]))
    return {"installed": True, "parked": parked}


def idle_report() -> Optional[dict]:
    """The ownership chain captured the last time the engine drained its
    queues with processes still parked (None if that never happened)."""
    if _state is None:
        return None
    return _state.last_idle


def _traced_run(self, until=None):
    state = _state
    result = state.orig_run(self, until)
    # Only a genuine drain counts as "idle": run(until=<time>) returning
    # at its time bound leaves future events queued.
    if not (self._ready or self._tail or self._queue):
        snapshot = report()
        if snapshot.get("parked"):
            state.last_idle = snapshot
            _bump("idle_reports")
    return result


# -- install / uninstall -----------------------------------------------------


def install() -> None:
    """Arm the wait-for graph (idempotent)."""
    global _state
    if _state is not None:
        return
    from ..sim.resources import Resource, Store, Tank
    from ..sim.scheduler import Environment

    state = _State()
    state.orig_request = Resource.request
    state.orig_store_get = Store.get
    state.orig_tank_get = Tank.get
    state.orig_tank_put = Tank.put
    state.orig_run = Environment.run
    _state = state

    Resource.request = _traced_request
    Store.get = _traced_store_get
    Tank.get = _traced_tank_get
    Tank.put = _traced_tank_put
    Environment.run = _traced_run


def uninstall() -> None:
    """Restore the untraced resource operations (idempotent)."""
    global _state
    if _state is None:
        return
    from ..sim.resources import Resource, Store, Tank
    from ..sim.scheduler import Environment

    Resource.request = _state.orig_request
    Store.get = _state.orig_store_get
    Tank.get = _state.orig_tank_get
    Tank.put = _state.orig_tank_put
    Environment.run = _state.orig_run
    _state = None

"""simlint: FreeFlow-repro-aware static analysis and runtime sanitizers.

Two complementary halves:

* :mod:`repro.analysis.core` + :mod:`repro.analysis.rules` — the static
  analyzer behind ``python -m repro lint`` (rules SIM001-SIM009, inline
  pragmas, a fingerprint baseline for ``--fail-on-new`` CI gating);
* :mod:`repro.analysis.sanitizer` — runtime invariant checks armed by
  ``REPRO_SANITIZE=1`` or :func:`repro.analysis.sanitizer.install`,
  catching dynamically what the AST cannot see (events scheduled in the
  past, clock regressions, stats lost across lane transplants, flow
  transitions that bypass the FlowTable).

This package is imported lazily by ``repro/__main__.py`` and the
sanitizer hook; importing :mod:`repro` alone never pays for it.
"""

from .core import Finding, lint_paths, lint_source
from .rules import ALL_RULES, RULES_BY_CODE

__all__ = [
    "Finding",
    "lint_paths",
    "lint_source",
    "ALL_RULES",
    "RULES_BY_CODE",
]

"""simlint: FreeFlow-repro-aware static analysis and runtime sanitizers.

Three complementary pieces (the advertised rule range is derived from
the registry — see :func:`repro.analysis.rules.rule_range`):

* :mod:`repro.analysis.core` + :mod:`repro.analysis.rules` — the static
  analyzer behind ``python -m repro lint`` (per-file rules plus the
  interprocedural wait/credit pass in
  :mod:`repro.analysis.waitgraph`/:mod:`repro.analysis.callgraph`,
  inline pragmas, a fingerprint baseline for ``--fail-on-new`` CI
  gating);
* :mod:`repro.analysis.sanitizer` — runtime invariant checks armed by
  ``REPRO_SANITIZE=1`` or :func:`repro.analysis.sanitizer.install`,
  catching dynamically what the AST cannot see (events scheduled in the
  past, clock regressions, stats lost across lane transplants, flow
  transitions that bypass the FlowTable);
* :mod:`repro.analysis.waitfor` — the runtime wait-for graph armed by
  ``REPRO_WAITFOR=1``: every parked process records what it waits on
  and who can fire it, lock cycles raise
  :class:`~repro.errors.DeadlockDetected` at park time, and an engine
  that goes idle with parked processes dumps the ownership chain
  instead of hanging silently.

This package is imported lazily by ``repro/__main__.py`` and the
sanitizer/wait-for hooks; importing :mod:`repro` alone never pays for
it.
"""

from .core import Finding, lint_paths, lint_source
from .rules import ALL_RULES, RULES_BY_CODE, rule_range

__all__ = [
    "Finding",
    "lint_paths",
    "lint_source",
    "ALL_RULES",
    "RULES_BY_CODE",
    "rule_range",
]

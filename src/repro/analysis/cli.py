"""``python -m repro lint`` — the simlint command-line front end.

Modes:

* default — lint ``src/repro`` (or the given paths), report findings,
  exit 1 if any finding is *new* (not in the baseline);
* ``--fail-on-new`` — the same gate, spelled out for CI readability;
* ``--write-baseline`` — record the current findings as the tolerated
  set and exit 0 (run after intentionally accepting a finding);
* ``--no-baseline`` — ignore the baseline: every finding is "new";
* ``--list-rules`` — print the rule codes and what they check;
* ``--explain CODE`` — print one rule's full documentation plus its
  minimal bad/good fixture pair;
* ``--format json`` — machine-readable output for tooling.

The baseline lives at ``.simlint-baseline.json`` (current directory
first, then the repository root inferred from the installed package).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

import inspect

from . import core
from .rules import ALL_RULES, RULES_BY_CODE, rule_range

__all__ = ["main"]

BASELINE_NAME = ".simlint-baseline.json"


def _package_dir() -> Path:
    import repro

    return Path(repro.__file__).resolve().parent


def _default_baseline(explicit: Optional[str]) -> Path:
    """Baseline location: explicit flag, else CWD, else repo root."""
    if explicit:
        return Path(explicit)
    cwd_candidate = Path.cwd() / BASELINE_NAME
    if cwd_candidate.exists():
        return cwd_candidate
    # src/repro -> repo root two levels up (editable/source checkouts).
    root_candidate = _package_dir().parent.parent / BASELINE_NAME
    if root_candidate.exists():
        return root_candidate
    return cwd_candidate


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(f"simlint: FreeFlow-repro-aware static analysis "
                     f"(rules {rule_range()})"),
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files/directories to lint (default: the repro package)")
    parser.add_argument(
        "--baseline", metavar="PATH",
        help=f"baseline file (default: {BASELINE_NAME} in CWD or repo root)")
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="record current findings as the tolerated set and exit 0")
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline; every finding counts as new")
    parser.add_argument(
        "--fail-on-new", action="store_true",
        help="exit 1 when findings outside the baseline exist "
             "(this is the default behaviour; the flag spells out the "
             "CI contract)")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule codes and summaries, then exit")
    parser.add_argument(
        "--explain", metavar="CODE",
        help="print one rule's documentation and its minimal bad/good "
             "example, then exit")
    return parser


def _explain(code: str) -> int:
    rule = RULES_BY_CODE.get(code.upper())
    if rule is None:
        print(f"simlint: unknown rule {code!r} (known: {rule_range()})",
              file=sys.stderr)
        return 2
    print(f"{rule.code} — {rule.summary}")
    doc = inspect.getdoc(type(rule))
    if doc:
        print()
        print(doc)
    if rule.example_bad:
        print()
        print("Fires on:")
        print()
        for line in rule.example_bad.rstrip().splitlines():
            print(f"    {line}")
    if rule.example_good:
        print()
        print("Silent on:")
        print()
        for line in rule.example_good.rstrip().splitlines():
            print(f"    {line}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.code}  {rule.summary}")
        return 0

    if args.explain:
        return _explain(args.explain)

    paths = args.paths or [str(_package_dir())]
    findings = core.lint_paths(paths)

    baseline_path = _default_baseline(args.baseline)
    if args.write_baseline:
        core.write_baseline(baseline_path, findings)
        print(f"simlint: wrote {len(findings)} finding(s) to "
              f"{baseline_path}")
        return 0

    baseline = set() if args.no_baseline else core.load_baseline(
        baseline_path)
    new, known = core.partition(findings, baseline)

    if args.format == "json":
        print(json.dumps({
            "new": [_record(f) for f in new],
            "baselined": [_record(f) for f in known],
        }, indent=2))
    else:
        for finding in new:
            print(finding.format())
        summary = (f"simlint: {len(new)} new finding(s), "
                   f"{len(known)} baselined")
        if new:
            summary += (f" — fix them, add a '# simlint: disable=...' "
                        f"pragma with a reason, or rerun with "
                        f"--write-baseline to accept")
        print(summary, file=sys.stderr if new else sys.stdout)

    return 1 if new else 0


def _record(finding: core.Finding) -> dict:
    return {
        "rule": finding.rule,
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "message": finding.message,
        "snippet": finding.snippet,
    }


if __name__ == "__main__":  # pragma: no cover - direct module execution
    raise SystemExit(main())

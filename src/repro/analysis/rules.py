"""simlint rules SIM001–SIM009: FreeFlow-repro-specific invariants.

Each rule is a small AST pass.  They are deliberately narrow — tuned to
how *this* codebase expresses the pattern — because a repo-specific
linter earns its keep by being quiet: a rule that cries wolf gets
pragma'd into noise.  Where a rule cannot decide statically (a metric
name built entirely from variables, a loop back-edge), it stays silent;
the runtime sanitizer (:mod:`repro.analysis.sanitizer`) is the dynamic
complement that catches what escapes here.

Rule index:

* **SIM001** determinism — no wall clock / unseeded randomness in
  ``src/repro`` outside the ``sim/rand.py`` allowlist;
* **SIM002** lost event — an Event/Timeout/Store operation created in a
  sim-process generator but neither yielded, stored, nor returned;
* **SIM003** yield-point atomicity — read-modify-write of ``self.*``
  spanning a ``yield`` (state can change while the process is parked);
* **SIM004** unbounded growth — ``.append`` onto a long-lived list that
  is never pruned anywhere in its class/module;
* **SIM005** telemetry naming — metric literals must match
  ``repro.[a-z0-9_.]+`` and belong to a family the registry knows;
  event kinds must be lowercase dotted names;
* **SIM006** flow-state ownership — ``.state`` on flow connections is
  assigned only inside ``core/flows.py`` (the FlowTable state machine);
* **SIM007** no bare ``assert`` in library code — asserts vanish under
  ``python -O``; raise a typed error from :mod:`repro.errors`;
* **SIM008** per-message completion wait — ``cq.wait()`` inside a loop
  wakes the scheduler once per message; drain with
  ``CompletionQueue.wait_batch()`` so one wake applies a burst;
* **SIM009** unbounded accumulation — a telemetry/monitor dict keyed by
  runtime values (flow labels, host names) that is never pruned; a
  monitor must cost O(1) memory, so evict, bound, or sketch it.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from .core import Finding, LintContext

__all__ = [
    "Rule",
    "ALL_RULES",
    "RULES_BY_CODE",
    "DeterminismRule",
    "LostEventRule",
    "YieldAtomicityRule",
    "UnboundedGrowthRule",
    "TelemetryNamingRule",
    "FlowStateOwnershipRule",
    "BareAssertRule",
    "PerMessageCqWaitRule",
    "UnboundedAccumulationRule",
]


class Rule:
    """Base class: one code, one summary, one AST pass."""

    code = "SIM000"
    summary = ""

    def check(
        self, tree: ast.Module, path: str, lines: list, ctx: LintContext
    ) -> list[Finding]:
        raise NotImplementedError

    def finding(self, path: str, node: ast.AST, message: str,
                lines: list) -> Finding:
        line = getattr(node, "lineno", 1)
        snippet = lines[line - 1].strip() if 0 < line <= len(lines) else ""
        return Finding(self.code, path, line,
                       getattr(node, "col_offset", 0), message, snippet)


def _in_tests(path: str) -> bool:
    return path.startswith("tests/") or "/tests/" in path


def _is_self_attr(node: ast.AST) -> bool:
    return (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self")


def _walk_own_scope(body: list) -> Iterator[ast.AST]:
    """Walk statements/expressions of one function body, skipping nested
    function and class scopes (their yields/statements are not ours)."""
    stack = list(body)
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef, ast.Lambda)):
                continue
            stack.append(child)


def _is_generator(fn: ast.FunctionDef) -> bool:
    return any(isinstance(node, (ast.Yield, ast.YieldFrom))
               for node in _walk_own_scope(fn.body))


# ---------------------------------------------------------------------------
# SIM001 — determinism
# ---------------------------------------------------------------------------


class DeterminismRule(Rule):
    code = "SIM001"
    summary = ("no wall clock / unseeded randomness in simulation code; "
               "use repro.sim.rand.RandomStream")

    #: Modules whose import alone is a violation: all their useful entry
    #: points are nondeterministic from the simulation's point of view.
    BANNED_MODULES = {"random", "secrets"}

    #: ``module_or_class -> {attribute}`` calls that read the wall clock
    #: or an OS entropy source.
    BANNED_ATTRS = {
        "time": {"time", "time_ns", "monotonic", "monotonic_ns",
                 "perf_counter", "perf_counter_ns"},
        "datetime": {"now", "utcnow", "today"},
        "date": {"today"},
        "os": {"urandom", "getrandom"},
        "uuid": {"uuid1", "uuid4"},
    }

    #: ``from module import name`` pairs equivalent to the above.
    BANNED_FROM = {
        ("time", "time"), ("time", "time_ns"), ("time", "monotonic"),
        ("time", "perf_counter"), ("os", "urandom"),
        ("uuid", "uuid1"), ("uuid", "uuid4"),
    }

    #: The seeded-randomness home (its own ``import random`` is the
    #: point) and the engine profiler (wall-clock attribution is its
    #: job; its deterministic outputs exclude the wall columns).
    ALLOWLIST_SUFFIXES = ("repro/sim/rand.py",
                          "repro/telemetry/profiler.py")

    def check(self, tree, path, lines, ctx):
        if path.endswith(self.ALLOWLIST_SUFFIXES) or _in_tests(path):
            return []
        out: list[Finding] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in self.BANNED_MODULES:
                        out.append(self.finding(
                            path, node,
                            f"import of nondeterministic module "
                            f"{alias.name!r} — use repro.sim.rand."
                            f"RandomStream (seeded) instead", lines))
            elif isinstance(node, ast.ImportFrom):
                module = (node.module or "").split(".")[0]
                if module in self.BANNED_MODULES:
                    out.append(self.finding(
                        path, node,
                        f"import from nondeterministic module {module!r} — "
                        f"use repro.sim.rand.RandomStream (seeded) instead",
                        lines))
                    continue
                for alias in node.names:
                    if (module, alias.name) in self.BANNED_FROM:
                        out.append(self.finding(
                            path, node,
                            f"import of nondeterministic "
                            f"{module}.{alias.name} — simulation code must "
                            f"use env.now / seeded streams", lines))
            elif isinstance(node, ast.Call):
                out.extend(self._check_call(node, path, lines))
        return out

    def _check_call(self, call: ast.Call, path, lines):
        func = call.func
        if isinstance(func, ast.Name) and func.id == "hash" and call.args:
            yield self.finding(
                path, call,
                "builtin hash() is salted per interpreter run "
                "(PYTHONHASHSEED) — derive stable keys with "
                "hashlib.sha256 or repro.sim.rand", lines)
            return
        if not isinstance(func, ast.Attribute):
            return
        base = func.value
        base_name = None
        if isinstance(base, ast.Name):
            base_name = base.id
        elif isinstance(base, ast.Attribute):
            base_name = base.attr
        if base_name is None:
            return
        banned = self.BANNED_ATTRS.get(base_name)
        if banned and func.attr in banned:
            yield self.finding(
                path, call,
                f"nondeterministic call {base_name}.{func.attr}() — "
                f"simulation code must use env.now (sim clock) or "
                f"repro.sim.rand (seeded)", lines)


# ---------------------------------------------------------------------------
# SIM002 — lost event
# ---------------------------------------------------------------------------


class LostEventRule(Rule):
    code = "SIM002"
    summary = ("event/store operation created in a generator but neither "
               "yielded, stored, nor returned")

    #: Methods whose return value *is* the claim: discarding it either
    #: leaks an event nobody can wait on, or worse (``.get``) consumes an
    #: item that is then dropped on the floor.
    DISCARD_METHODS = {"timeout", "event", "all_of", "any_of", "get"}
    DISCARD_CTORS = {"Timeout", "Event", "AllOf", "AnyOf", "Condition"}

    def check(self, tree, path, lines, ctx):
        out: list[Finding] = []
        for fn in ast.walk(tree):
            if not isinstance(fn, ast.FunctionDef) or not _is_generator(fn):
                continue
            for node in _walk_own_scope(fn.body):
                if not (isinstance(node, ast.Expr)
                        and isinstance(node.value, ast.Call)):
                    continue
                func = node.value.func
                if (isinstance(func, ast.Attribute)
                        and func.attr in self.DISCARD_METHODS):
                    out.append(self.finding(
                        path, node,
                        f".{func.attr}() result discarded inside generator "
                        f"{fn.name!r} — yield it, store it, or return it "
                        f"(a dropped event is a lost wakeup; a dropped "
                        f"get() is a lost item)", lines))
                elif (isinstance(func, ast.Name)
                        and func.id in self.DISCARD_CTORS):
                    out.append(self.finding(
                        path, node,
                        f"{func.id}(...) created and discarded inside "
                        f"generator {fn.name!r} — nobody can ever wait on "
                        f"it", lines))
        return out


# ---------------------------------------------------------------------------
# SIM003 — yield-point atomicity
# ---------------------------------------------------------------------------


class YieldAtomicityRule(Rule):
    code = "SIM003"
    summary = ("read-modify-write of self.* spanning a yield — re-read "
               "after resuming")

    def check(self, tree, path, lines, ctx):
        out: list[Finding] = []
        for fn in ast.walk(tree):
            if isinstance(fn, ast.FunctionDef) and _is_generator(fn):
                _AtomicityScan(self, path, lines, out).run(fn.body)
        return out


class _AtomicityScan:
    """Lexical single pass over one generator body.

    Tracks *carriers* — locals assigned directly from ``self.attr`` —
    together with how many yields had executed at the read.  A later
    ``self.attr = <expr using carrier>`` after additional yields is the
    classic lost-update: the process was parked in between and another
    process may have changed ``self.attr``.

    If/else branches are scanned independently from a snapshot and
    merged (union of carriers, max yield count); loop back-edges are not
    modeled — a single lexical pass keeps the rule predictable.
    """

    def __init__(self, rule: Rule, path: str, lines: list,
                 out: list) -> None:
        self.rule = rule
        self.path = path
        self.lines = lines
        self.out = out
        self.yields = 0
        #: local name -> (attr read from self, yields seen at the read)
        self.carriers: dict = {}

    def run(self, body: list) -> None:
        self._stmts(body)

    def _stmts(self, stmts: list) -> None:
        for stmt in stmts:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return
        if isinstance(stmt, ast.Assign):
            self._count(stmt.value)
            self._assign(stmt)
        elif isinstance(stmt, ast.If):
            self._count(stmt.test)
            snapshot = dict(self.carriers)
            base_yields = self.yields
            self._stmts(stmt.body)
            body_carriers = dict(self.carriers)
            body_yields = self.yields
            self.carriers = dict(snapshot)
            self.yields = base_yields
            self._stmts(stmt.orelse)
            self.carriers.update(body_carriers)
            self.yields = max(self.yields, body_yields)
        elif isinstance(stmt, (ast.For, ast.While)):
            self._count(stmt.iter if isinstance(stmt, ast.For)
                        else stmt.test)
            self._stmts(stmt.body)
            self._stmts(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._count(item.context_expr)
            self._stmts(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._stmts(stmt.body)
            for handler in stmt.handlers:
                self._stmts(handler.body)
            self._stmts(stmt.orelse)
            self._stmts(stmt.finalbody)
        else:
            self._count(stmt)

    def _count(self, node: Optional[ast.AST]) -> None:
        if node is None:
            return
        for sub in ast.walk(node):
            if isinstance(sub, (ast.Yield, ast.YieldFrom)):
                self.yields += 1

    def _assign(self, stmt: ast.Assign) -> None:
        value = stmt.value
        if len(stmt.targets) == 1 and isinstance(stmt.targets[0], ast.Name):
            name = stmt.targets[0].id
            if _is_self_attr(value):
                self.carriers[name] = (value.attr, self.yields)
            else:
                self.carriers.pop(name, None)
            return
        for target in stmt.targets:
            if not _is_self_attr(target):
                continue
            for sub in ast.walk(value):
                if not (isinstance(sub, ast.Name)
                        and sub.id in self.carriers):
                    continue
                attr, read_yields = self.carriers[sub.id]
                if attr == target.attr and read_yields < self.yields:
                    self.out.append(self.rule.finding(
                        self.path, stmt,
                        f"read-modify-write of self.{attr} spans a yield: "
                        f"{sub.id!r} was read before the process parked — "
                        f"re-read self.{attr} after resuming or update it "
                        f"before yielding", self.lines))
                    break


# ---------------------------------------------------------------------------
# SIM004 — unbounded growth
# ---------------------------------------------------------------------------


class UnboundedGrowthRule(Rule):
    code = "SIM004"
    summary = ("append onto a long-lived list that is never pruned — "
               "cap it or prune it")

    GROW = {"append", "extend", "appendleft"}
    PRUNE = {"pop", "popleft", "clear", "remove"}

    @staticmethod
    def _is_list_value(node: ast.AST) -> bool:
        if isinstance(node, ast.List):
            return True
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "list")

    def check(self, tree, path, lines, ctx):
        out: list[Finding] = []
        for cls in ast.walk(tree):
            if isinstance(cls, ast.ClassDef):
                self._check_class(cls, path, lines, out)
        self._check_module(tree, path, lines, out)
        return out

    def _check_class(self, cls: ast.ClassDef, path, lines, out) -> None:
        # Long-lived lists: attributes initialised to a list in __init__.
        candidates: set = set()
        for node in cls.body:
            if (isinstance(node, ast.FunctionDef)
                    and node.name == "__init__"):
                for sub in ast.walk(node):
                    if (isinstance(sub, ast.Assign)
                            and len(sub.targets) == 1
                            and _is_self_attr(sub.targets[0])
                            and self._is_list_value(sub.value)):
                        candidates.add(sub.targets[0].attr)
                    elif (isinstance(sub, ast.AnnAssign)
                            and sub.value is not None
                            and _is_self_attr(sub.target)
                            and self._is_list_value(sub.value)):
                        candidates.add(sub.target.attr)
        if not candidates:
            return
        grows: list = []
        pruned: set = set()
        for node in ast.walk(cls):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and _is_self_attr(node.func.value)):
                attr = node.func.value.attr
                if node.func.attr in self.GROW:
                    grows.append((attr, node))
                elif node.func.attr in self.PRUNE:
                    pruned.add(attr)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    base = (target.value
                            if isinstance(target, ast.Subscript)
                            else target)
                    if _is_self_attr(base):
                        pruned.add(base.attr)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    # Reassignment (self.x = self.x[-n:]) or slice store
                    # counts as a prune — but the defining `self.x = []`
                    # in __init__ does not.
                    if (_is_self_attr(target)
                            and not self._is_list_value(node.value)):
                        pruned.add(target.attr)
                    elif (isinstance(target, ast.Subscript)
                            and _is_self_attr(target.value)
                            and isinstance(target.slice, ast.Slice)):
                        pruned.add(target.value.attr)
        for attr, node in grows:
            if attr in candidates and attr not in pruned:
                out.append(self.finding(
                    path, node,
                    f"self.{attr} grows on every call and nothing in class "
                    f"{cls.name!r} ever prunes it — bound it (maxlen, "
                    f"reservoir, rollover) or prune on a schedule", lines))

    def _check_module(self, tree: ast.Module, path, lines, out) -> None:
        candidates = set()
        for stmt in tree.body:
            if (isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and self._is_list_value(stmt.value)):
                candidates.add(stmt.targets[0].id)
            elif (isinstance(stmt, ast.AnnAssign)
                    and stmt.value is not None
                    and isinstance(stmt.target, ast.Name)
                    and self._is_list_value(stmt.value)):
                candidates.add(stmt.target.id)
        if not candidates:
            return
        grows: list = []
        pruned: set = set()
        for node in ast.walk(tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in candidates):
                if node.func.attr in self.GROW:
                    grows.append((node.func.value.id, node))
                elif node.func.attr in self.PRUNE:
                    pruned.add(node.func.value.id)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    base = (target.value
                            if isinstance(target, ast.Subscript)
                            else target)
                    if isinstance(base, ast.Name) and base.id in candidates:
                        pruned.add(base.id)
            elif isinstance(node, ast.Assign) and node not in tree.body:
                for target in node.targets:
                    if (isinstance(target, ast.Name)
                            and target.id in candidates):
                        pruned.add(target.id)
        for name, node in grows:
            if name not in pruned:
                out.append(self.finding(
                    path, node,
                    f"module-level list {name!r} grows and is never pruned "
                    f"— it lives for the whole process; bound it or move "
                    f"it into an object with a lifecycle", lines))


# ---------------------------------------------------------------------------
# SIM005 — telemetry naming
# ---------------------------------------------------------------------------


class TelemetryNamingRule(Rule):
    code = "SIM005"
    summary = ("metric names must match repro.[a-z0-9_.]+ in a registered "
               "family; event kinds must be lowercase dotted names")

    METRIC_CALLS = {"counter_inc", "histogram_observe",
                    "counter", "gauge", "histogram"}
    METRIC_RE = re.compile(r"^repro(\.[a-z0-9_]+)+$")
    KIND_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")

    def check(self, tree, path, lines, ctx):
        out: list[Finding] = []
        in_registry = path.endswith("telemetry/registry.py")
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            func = node.func
            name = (func.id if isinstance(func, ast.Name)
                    else func.attr if isinstance(func, ast.Attribute)
                    else None)
            if name in self.METRIC_CALLS:
                self._check_metric(node, path, lines, ctx, in_registry, out)
            elif name == "emit":
                self._check_kind(node, path, lines, out)
        return out

    def _family(self, literal: str) -> Optional[str]:
        segments = [s for s in literal.split(".") if s]
        if len(segments) >= 2:
            return ".".join(segments[:2])
        return None

    def _check_metric(self, node, path, lines, ctx, in_registry, out):
        arg = node.args[0]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            name = arg.value
            if not self.METRIC_RE.match(name):
                out.append(self.finding(
                    path, node,
                    f"metric name {name!r} does not match "
                    f"repro.[a-z0-9_.]+ — every metric lives under the "
                    f"repro. namespace, lowercase dotted", lines))
                return
            family = self._family(name)
            if (ctx.known_families is not None and not in_registry
                    and family is not None
                    and family not in ctx.known_families):
                out.append(self.finding(
                    path, node,
                    f"metric family {family!r} is not declared in "
                    f"telemetry/registry.py (KNOWN_FAMILIES or a "
                    f"register_* prefix) — typo, or declare the family",
                    lines))
        elif isinstance(arg, ast.JoinedStr) and arg.values:
            head = arg.values[0]
            if not (isinstance(head, ast.Constant)
                    and isinstance(head.value, str)):
                return  # fully dynamic name: the rule stays silent
            if not head.value.startswith("repro."):
                out.append(self.finding(
                    path, node,
                    f"metric f-string starts with {head.value!r} — every "
                    f"metric name must start with 'repro.'", lines))
                return
            # Family check only when the first two segments are complete
            # (i.e. the literal head contains a second dot).
            if (head.value.count(".") >= 2
                    and ctx.known_families is not None and not in_registry):
                family = self._family(head.value)
                if family is not None and family not in ctx.known_families:
                    out.append(self.finding(
                        path, node,
                        f"metric family {family!r} is not declared in "
                        f"telemetry/registry.py — typo, or declare the "
                        f"family", lines))

    def _check_kind(self, node, path, lines, out):
        for arg in node.args:
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                kind = arg.value
                if not self.KIND_RE.match(kind):
                    out.append(self.finding(
                        path, node,
                        f"event kind {kind!r} does not match "
                        f"subject.verb naming ([a-z0-9_] segments joined "
                        f"by dots, e.g. 'flow.rebind')", lines))
                return  # only the first string positional is the kind


# ---------------------------------------------------------------------------
# SIM006 — flow-state ownership
# ---------------------------------------------------------------------------


class FlowStateOwnershipRule(Rule):
    code = "SIM006"
    summary = ("flow .state is assigned only inside core/flows.py — "
               "use FlowTable.transition()")

    OWNER_SUFFIX = "core/flows.py"
    FLOWISH = re.compile(r"^(flow|conn)", re.IGNORECASE)

    def check(self, tree, path, lines, ctx):
        if path.endswith(self.OWNER_SUFFIX):
            return []
        out: list[Finding] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            elif isinstance(node, ast.AugAssign):
                targets, value = [node.target], node.value
            else:
                continue
            for target in targets:
                if not (isinstance(target, ast.Attribute)
                        and target.attr == "state"):
                    continue
                if self._mentions_flowstate(value):
                    out.append(self.finding(
                        path, node,
                        "direct FlowState assignment — flow lifecycle is "
                        "owned by the FlowTable state machine in "
                        "core/flows.py; call table.transition() so the "
                        "legality check, watchers and telemetry fire",
                        lines))
                elif (isinstance(target.value, ast.Name)
                        and self.FLOWISH.match(target.value.id)):
                    out.append(self.finding(
                        path, node,
                        f"assignment to {target.value.id}.state outside "
                        f"core/flows.py — flow state transitions must go "
                        f"through FlowTable.transition()", lines))
        return out

    @staticmethod
    def _mentions_flowstate(value: ast.AST) -> bool:
        return any(isinstance(sub, ast.Name) and sub.id == "FlowState"
                   for sub in ast.walk(value))


# ---------------------------------------------------------------------------
# SIM007 — no bare assert in library code
# ---------------------------------------------------------------------------


class BareAssertRule(Rule):
    code = "SIM007"
    summary = ("bare assert vanishes under python -O — raise a typed "
               "error from repro.errors")

    def check(self, tree, path, lines, ctx):
        if _in_tests(path):
            return []
        return [
            self.finding(
                path, node,
                "bare assert in library code — it disappears under "
                "python -O and names no invariant; raise the matching "
                "repro.errors type instead", lines)
            for node in ast.walk(tree)
            if isinstance(node, ast.Assert)
        ]


# ---------------------------------------------------------------------------
# SIM008 — per-message completion wait in a loop
# ---------------------------------------------------------------------------


class PerMessageCqWaitRule(Rule):
    code = "SIM008"
    summary = ("cq.wait() inside a loop is one scheduler wake per "
               "message — drain with wait_batch()")

    @staticmethod
    def _receiver_name(node: ast.AST) -> Optional[str]:
        """Terminal name of the object ``.wait`` is called on."""
        if isinstance(node, ast.Attribute):
            return node.attr
        if isinstance(node, ast.Name):
            return node.id
        return None

    def check(self, tree, path, lines, ctx):
        if _in_tests(path):
            return []
        # Keyed by position: nested loops walk the same call twice.
        found: dict[tuple, Finding] = {}
        for loop in ast.walk(tree):
            if not isinstance(loop, (ast.For, ast.While, ast.AsyncFor)):
                continue
            for node in ast.walk(loop):
                if not (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == "wait"):
                    continue
                name = self._receiver_name(node.func.value)
                if name is None or not name.lower().endswith("cq"):
                    continue
                key = (node.lineno, node.col_offset)
                found.setdefault(key, self.finding(
                    path, node,
                    f"{name}.wait() inside a loop blocks once per "
                    f"completion — one scheduler wake and one poll "
                    f"charge per message; use "
                    f"{name}.wait_batch() to drain a burst per wake "
                    f"(see the streaming socket dispatcher)", lines))
        return list(found.values())


# ---------------------------------------------------------------------------
# SIM009 — unbounded accumulation in telemetry/monitor paths
# ---------------------------------------------------------------------------


class UnboundedAccumulationRule(Rule):
    code = "SIM009"
    summary = ("telemetry/monitor dict keyed by runtime values and never "
               "pruned — a monitor must cost O(1) memory; evict, bound, "
               "or sketch it")

    #: Where the rule applies: observability code, which by design sees
    #: every flow/host/event and therefore must not grow per key it
    #: sees.  SIM004 covers lists repo-wide; this rule covers the
    #: dict-keyed-by-label pattern that telemetry code reaches for.
    SCOPE = ("repro/telemetry/", "repro/sim/monitor.py")

    PRUNE = {"pop", "popitem", "clear"}

    @staticmethod
    def _is_dict_value(node: ast.AST) -> bool:
        if isinstance(node, ast.Dict):
            return True
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "dict")

    @staticmethod
    def _is_static_key(node: ast.AST) -> bool:
        """Constant keys make a bounded dict (a fixed label set)."""
        return isinstance(node, ast.Constant)

    def check(self, tree, path, lines, ctx):
        if not any(marker in path or path.endswith(marker)
                   for marker in self.SCOPE):
            return []
        if _in_tests(path):
            return []
        out: list[Finding] = []
        for cls in ast.walk(tree):
            if isinstance(cls, ast.ClassDef):
                self._check_class(cls, path, lines, out)
        return out

    def _check_class(self, cls: ast.ClassDef, path, lines, out) -> None:
        candidates: set = set()
        for node in cls.body:
            if (isinstance(node, ast.FunctionDef)
                    and node.name == "__init__"):
                for sub in ast.walk(node):
                    if (isinstance(sub, ast.Assign)
                            and len(sub.targets) == 1
                            and _is_self_attr(sub.targets[0])
                            and self._is_dict_value(sub.value)):
                        candidates.add(sub.targets[0].attr)
                    elif (isinstance(sub, ast.AnnAssign)
                            and sub.value is not None
                            and _is_self_attr(sub.target)
                            and self._is_dict_value(sub.value)):
                        candidates.add(sub.target.attr)
        if not candidates:
            return
        grows: list = []
        pruned: set = set()
        for node in ast.walk(cls):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (isinstance(target, ast.Subscript)
                            and _is_self_attr(target.value)
                            and not self._is_static_key(target.slice)):
                        grows.append((target.value.attr, node))
                    elif (_is_self_attr(target)
                            and not self._is_dict_value(node.value)):
                        pruned.add(target.attr)
            elif (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and _is_self_attr(node.func.value)):
                attr = node.func.value.attr
                if (node.func.attr == "setdefault" and node.args
                        and not self._is_static_key(node.args[0])):
                    grows.append((attr, node))
                elif node.func.attr in self.PRUNE:
                    pruned.add(attr)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    base = (target.value
                            if isinstance(target, ast.Subscript)
                            else target)
                    if _is_self_attr(base):
                        pruned.add(base.attr)
        for attr, node in grows:
            if attr in candidates and attr not in pruned:
                out.append(self.finding(
                    path, node,
                    f"self.{attr} accumulates one entry per runtime key "
                    f"and nothing in class {cls.name!r} ever evicts — "
                    f"telemetry state must be O(1): bound it (ring, "
                    f"capacity cap) or use a sketch "
                    f"(telemetry.sketches.SpaceSaving)", lines))


ALL_RULES = (
    DeterminismRule(),
    LostEventRule(),
    YieldAtomicityRule(),
    UnboundedGrowthRule(),
    TelemetryNamingRule(),
    FlowStateOwnershipRule(),
    BareAssertRule(),
    PerMessageCqWaitRule(),
    UnboundedAccumulationRule(),
)

RULES_BY_CODE = {rule.code: rule for rule in ALL_RULES}

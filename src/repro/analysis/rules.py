"""simlint rules: FreeFlow-repro-specific invariants.

The advertised range is never hardcoded — :func:`rule_range` derives it
from the registry (:data:`ALL_RULES`), currently SIM001–SIM012.

Each rule is a small AST pass.  They are deliberately narrow — tuned to
how *this* codebase expresses the pattern — because a repo-specific
linter earns its keep by being quiet: a rule that cries wolf gets
pragma'd into noise.  Where a rule cannot decide statically (a metric
name built entirely from variables, a loop back-edge), it stays silent;
the runtime sanitizer (:mod:`repro.analysis.sanitizer`) is the dynamic
complement that catches what escapes here.

Rule index:

* **SIM001** determinism — no wall clock / unseeded randomness in
  ``src/repro`` outside the ``sim/rand.py`` allowlist;
* **SIM002** lost event — an Event/Timeout/Store operation created in a
  sim-process generator but neither yielded, stored, nor returned;
* **SIM003** yield-point atomicity — read-modify-write of ``self.*``
  spanning a ``yield`` (state can change while the process is parked);
* **SIM004** unbounded growth — ``.append`` onto a long-lived list that
  is never pruned anywhere in its class/module;
* **SIM005** telemetry naming — metric literals must match
  ``repro.[a-z0-9_.]+`` and belong to a family the registry knows;
  event kinds must be lowercase dotted names;
* **SIM006** flow-state ownership — ``.state`` on flow connections is
  assigned only inside ``core/flows.py`` (the FlowTable state machine);
* **SIM007** no bare ``assert`` in library code — asserts vanish under
  ``python -O``; raise a typed error from :mod:`repro.errors`;
* **SIM008** per-message completion wait — ``cq.wait()`` inside a loop
  wakes the scheduler once per message; drain with
  ``CompletionQueue.wait_batch()`` so one wake applies a burst;
* **SIM009** unbounded accumulation — a telemetry/monitor dict keyed by
  runtime values (flow labels, host names) that is never pruned; a
  monitor must cost O(1) memory, so evict, bound, or sketch it;
* **SIM010** wait-cycle — two paths acquire/wait on the same pair of
  blocking resources in opposite order (interprocedural, via
  :mod:`repro.analysis.waitgraph`);
* **SIM011** unsafe hold — a blocking wait while holding a bare
  (non-context-manager) resource request with no exception-safe
  release;
* **SIM012** debit/credit imbalance — a Tank debit reachable from a
  path that can raise or return without the matching credit.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from .core import Finding, LintContext

__all__ = [
    "Rule",
    "ALL_RULES",
    "RULES_BY_CODE",
    "rule_range",
    "DeterminismRule",
    "LostEventRule",
    "YieldAtomicityRule",
    "UnboundedGrowthRule",
    "TelemetryNamingRule",
    "FlowStateOwnershipRule",
    "BareAssertRule",
    "PerMessageCqWaitRule",
    "UnboundedAccumulationRule",
    "WaitCycleRule",
    "UnsafeHoldRule",
    "CreditImbalanceRule",
]


class Rule:
    """Base class: one code, one summary, one AST pass.

    Each concrete rule carries its user-facing documentation with it:
    the class docstring explains the invariant and the fix, and
    ``example_bad``/``example_good`` are a minimal fixture pair —
    ``python -m repro lint --explain CODE`` prints all three, and a
    consistency test asserts the bad example fires and the good one
    stays silent, so the documentation can never rot.
    """

    code = "SIM000"
    summary = ""
    #: Minimal source that trips the rule / its fixed twin.
    example_bad = ""
    example_good = ""
    #: Display path the examples are linted under (some rules scope by
    #: location, e.g. SIM009 applies to telemetry modules only).
    example_path = "repro/core/example.py"

    def check(
        self, tree: ast.Module, path: str, lines: list, ctx: LintContext
    ) -> list[Finding]:
        raise NotImplementedError

    def finding(self, path: str, node: ast.AST, message: str,
                lines: list) -> Finding:
        line = getattr(node, "lineno", 1)
        snippet = lines[line - 1].strip() if 0 < line <= len(lines) else ""
        return Finding(self.code, path, line,
                       getattr(node, "col_offset", 0), message, snippet)


def _in_tests(path: str) -> bool:
    return path.startswith("tests/") or "/tests/" in path


def _is_self_attr(node: ast.AST) -> bool:
    return (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self")


def _walk_own_scope(body: list) -> Iterator[ast.AST]:
    """Walk statements/expressions of one function body, skipping nested
    function and class scopes (their yields/statements are not ours)."""
    stack = list(body)
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef, ast.Lambda)):
                continue
            stack.append(child)


def _is_generator(fn: ast.FunctionDef) -> bool:
    return any(isinstance(node, (ast.Yield, ast.YieldFrom))
               for node in _walk_own_scope(fn.body))


# ---------------------------------------------------------------------------
# SIM001 — determinism
# ---------------------------------------------------------------------------


class DeterminismRule(Rule):
    """Simulation code must be a pure function of the seed: the wall
    clock (``time.time``, ``datetime.now``) and unseeded randomness
    (the ``random``/``secrets`` modules, ``os.urandom``) make runs
    unreproducible and break the byte-identical-report CI gates.  Use
    ``env.now`` for time and a named
    :class:`~repro.sim.rand.RandomStream` for randomness."""

    code = "SIM001"
    summary = ("no wall clock / unseeded randomness in simulation code; "
               "use repro.sim.rand.RandomStream")

    example_bad = """\
import time

def stamp():
    return time.time()
"""
    example_good = """\
def stamp(env, stream):
    return env.now + stream.uniform(0.0, 1e-6)
"""

    #: Modules whose import alone is a violation: all their useful entry
    #: points are nondeterministic from the simulation's point of view.
    BANNED_MODULES = {"random", "secrets"}

    #: ``module_or_class -> {attribute}`` calls that read the wall clock
    #: or an OS entropy source.
    BANNED_ATTRS = {
        "time": {"time", "time_ns", "monotonic", "monotonic_ns",
                 "perf_counter", "perf_counter_ns"},
        "datetime": {"now", "utcnow", "today"},
        "date": {"today"},
        "os": {"urandom", "getrandom"},
        "uuid": {"uuid1", "uuid4"},
    }

    #: ``from module import name`` pairs equivalent to the above.
    BANNED_FROM = {
        ("time", "time"), ("time", "time_ns"), ("time", "monotonic"),
        ("time", "perf_counter"), ("os", "urandom"),
        ("uuid", "uuid1"), ("uuid", "uuid4"),
    }

    #: The seeded-randomness home (its own ``import random`` is the
    #: point) and the engine profiler (wall-clock attribution is its
    #: job; its deterministic outputs exclude the wall columns).
    ALLOWLIST_SUFFIXES = ("repro/sim/rand.py",
                          "repro/telemetry/profiler.py")

    def check(self, tree, path, lines, ctx):
        if path.endswith(self.ALLOWLIST_SUFFIXES) or _in_tests(path):
            return []
        out: list[Finding] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in self.BANNED_MODULES:
                        out.append(self.finding(
                            path, node,
                            f"import of nondeterministic module "
                            f"{alias.name!r} — use repro.sim.rand."
                            f"RandomStream (seeded) instead", lines))
            elif isinstance(node, ast.ImportFrom):
                module = (node.module or "").split(".")[0]
                if module in self.BANNED_MODULES:
                    out.append(self.finding(
                        path, node,
                        f"import from nondeterministic module {module!r} — "
                        f"use repro.sim.rand.RandomStream (seeded) instead",
                        lines))
                    continue
                for alias in node.names:
                    if (module, alias.name) in self.BANNED_FROM:
                        out.append(self.finding(
                            path, node,
                            f"import of nondeterministic "
                            f"{module}.{alias.name} — simulation code must "
                            f"use env.now / seeded streams", lines))
            elif isinstance(node, ast.Call):
                out.extend(self._check_call(node, path, lines))
        return out

    def _check_call(self, call: ast.Call, path, lines):
        func = call.func
        if isinstance(func, ast.Name) and func.id == "hash" and call.args:
            yield self.finding(
                path, call,
                "builtin hash() is salted per interpreter run "
                "(PYTHONHASHSEED) — derive stable keys with "
                "hashlib.sha256 or repro.sim.rand", lines)
            return
        if not isinstance(func, ast.Attribute):
            return
        base = func.value
        base_name = None
        if isinstance(base, ast.Name):
            base_name = base.id
        elif isinstance(base, ast.Attribute):
            base_name = base.attr
        if base_name is None:
            return
        banned = self.BANNED_ATTRS.get(base_name)
        if banned and func.attr in banned:
            yield self.finding(
                path, call,
                f"nondeterministic call {base_name}.{func.attr}() — "
                f"simulation code must use env.now (sim clock) or "
                f"repro.sim.rand (seeded)", lines)


# ---------------------------------------------------------------------------
# SIM002 — lost event
# ---------------------------------------------------------------------------


class LostEventRule(Rule):
    """An ``env.timeout()``/``store.get()``-style call in a sim-process
    generator returns an *event* — discarding it either creates an
    event nobody can wait on, or worse (``.get``) consumes an item that
    is then dropped on the floor.  Yield it, store it, or return it."""

    code = "SIM002"
    summary = ("event/store operation created in a generator but neither "
               "yielded, stored, nor returned")

    example_bad = """\
def worker(env):
    env.timeout(1e-6)
    yield env.timeout(1e-6)
"""
    example_good = """\
def worker(env):
    yield env.timeout(1e-6)
    yield env.timeout(1e-6)
"""

    #: Methods whose return value *is* the claim: discarding it either
    #: leaks an event nobody can wait on, or worse (``.get``) consumes an
    #: item that is then dropped on the floor.
    DISCARD_METHODS = {"timeout", "event", "all_of", "any_of", "get"}
    DISCARD_CTORS = {"Timeout", "Event", "AllOf", "AnyOf", "Condition"}

    def check(self, tree, path, lines, ctx):
        out: list[Finding] = []
        for fn in ast.walk(tree):
            if not isinstance(fn, ast.FunctionDef) or not _is_generator(fn):
                continue
            for node in _walk_own_scope(fn.body):
                if not (isinstance(node, ast.Expr)
                        and isinstance(node.value, ast.Call)):
                    continue
                func = node.value.func
                if (isinstance(func, ast.Attribute)
                        and func.attr in self.DISCARD_METHODS):
                    out.append(self.finding(
                        path, node,
                        f".{func.attr}() result discarded inside generator "
                        f"{fn.name!r} — yield it, store it, or return it "
                        f"(a dropped event is a lost wakeup; a dropped "
                        f"get() is a lost item)", lines))
                elif (isinstance(func, ast.Name)
                        and func.id in self.DISCARD_CTORS):
                    out.append(self.finding(
                        path, node,
                        f"{func.id}(...) created and discarded inside "
                        f"generator {fn.name!r} — nobody can ever wait on "
                        f"it", lines))
        return out


# ---------------------------------------------------------------------------
# SIM003 — yield-point atomicity
# ---------------------------------------------------------------------------


class YieldAtomicityRule(Rule):
    """A ``yield`` parks the process: any other process may run and
    mutate shared state before it resumes.  Reading ``self.x`` into a
    local, yielding, then writing the stale local back loses every
    concurrent update.  Re-read after resuming (or do the whole
    read-modify-write on one side of the yield)."""

    code = "SIM003"
    summary = ("read-modify-write of self.* spanning a yield — re-read "
               "after resuming")

    example_bad = """\
class Counter:
    def bump(self, env):
        count = self.pending
        yield env.timeout(1e-6)
        self.pending = count + 1
"""
    example_good = """\
class Counter:
    def bump(self, env):
        yield env.timeout(1e-6)
        self.pending = self.pending + 1
"""

    def check(self, tree, path, lines, ctx):
        out: list[Finding] = []
        for fn in ast.walk(tree):
            if isinstance(fn, ast.FunctionDef) and _is_generator(fn):
                _AtomicityScan(self, path, lines, out).run(fn.body)
        return out


class _AtomicityScan:
    """Lexical single pass over one generator body.

    Tracks *carriers* — locals assigned directly from ``self.attr`` —
    together with how many yields had executed at the read.  A later
    ``self.attr = <expr using carrier>`` after additional yields is the
    classic lost-update: the process was parked in between and another
    process may have changed ``self.attr``.

    If/else branches are scanned independently from a snapshot and
    merged (union of carriers, max yield count); loop back-edges are not
    modeled — a single lexical pass keeps the rule predictable.
    """

    def __init__(self, rule: Rule, path: str, lines: list,
                 out: list) -> None:
        self.rule = rule
        self.path = path
        self.lines = lines
        self.out = out
        self.yields = 0
        #: local name -> (attr read from self, yields seen at the read)
        self.carriers: dict = {}

    def run(self, body: list) -> None:
        self._stmts(body)

    def _stmts(self, stmts: list) -> None:
        for stmt in stmts:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return
        if isinstance(stmt, ast.Assign):
            self._count(stmt.value)
            self._assign(stmt)
        elif isinstance(stmt, ast.If):
            self._count(stmt.test)
            snapshot = dict(self.carriers)
            base_yields = self.yields
            self._stmts(stmt.body)
            body_carriers = dict(self.carriers)
            body_yields = self.yields
            self.carriers = dict(snapshot)
            self.yields = base_yields
            self._stmts(stmt.orelse)
            self.carriers.update(body_carriers)
            self.yields = max(self.yields, body_yields)
        elif isinstance(stmt, (ast.For, ast.While)):
            self._count(stmt.iter if isinstance(stmt, ast.For)
                        else stmt.test)
            self._stmts(stmt.body)
            self._stmts(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._count(item.context_expr)
            self._stmts(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._stmts(stmt.body)
            for handler in stmt.handlers:
                self._stmts(handler.body)
            self._stmts(stmt.orelse)
            self._stmts(stmt.finalbody)
        else:
            self._count(stmt)

    def _count(self, node: Optional[ast.AST]) -> None:
        if node is None:
            return
        for sub in ast.walk(node):
            if isinstance(sub, (ast.Yield, ast.YieldFrom)):
                self.yields += 1

    def _assign(self, stmt: ast.Assign) -> None:
        value = stmt.value
        if len(stmt.targets) == 1 and isinstance(stmt.targets[0], ast.Name):
            name = stmt.targets[0].id
            if _is_self_attr(value):
                self.carriers[name] = (value.attr, self.yields)
            else:
                self.carriers.pop(name, None)
            return
        for target in stmt.targets:
            if not _is_self_attr(target):
                continue
            for sub in ast.walk(value):
                if not (isinstance(sub, ast.Name)
                        and sub.id in self.carriers):
                    continue
                attr, read_yields = self.carriers[sub.id]
                if attr == target.attr and read_yields < self.yields:
                    self.out.append(self.rule.finding(
                        self.path, stmt,
                        f"read-modify-write of self.{attr} spans a yield: "
                        f"{sub.id!r} was read before the process parked — "
                        f"re-read self.{attr} after resuming or update it "
                        f"before yielding", self.lines))
                    break


# ---------------------------------------------------------------------------
# SIM004 — unbounded growth
# ---------------------------------------------------------------------------


class UnboundedGrowthRule(Rule):
    """A list initialized in ``__init__`` and appended to on the hot
    path, with no ``pop``/``clear``/``remove`` anywhere in the class,
    grows for the lifetime of the object — at datacenter scale that is
    an OOM with a delay timer.  Cap it, prune on a schedule, or use a
    bounded deque."""

    code = "SIM004"
    summary = ("append onto a long-lived list that is never pruned — "
               "cap it or prune it")

    example_bad = """\
class Log:
    def __init__(self):
        self.entries = []

    def add(self, item):
        self.entries.append(item)
"""
    example_good = """\
class Log:
    def __init__(self):
        self.entries = []

    def add(self, item):
        self.entries.append(item)
        if len(self.entries) > 64:
            self.entries.pop(0)
"""

    GROW = {"append", "extend", "appendleft"}
    PRUNE = {"pop", "popleft", "clear", "remove"}

    @staticmethod
    def _is_list_value(node: ast.AST) -> bool:
        if isinstance(node, ast.List):
            return True
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "list")

    def check(self, tree, path, lines, ctx):
        out: list[Finding] = []
        for cls in ast.walk(tree):
            if isinstance(cls, ast.ClassDef):
                self._check_class(cls, path, lines, out)
        self._check_module(tree, path, lines, out)
        return out

    def _check_class(self, cls: ast.ClassDef, path, lines, out) -> None:
        # Long-lived lists: attributes initialised to a list in __init__.
        candidates: set = set()
        for node in cls.body:
            if (isinstance(node, ast.FunctionDef)
                    and node.name == "__init__"):
                for sub in ast.walk(node):
                    if (isinstance(sub, ast.Assign)
                            and len(sub.targets) == 1
                            and _is_self_attr(sub.targets[0])
                            and self._is_list_value(sub.value)):
                        candidates.add(sub.targets[0].attr)
                    elif (isinstance(sub, ast.AnnAssign)
                            and sub.value is not None
                            and _is_self_attr(sub.target)
                            and self._is_list_value(sub.value)):
                        candidates.add(sub.target.attr)
        if not candidates:
            return
        grows: list = []
        pruned: set = set()
        for node in ast.walk(cls):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and _is_self_attr(node.func.value)):
                attr = node.func.value.attr
                if node.func.attr in self.GROW:
                    grows.append((attr, node))
                elif node.func.attr in self.PRUNE:
                    pruned.add(attr)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    base = (target.value
                            if isinstance(target, ast.Subscript)
                            else target)
                    if _is_self_attr(base):
                        pruned.add(base.attr)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    # Reassignment (self.x = self.x[-n:]) or slice store
                    # counts as a prune — but the defining `self.x = []`
                    # in __init__ does not.
                    if (_is_self_attr(target)
                            and not self._is_list_value(node.value)):
                        pruned.add(target.attr)
                    elif (isinstance(target, ast.Subscript)
                            and _is_self_attr(target.value)
                            and isinstance(target.slice, ast.Slice)):
                        pruned.add(target.value.attr)
        for attr, node in grows:
            if attr in candidates and attr not in pruned:
                out.append(self.finding(
                    path, node,
                    f"self.{attr} grows on every call and nothing in class "
                    f"{cls.name!r} ever prunes it — bound it (maxlen, "
                    f"reservoir, rollover) or prune on a schedule", lines))

    def _check_module(self, tree: ast.Module, path, lines, out) -> None:
        candidates = set()
        for stmt in tree.body:
            if (isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and self._is_list_value(stmt.value)):
                candidates.add(stmt.targets[0].id)
            elif (isinstance(stmt, ast.AnnAssign)
                    and stmt.value is not None
                    and isinstance(stmt.target, ast.Name)
                    and self._is_list_value(stmt.value)):
                candidates.add(stmt.target.id)
        if not candidates:
            return
        grows: list = []
        pruned: set = set()
        for node in ast.walk(tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in candidates):
                if node.func.attr in self.GROW:
                    grows.append((node.func.value.id, node))
                elif node.func.attr in self.PRUNE:
                    pruned.add(node.func.value.id)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    base = (target.value
                            if isinstance(target, ast.Subscript)
                            else target)
                    if isinstance(base, ast.Name) and base.id in candidates:
                        pruned.add(base.id)
            elif isinstance(node, ast.Assign) and node not in tree.body:
                for target in node.targets:
                    if (isinstance(target, ast.Name)
                            and target.id in candidates):
                        pruned.add(target.id)
        for name, node in grows:
            if name not in pruned:
                out.append(self.finding(
                    path, node,
                    f"module-level list {name!r} grows and is never pruned "
                    f"— it lives for the whole process; bound it or move "
                    f"it into an object with a lifecycle", lines))


# ---------------------------------------------------------------------------
# SIM005 — telemetry naming
# ---------------------------------------------------------------------------


class TelemetryNamingRule(Rule):
    """Metric name literals must match ``repro.[a-z0-9_.]+`` and (when
    the registry module is in view) belong to a known family; event
    kinds must be lowercase dotted names.  One naming scheme keeps
    dashboards greppable and lets the registry reject typos at
    run time instead of silently creating a parallel series."""

    code = "SIM005"
    summary = ("metric names must match repro.[a-z0-9_.]+ in a registered "
               "family; event kinds must be lowercase dotted names")

    example_bad = """\
from repro.telemetry.registry import counter_inc

def account():
    counter_inc("Socket.Sends")
"""
    example_good = """\
from repro.telemetry.registry import counter_inc

def account():
    counter_inc("repro.socket.sends")
"""

    METRIC_CALLS = {"counter_inc", "histogram_observe",
                    "counter", "gauge", "histogram"}
    METRIC_RE = re.compile(r"^repro(\.[a-z0-9_]+)+$")
    KIND_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")

    def check(self, tree, path, lines, ctx):
        out: list[Finding] = []
        in_registry = path.endswith("telemetry/registry.py")
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            func = node.func
            name = (func.id if isinstance(func, ast.Name)
                    else func.attr if isinstance(func, ast.Attribute)
                    else None)
            if name in self.METRIC_CALLS:
                self._check_metric(node, path, lines, ctx, in_registry, out)
            elif name == "emit":
                self._check_kind(node, path, lines, out)
        return out

    def _family(self, literal: str) -> Optional[str]:
        segments = [s for s in literal.split(".") if s]
        if len(segments) >= 2:
            return ".".join(segments[:2])
        return None

    def _check_metric(self, node, path, lines, ctx, in_registry, out):
        arg = node.args[0]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            name = arg.value
            if not self.METRIC_RE.match(name):
                out.append(self.finding(
                    path, node,
                    f"metric name {name!r} does not match "
                    f"repro.[a-z0-9_.]+ — every metric lives under the "
                    f"repro. namespace, lowercase dotted", lines))
                return
            family = self._family(name)
            if (ctx.known_families is not None and not in_registry
                    and family is not None
                    and family not in ctx.known_families):
                out.append(self.finding(
                    path, node,
                    f"metric family {family!r} is not declared in "
                    f"telemetry/registry.py (KNOWN_FAMILIES or a "
                    f"register_* prefix) — typo, or declare the family",
                    lines))
        elif isinstance(arg, ast.JoinedStr) and arg.values:
            head = arg.values[0]
            if not (isinstance(head, ast.Constant)
                    and isinstance(head.value, str)):
                return  # fully dynamic name: the rule stays silent
            if not head.value.startswith("repro."):
                out.append(self.finding(
                    path, node,
                    f"metric f-string starts with {head.value!r} — every "
                    f"metric name must start with 'repro.'", lines))
                return
            # Family check only when the first two segments are complete
            # (i.e. the literal head contains a second dot).
            if (head.value.count(".") >= 2
                    and ctx.known_families is not None and not in_registry):
                family = self._family(head.value)
                if family is not None and family not in ctx.known_families:
                    out.append(self.finding(
                        path, node,
                        f"metric family {family!r} is not declared in "
                        f"telemetry/registry.py — typo, or declare the "
                        f"family", lines))

    def _check_kind(self, node, path, lines, out):
        for arg in node.args:
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                kind = arg.value
                if not self.KIND_RE.match(kind):
                    out.append(self.finding(
                        path, node,
                        f"event kind {kind!r} does not match "
                        f"subject.verb naming ([a-z0-9_] segments joined "
                        f"by dots, e.g. 'flow.rebind')", lines))
                return  # only the first string positional is the kind


# ---------------------------------------------------------------------------
# SIM006 — flow-state ownership
# ---------------------------------------------------------------------------


class FlowStateOwnershipRule(Rule):
    """The flow lifecycle state machine lives in ``core/flows.py``;
    assigning ``.state`` on a flow/connection anywhere else bypasses
    the transition table, its legality checks, and the telemetry
    events it emits.  Call ``FlowTable.transition()`` instead."""

    code = "SIM006"
    summary = ("flow .state is assigned only inside core/flows.py — "
               "use FlowTable.transition()")

    example_bad = """\
def force_active(flow, state):
    flow.state = state
"""
    example_good = """\
def force_active(table, flow, state):
    table.transition(flow, state)
"""

    OWNER_SUFFIX = "core/flows.py"
    FLOWISH = re.compile(r"^(flow|conn)", re.IGNORECASE)

    def check(self, tree, path, lines, ctx):
        if path.endswith(self.OWNER_SUFFIX):
            return []
        out: list[Finding] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            elif isinstance(node, ast.AugAssign):
                targets, value = [node.target], node.value
            else:
                continue
            for target in targets:
                if not (isinstance(target, ast.Attribute)
                        and target.attr == "state"):
                    continue
                if self._mentions_flowstate(value):
                    out.append(self.finding(
                        path, node,
                        "direct FlowState assignment — flow lifecycle is "
                        "owned by the FlowTable state machine in "
                        "core/flows.py; call table.transition() so the "
                        "legality check, watchers and telemetry fire",
                        lines))
                elif (isinstance(target.value, ast.Name)
                        and self.FLOWISH.match(target.value.id)):
                    out.append(self.finding(
                        path, node,
                        f"assignment to {target.value.id}.state outside "
                        f"core/flows.py — flow state transitions must go "
                        f"through FlowTable.transition()", lines))
        return out

    @staticmethod
    def _mentions_flowstate(value: ast.AST) -> bool:
        return any(isinstance(sub, ast.Name) and sub.id == "FlowState"
                   for sub in ast.walk(value))


# ---------------------------------------------------------------------------
# SIM007 — no bare assert in library code
# ---------------------------------------------------------------------------


class BareAssertRule(Rule):
    """``assert`` statements are compiled away under ``python -O``, so
    a library invariant guarded by one silently stops being checked in
    optimized runs.  Raise a typed error from :mod:`repro.errors`
    (tests are exempt — pytest rewrites their asserts)."""

    code = "SIM007"
    summary = ("bare assert vanishes under python -O — raise a typed "
               "error from repro.errors")

    example_bad = """\
def reserve(nbytes):
    assert nbytes > 0
    return nbytes
"""
    example_good = """\
def reserve(nbytes):
    if nbytes <= 0:
        raise ValueError(f"nbytes must be positive, got {nbytes}")
    return nbytes
"""

    def check(self, tree, path, lines, ctx):
        if _in_tests(path):
            return []
        return [
            self.finding(
                path, node,
                "bare assert in library code — it disappears under "
                "python -O and names no invariant; raise the matching "
                "repro.errors type instead", lines)
            for node in ast.walk(tree)
            if isinstance(node, ast.Assert)
        ]


# ---------------------------------------------------------------------------
# SIM008 — per-message completion wait in a loop
# ---------------------------------------------------------------------------


class PerMessageCqWaitRule(Rule):
    """``cq.wait()`` inside a loop wakes the scheduler once per
    completion — the exact per-message overhead the streaming socket
    path exists to amortize (PR 6 measured 3.9–6.8x from batching).
    Drain with ``CompletionQueue.wait_batch()`` so one wake applies a
    burst."""

    code = "SIM008"
    summary = ("cq.wait() inside a loop is one scheduler wake per "
               "message — drain with wait_batch()")

    example_bad = """\
class Dispatcher:
    def run(self):
        while True:
            wc = yield from self.recv_cq.wait()
            self.apply(wc)
"""
    example_good = """\
class Dispatcher:
    def run(self):
        while True:
            wcs = yield from self.recv_cq.wait_batch()
            for wc in wcs:
                self.apply(wc)
"""

    @staticmethod
    def _receiver_name(node: ast.AST) -> Optional[str]:
        """Terminal name of the object ``.wait`` is called on."""
        if isinstance(node, ast.Attribute):
            return node.attr
        if isinstance(node, ast.Name):
            return node.id
        return None

    def check(self, tree, path, lines, ctx):
        if _in_tests(path):
            return []
        # Keyed by position: nested loops walk the same call twice.
        found: dict[tuple, Finding] = {}
        for loop in ast.walk(tree):
            if not isinstance(loop, (ast.For, ast.While, ast.AsyncFor)):
                continue
            for node in ast.walk(loop):
                if not (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == "wait"):
                    continue
                name = self._receiver_name(node.func.value)
                if name is None or not name.lower().endswith("cq"):
                    continue
                key = (node.lineno, node.col_offset)
                found.setdefault(key, self.finding(
                    path, node,
                    f"{name}.wait() inside a loop blocks once per "
                    f"completion — one scheduler wake and one poll "
                    f"charge per message; use "
                    f"{name}.wait_batch() to drain a burst per wake "
                    f"(see the streaming socket dispatcher)", lines))
        return list(found.values())


# ---------------------------------------------------------------------------
# SIM009 — unbounded accumulation in telemetry/monitor paths
# ---------------------------------------------------------------------------


class UnboundedAccumulationRule(Rule):
    """Observability code sees every flow, host and event; a dict keyed
    by runtime values (flow labels, host names) that is never pruned
    makes the monitor's memory proportional to everything it ever
    watched.  A monitor must cost O(1): evict, bound, or use a sketch
    (:class:`~repro.telemetry.sketches.SpaceSaving`)."""

    code = "SIM009"
    summary = ("telemetry/monitor dict keyed by runtime values and never "
               "pruned — a monitor must cost O(1) memory; evict, bound, "
               "or sketch it")
    example_path = "repro/telemetry/example.py"

    example_bad = """\
class Monitor:
    def __init__(self):
        self.seen = {}

    def record(self, flow, nbytes):
        self.seen[flow] = nbytes
"""
    example_good = """\
class Monitor:
    def __init__(self):
        self.seen = {}

    def record(self, flow, nbytes):
        self.seen[flow] = nbytes
        while len(self.seen) > 64:
            self.seen.pop(next(iter(self.seen)))
"""

    #: Where the rule applies: observability code, which by design sees
    #: every flow/host/event and therefore must not grow per key it
    #: sees.  SIM004 covers lists repo-wide; this rule covers the
    #: dict-keyed-by-label pattern that telemetry code reaches for.
    SCOPE = ("repro/telemetry/", "repro/sim/monitor.py")

    PRUNE = {"pop", "popitem", "clear"}

    @staticmethod
    def _is_dict_value(node: ast.AST) -> bool:
        if isinstance(node, ast.Dict):
            return True
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "dict")

    @staticmethod
    def _is_static_key(node: ast.AST) -> bool:
        """Constant keys make a bounded dict (a fixed label set)."""
        return isinstance(node, ast.Constant)

    def check(self, tree, path, lines, ctx):
        if not any(marker in path or path.endswith(marker)
                   for marker in self.SCOPE):
            return []
        if _in_tests(path):
            return []
        out: list[Finding] = []
        for cls in ast.walk(tree):
            if isinstance(cls, ast.ClassDef):
                self._check_class(cls, path, lines, out)
        return out

    def _check_class(self, cls: ast.ClassDef, path, lines, out) -> None:
        candidates: set = set()
        for node in cls.body:
            if (isinstance(node, ast.FunctionDef)
                    and node.name == "__init__"):
                for sub in ast.walk(node):
                    if (isinstance(sub, ast.Assign)
                            and len(sub.targets) == 1
                            and _is_self_attr(sub.targets[0])
                            and self._is_dict_value(sub.value)):
                        candidates.add(sub.targets[0].attr)
                    elif (isinstance(sub, ast.AnnAssign)
                            and sub.value is not None
                            and _is_self_attr(sub.target)
                            and self._is_dict_value(sub.value)):
                        candidates.add(sub.target.attr)
        if not candidates:
            return
        grows: list = []
        pruned: set = set()
        for node in ast.walk(cls):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (isinstance(target, ast.Subscript)
                            and _is_self_attr(target.value)
                            and not self._is_static_key(target.slice)):
                        grows.append((target.value.attr, node))
                    elif (_is_self_attr(target)
                            and not self._is_dict_value(node.value)):
                        pruned.add(target.attr)
            elif (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and _is_self_attr(node.func.value)):
                attr = node.func.value.attr
                if (node.func.attr == "setdefault" and node.args
                        and not self._is_static_key(node.args[0])):
                    grows.append((attr, node))
                elif node.func.attr in self.PRUNE:
                    pruned.add(attr)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    base = (target.value
                            if isinstance(target, ast.Subscript)
                            else target)
                    if _is_self_attr(base):
                        pruned.add(base.attr)
        for attr, node in grows:
            if attr in candidates and attr not in pruned:
                out.append(self.finding(
                    path, node,
                    f"self.{attr} accumulates one entry per runtime key "
                    f"and nothing in class {cls.name!r} ever evicts — "
                    f"telemetry state must be O(1): bound it (ring, "
                    f"capacity cap) or use a sketch "
                    f"(telemetry.sketches.SpaceSaving)", lines))


# ---------------------------------------------------------------------------
# SIM010–SIM012 — interprocedural wait/credit analysis
# ---------------------------------------------------------------------------
#
# The heavy lifting lives in analysis/waitgraph.py (shared resource
# vocabulary with the runtime wait-for graph); these rule classes are
# thin adapters that surface its per-file findings through the normal
# pragma/baseline machinery.


def _project_for(tree: ast.Module, path: str, ctx: LintContext):
    """The whole-program wait analysis, or a single-file fallback.

    ``lint_paths`` pre-builds one :class:`~repro.analysis.waitgraph.
    ProjectWaitGraph` over every collected file (cross-file cycles need
    the global edge set); ``lint_source`` callers without one get a
    single-module analysis, memoized on the context so the three rules
    share one pass per tree.
    """
    project = getattr(ctx, "project", None)
    if project is not None and project.covers(path):
        return project
    cache = ctx.single_cache
    key = id(tree)
    if key not in cache:
        from . import waitgraph
        cache[key] = waitgraph.analyze_modules([(path, tree)])
    return cache[key]


class _WaitGraphRule(Rule):
    """Shared check(): pull this rule's findings out of the analysis."""

    def check(self, tree, path, lines, ctx) -> list:
        if _in_tests(path):
            return []
        project = _project_for(tree, path, ctx)
        out = []
        for line, col, message in project.findings_for(self.code, path):
            snippet = (lines[line - 1].strip()
                       if 0 < line <= len(lines) else "")
            out.append(Finding(self.code, path, line, col, message, snippet))
        return out


class WaitCycleRule(_WaitGraphRule):
    """Two code paths acquire the same pair of blocking resources in
    opposite order (or re-enter a non-reentrant FIFO lock): schedule the
    two paths concurrently and each parks holding what the other needs.
    Every blocking acquisition of a holdable resource (lock request,
    tank debit) while another is held contributes a directed edge to a
    project-wide graph — including across ``yield from self.helper()``
    calls — and any cycle is reported at every participating site.
    The fix is a global acquisition order (the streaming socket path
    documents one: send lock before credit tank, never the reverse)."""

    code = "SIM010"
    summary = ("hold-and-wait cycle: resources acquired in opposite "
               "order on two paths can deadlock")

    example_bad = """\
class Peer:
    def __init__(self, env):
        self._tx_lock = Resource(env, capacity=1)
        self._credits = Tank(env, capacity=64, initial=64)

    def drain(self):
        with self._tx_lock.request() as claim:
            yield claim
            yield self._credits.get(1)
            self._staged += 1

    def refill(self):
        yield self._credits.get(64)
        with self._tx_lock.request() as claim:
            yield claim
            yield self._credits.put(64)
"""
    example_good = """\
class Peer:
    def __init__(self, env):
        self._tx_lock = Resource(env, capacity=1)
        self._credits = Tank(env, capacity=64, initial=64)

    def drain(self):
        with self._tx_lock.request() as claim:
            yield claim
            yield self._credits.get(1)
            self._staged += 1

    def refill(self):
        with self._tx_lock.request() as claim:
            yield claim
            yield self._credits.get(64)
            yield self._credits.put(64)
"""


class UnsafeHoldRule(_WaitGraphRule):
    """A lock acquired outside any ``with`` block (bare ``req =
    r.request()`` … ``yield req``) is still held at a later park, raise,
    or function end with no ``try/finally``-protected release.  If the
    parked process is interrupted or the wait raises, the slot leaks and
    every later requester blocks forever.  Use the context-manager form
    (``with r.request() as claim: yield claim``) — its ``__exit__``
    releases on every path — or release in a ``finally``."""

    code = "SIM011"
    summary = ("blocking wait while holding a bare (non-context-manager) "
               "resource request with no exception-safe release")

    example_bad = """\
class Pump:
    def __init__(self, env):
        self._lock = Resource(env, capacity=1)
        self._inbox = Store(env)

    def pump(self):
        req = self._lock.request()
        yield req
        item = yield self._inbox.get()
        self._lock.release(req)
        return item
"""
    example_good = """\
class Pump:
    def __init__(self, env):
        self._lock = Resource(env, capacity=1)
        self._inbox = Store(env)

    def pump(self):
        with self._lock.request() as claim:
            yield claim
            item = yield self._inbox.get()
        return item
"""


class CreditImbalanceRule(_WaitGraphRule):
    """A tank debit (credits drawn from a credit tank, or bytes reserved
    in a bounded window tank) reaches a park, ``raise`` or ``return``
    before the debited amount is credited back, banked into object state
    (attribute assignment, or an ``append``/``put``/``submit`` call on
    ``self``), or protected by a ``try/finally`` that repays it.  An
    exception on that path leaks the bytes: the tank level never
    recovers and the flow-control window shrinks permanently — the
    exact bug class the sockets credit-protocol comments argue away.
    Debits that are deliberately repaid by the *peer* process (ring
    hand-offs) should carry a pragma naming who repays."""

    code = "SIM012"
    summary = ("tank debit can raise/return/park with no matching credit "
               "banked — leaked bytes shrink the window forever")

    example_bad = """\
class Sender:
    def __init__(self, env):
        self._credits = Tank(env, capacity=64, initial=64)
        self._wire = Store(env)

    def send(self, env, nbytes):
        yield self._credits.get(nbytes)
        yield env.timeout(1e-6)
        self._wire.put(nbytes)
"""
    example_good = """\
class Sender:
    def __init__(self, env):
        self._credits = Tank(env, capacity=64, initial=64)
        self._wire = Store(env)

    def send(self, env, nbytes):
        yield self._credits.get(nbytes)
        self._wire.put(nbytes)
        yield env.timeout(1e-6)
"""


ALL_RULES = (
    DeterminismRule(),
    LostEventRule(),
    YieldAtomicityRule(),
    UnboundedGrowthRule(),
    TelemetryNamingRule(),
    FlowStateOwnershipRule(),
    BareAssertRule(),
    PerMessageCqWaitRule(),
    UnboundedAccumulationRule(),
    WaitCycleRule(),
    UnsafeHoldRule(),
    CreditImbalanceRule(),
)

RULES_BY_CODE = {rule.code: rule for rule in ALL_RULES}


def rule_range() -> str:
    """Advertised code range (``SIM001-SIM012``), derived from the
    registry so user-facing strings can never drift from the rules that
    actually run."""
    codes = sorted(RULES_BY_CODE)
    return f"{codes[0]}-{codes[-1]}"

"""Call graph over the linted files: who can run inside whom.

The wait/credit analysis (:mod:`repro.analysis.waitgraph`) is
interprocedural: ``FreeFlowSocket.send`` holds the TX lock while
``yield from self._send_ring(...)`` debits the credit tank, and the
hold-and-wait edge lives across that call.  This module owns the
(deliberately conservative) name resolution that makes such edges
visible:

* ``self.method(...)`` resolves to a method of the *same class in the
  same module* — the only self-call form the codebase uses;
* ``helper(...)`` (a bare name) resolves to a module-level function of
  the same module.

Anything else — ``host.cpu.execute(...)``, duck-typed callbacks,
cross-module attribute calls — stays unresolved on purpose: a linter
that guesses across object boundaries starts crying wolf, and the
runtime wait-for graph (:mod:`repro.analysis.waitfor`) covers the
dynamic composition the static side declines to guess at.

Only generator functions are indexed: in this codebase every blocking
operation is a ``yield``/``yield from`` inside a sim-process generator,
so plain functions cannot park and cannot hold across a park.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

__all__ = ["FunctionInfo", "CallGraph"]


def _is_generator(fn: ast.FunctionDef) -> bool:
    """True if ``fn`` yields in its own scope (nested defs excluded)."""
    stack = list(fn.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef, ast.Lambda)):
                continue
            stack.append(child)
    return False


@dataclass(frozen=True)
class FunctionInfo:
    """One indexed function: where it lives and its AST."""

    qualname: str           #: ``module.py::Class.method`` (stable, display)
    name: str               #: bare function/method name
    cls: Optional[str]      #: enclosing class name, or None
    module: str             #: display path of the defining file
    node: ast.FunctionDef
    is_generator: bool

    @property
    def scope(self) -> str:
        """Key prefix for resources local to this function."""
        return self.cls or self.name


class CallGraph:
    """Index of functions plus the two resolution tables."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionInfo] = {}
        #: (module, class, method name) -> qualname
        self._methods: Dict[Tuple[str, str, str], str] = {}
        #: (module, function name) -> qualname
        self._module_funcs: Dict[Tuple[str, str], str] = {}

    @classmethod
    def build(cls, modules: Iterable[Tuple[str, ast.Module]]) -> "CallGraph":
        """Index top-level functions and one level of class methods."""
        graph = cls()
        for module, tree in modules:
            for node in tree.body:
                if isinstance(node, ast.FunctionDef):
                    graph._add(module, None, node)
                elif isinstance(node, ast.ClassDef):
                    for item in node.body:
                        if isinstance(item, ast.FunctionDef):
                            graph._add(module, node.name, item)
        return graph

    def _add(self, module: str, cls_name: Optional[str],
             node: ast.FunctionDef) -> None:
        scope = f"{cls_name}.{node.name}" if cls_name else node.name
        qualname = f"{module}::{scope}"
        info = FunctionInfo(
            qualname=qualname,
            name=node.name,
            cls=cls_name,
            module=module,
            node=node,
            is_generator=_is_generator(node),
        )
        self.functions[qualname] = info
        if cls_name is None:
            self._module_funcs[(module, node.name)] = qualname
        else:
            self._methods[(module, cls_name, node.name)] = qualname

    def resolve(self, caller: FunctionInfo,
                call: ast.Call) -> Optional[FunctionInfo]:
        """Resolve a call expression to an indexed function, or None."""
        func = call.func
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "self"
                and caller.cls is not None):
            qualname = self._methods.get((caller.module, caller.cls,
                                          func.attr))
        elif isinstance(func, ast.Name):
            qualname = self._module_funcs.get((caller.module, func.id))
        else:
            qualname = None
        if qualname is None:
            return None
        return self.functions[qualname]

    def generators(self) -> Iterable[FunctionInfo]:
        for info in self.functions.values():
            if info.is_generator:
                yield info

"""Runtime sanitizer: dynamic invariant checks for the simulation engine.

The static rules in :mod:`repro.analysis.rules` catch what the AST can
see; this module catches what it cannot — armed either by setting
``REPRO_SANITIZE=1`` in the environment (checked at :mod:`repro` import
time) or by calling :func:`install` directly.  Five invariant groups:

* **No event scheduled in the past** — every entry popped by the engine
  must carry ``time >= env.now``; a past-dated entry means some code
  pushed directly onto the queues with a stale timestamp.
* **Monotone clock / global order** — consecutive pops must be
  non-decreasing in ``(time, priority, eid)``.  The three-queue engine
  (ready deque / monotone tail / heap) is *supposed* to be
  pop-order-identical to a single heap; this verifies it on every event.
* **Conservation across transplants** — :meth:`Lane.adopt` must count
  the adopted message exactly once in sent, delivered and payload
  bytes, and :meth:`ChannelFactory.transplant` must move every queued
  message and leave the old inboxes empty (no message lost or forged
  during live migration / repair).
* **FlowTable-only transitions** — ``FlowConnection.state`` becomes a
  guarded property; assigning it anywhere but through
  :meth:`FlowTable.transition` / :meth:`FlowConnection._transition`
  raises (the static counterpart is rule SIM006).
* **Streaming-ring conservation** — after every completion batch the
  receiver applies and every ``recv`` consumption, a streaming socket's
  ring accounting must balance: occupied receive-ring bytes equal the
  ring-tagged bytes waiting in the reassembly buffer, and on the send
  side ``ring capacity - credit level`` equals staged + un-acked ring
  bytes (no byte is ever minted or leaked by the coalescer or the
  credit protocol).

All violations raise :class:`repro.errors.SanitizerViolation`.  The
sanitizer routes ``Environment.run``'s inlined drain loop back through
``step()`` so every event is checked; that costs some throughput, which
is why it is opt-in (CI runs the tier-1 suite and an engine smoke with
it armed; the floor for the sanitized smoke is 5% below the normal
one).
"""

from __future__ import annotations

from typing import Optional

from ..errors import SanitizerViolation

__all__ = ["install", "uninstall", "installed", "stats", "reset_stats"]


class _State:
    """Saved originals + counters while the sanitizer is installed."""

    def __init__(self) -> None:
        self.orig_step = None
        self.orig_run = None
        self.orig_adopt = None
        self.orig_transplant = None
        self.orig_table_transition = None
        self.orig_flow_transition = None
        self.orig_apply_completions = None
        self.orig_consume_rx = None
        #: >0 while inside a sanctioned transition (state writes allowed).
        self.allow_depth = 0
        self.checks: dict[str, int] = {}
        self.violations = 0


_state: Optional[_State] = None


def installed() -> bool:
    return _state is not None


def stats() -> dict:
    """Counters: checks performed per category + violations raised."""
    if _state is None:
        return {"installed": False}
    return {
        "installed": True,
        "violations": _state.violations,
        **dict(sorted(_state.checks.items())),
    }


def reset_stats() -> None:
    if _state is not None:
        _state.checks.clear()
        _state.violations = 0


def _bump(key: str) -> None:
    state = _state
    if state is not None:
        state.checks[key] = state.checks.get(key, 0) + 1


def _violate(message: str) -> None:
    if _state is not None:
        _state.violations += 1
    raise SanitizerViolation(message)


# -- engine checks ----------------------------------------------------------


def _peek_key(env):
    """Front entry of the globally sorted merge of the three queues."""
    best = None
    if env._ready:
        best = env._ready[0]
    if env._tail and (best is None or env._tail[0] < best):
        best = env._tail[0]
    if env._queue and (best is None or env._queue[0] < best):
        best = env._queue[0]
    return best


def _checked_step(self) -> None:
    entry = _peek_key(self)
    if entry is None:
        # Let the original raise EmptySchedule with its own message.
        _state.orig_step(self)
        return
    time, priority, eid, _event = entry
    if time < self._now:
        _violate(
            f"event scheduled in the past: entry at t={time!r} "
            f"(priority={priority}, eid={eid}) while the clock is at "
            f"t={self._now!r} — something pushed a stale timestamp "
            f"directly onto the engine queues"
        )
    # Only *time* must be monotone across pops: an event processed at
    # time t may legitimately schedule an URGENT (lower-priority-number)
    # event at the same t, which a single heap would also pop next with
    # a smaller (priority, eid) — full-key monotonicity only holds for a
    # static event set.
    last = self.__dict__.get("_san_last_time")
    if last is not None and time < last:
        _violate(
            f"simulation clock regressed: popping an entry at t={time!r} "
            f"(priority={priority}, eid={eid}) after one at t={last!r} — "
            f"the three-queue schedule is no longer heap-equivalent"
        )
    self.__dict__["_san_last_time"] = time
    _bump("engine_step")
    _state.orig_step(self)
    if self._now != time:
        _violate(
            f"clock desynchronised: step() predicted t={time!r} but the "
            f"clock reads t={self._now!r} — step popped a different entry "
            f"than the global front"
        )


def _checked_run(self, until=None):
    """Re-route the drain loop through (checked) step().

    The original ``run`` inlines ``step()``'s body for the unbounded
    cases, bypassing any wrapper; this version reproduces its contract
    on top of ``self.step()``.  The numeric-``until`` path already calls
    ``self.step()`` per event, so it is delegated unchanged.
    """
    from ..sim.events import Event
    from ..sim.scheduler import StopSimulation

    if until is not None and not isinstance(until, Event):
        return _state.orig_run(self, until)

    stop_event = None
    if until is not None:
        stop_event = until
        if stop_event.processed:
            if stop_event._ok:
                return stop_event._value
            raise stop_event._value
        stop_event._add_callback(self._stop_on)

    try:
        while self._ready or self._tail or self._queue:
            self.step()
    except StopSimulation as stop:
        event = stop.args[0]
        if event._ok:
            return event._value
        raise event._value from None

    if stop_event is not None:
        if not stop_event.processed:
            raise RuntimeError(
                "simulation ran out of events before `until` event "
                "triggered"
            )
        if stop_event._ok:
            return stop_event._value
        raise stop_event._value
    return None


# -- conservation checks ----------------------------------------------------


def _checked_adopt(self, message) -> None:
    stats_obj = self.stats
    sent = stats_obj.messages_sent
    delivered = stats_obj.messages_delivered
    payload = stats_obj.payload_bytes
    _state.orig_adopt(self, message)
    _bump("lane_adopt")
    if (stats_obj.messages_sent != sent + 1
            or stats_obj.messages_delivered != delivered + 1
            or stats_obj.payload_bytes != payload + message.size_bytes):
        _violate(
            f"Lane.adopt broke stats conservation on {self.flow!r}: "
            f"expected sent +1 / delivered +1 / payload "
            f"+{message.size_bytes}, got sent "
            f"{stats_obj.messages_sent - sent:+d}, delivered "
            f"{stats_obj.messages_delivered - delivered:+d}, payload "
            f"{stats_obj.payload_bytes - payload:+d} — in_flight is no "
            f"longer conserved across the transplant"
        )


def _checked_transplant(self, old, new) -> int:
    pairs = ((old.lane_ab, new.lane_ab), (old.lane_ba, new.lane_ba))
    pending = [len(old_lane.inbox.items) for old_lane, _ in pairs]
    delivered_before = [new_lane.stats.messages_delivered
                        for _, new_lane in pairs]
    moved = _state.orig_transplant(self, old, new)
    _bump("channel_transplant")
    if moved != sum(pending):
        _violate(
            f"transplant moved {moved} message(s) but the old inboxes "
            f"held {sum(pending)} — messages were lost or forged during "
            f"the channel swap"
        )
    for (old_lane, new_lane), count, before in zip(
            pairs, pending, delivered_before):
        if old_lane.inbox.items:
            _violate(
                f"transplant left {len(old_lane.inbox.items)} message(s) "
                f"in the old {old_lane.mechanism.value} lane's inbox — "
                f"they are stranded on a dead channel"
            )
        got = new_lane.stats.messages_delivered - before
        if got != count:
            _violate(
                f"transplant adopted {got} message(s) into the new "
                f"{new_lane.mechanism.value} lane but the old lane held "
                f"{count}"
            )
    return moved


# -- streaming-ring conservation --------------------------------------------


def _check_socket_rings(sock) -> None:
    """Re-balance a streaming socket's ring accounting (both sides)."""
    if sock._rx_ring is not None:
        buffered = sum(n for n, _p, from_ring in sock._rx_buffer
                       if from_ring)
        if sock._rx_ring.used != buffered:
            _violate(
                f"receive-ring accounting out of balance on "
                f"{sock.container.name!r}: ring holds "
                f"{sock._rx_ring.used} byte(s) but the reassembly "
                f"buffer carries {buffered} ring-tagged byte(s) — a "
                f"coalesced WRITE was applied without its chunks (or "
                f"vice versa)"
            )
    if sock._tx_ring is not None and sock._tx_credits is not None:
        debited = sock._tx_credits.capacity - sock._tx_credits.level
        outstanding = sock._tx_ring.used + sock._staged_bytes
        # Senders parked between credit grant and staging account for
        # up to _credit_debt_pending extra debited-but-unstaged bytes.
        if not (outstanding <= debited
                <= outstanding + sock._credit_debt_pending):
            _violate(
                f"send-ring credit accounting out of balance on "
                f"{sock.container.name!r}: {debited} byte(s) of credit "
                f"debited but {outstanding} staged/un-acked "
                f"({sock._staged_bytes} staged + {sock._tx_ring.used} "
                f"in the ring, {sock._credit_debt_pending} granted but "
                f"not yet staged) — the credit protocol minted or "
                f"leaked ring bytes"
            )
    _bump("socket_ring")


def _checked_apply_completions(self, wcs):
    reposts = _state.orig_apply_completions(self, wcs)
    _check_socket_rings(self)
    return reposts


def _checked_consume_rx(self, max_bytes):
    result = _state.orig_consume_rx(self, max_bytes)
    _check_socket_rings(self)
    return result


# -- flow-state ownership ---------------------------------------------------


def _flow_state_get(self):
    try:
        return self.__dict__["state"]
    except KeyError:
        raise AttributeError("state") from None


def _flow_state_set(self, value) -> None:
    if "state" in self.__dict__ and _state is not None:
        if _state.allow_depth == 0:
            _violate(
                f"direct assignment to {self!r}.state "
                f"({self.__dict__['state']!r} -> {value!r}) outside the "
                f"FlowTable state machine — use FlowTable.transition() / "
                f"FlowConnection._transition() so legality checks and "
                f"telemetry fire (static counterpart: SIM006)"
            )
        _bump("flow_transition")
    self.__dict__["state"] = value


def _allowed_transition(orig):
    def wrapper(self, *args, **kwargs):
        _state.allow_depth += 1
        try:
            return orig(self, *args, **kwargs)
        finally:
            _state.allow_depth -= 1

    return wrapper


# -- install / uninstall ----------------------------------------------------


def install() -> None:
    """Arm every runtime check (idempotent)."""
    global _state
    if _state is not None:
        return
    from ..core.flows import ChannelFactory, FlowConnection, FlowTable
    from ..core.sockets import FreeFlowSocket
    from ..sim.scheduler import Environment
    from ..transports.base import Lane

    state = _State()
    state.orig_step = Environment.step
    state.orig_run = Environment.run
    state.orig_adopt = Lane.adopt
    state.orig_transplant = ChannelFactory.transplant
    state.orig_table_transition = FlowTable.transition
    state.orig_flow_transition = FlowConnection._transition
    state.orig_apply_completions = FreeFlowSocket._apply_completions
    state.orig_consume_rx = FreeFlowSocket._consume_rx
    _state = state

    Environment.step = _checked_step
    Environment.run = _checked_run
    Lane.adopt = _checked_adopt
    ChannelFactory.transplant = _checked_transplant
    FreeFlowSocket._apply_completions = _checked_apply_completions
    FreeFlowSocket._consume_rx = _checked_consume_rx
    FlowTable.transition = _allowed_transition(state.orig_table_transition)
    FlowConnection._transition = _allowed_transition(
        state.orig_flow_transition)
    # This is the guard installation itself, not a state write.
    # simlint: disable=SIM006
    FlowConnection.state = property(_flow_state_get, _flow_state_set)


def uninstall() -> None:
    """Restore the unsanitized fast paths (idempotent)."""
    global _state
    if _state is None:
        return
    from ..core.flows import ChannelFactory, FlowConnection, FlowTable
    from ..core.sockets import FreeFlowSocket
    from ..sim.scheduler import Environment
    from ..transports.base import Lane

    Environment.step = _state.orig_step
    Environment.run = _state.orig_run
    Lane.adopt = _state.orig_adopt
    ChannelFactory.transplant = _state.orig_transplant
    FreeFlowSocket._apply_completions = _state.orig_apply_completions
    FreeFlowSocket._consume_rx = _state.orig_consume_rx
    FlowTable.transition = _state.orig_table_transition
    FlowConnection._transition = _state.orig_flow_transition
    delattr(FlowConnection, "state")
    _state = None

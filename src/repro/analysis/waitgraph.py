"""Interprocedural wait/credit analysis: rules SIM010–SIM012.

The FreeFlow data path rests on blocking primitives — CQ
``wait_batch``, ``Store``/``Tank`` gets, the FIFO send lock and the
credit tank on the streaming socket path — whose deadlock-freedom
historically lived only in comments.  This pass turns those comments
into checked claims.  It shares one **resource vocabulary** with the
runtime wait-for graph (:mod:`repro.analysis.waitfor`):

========== ==================================================== =========
kind       constructor / usage evidence                          holdable
========== ==================================================== =========
lock       ``Resource(env, capacity=n)``; ``.request()``          yes
tank-credit ``Tank(env, capacity=c, initial=c)``; debit = ``get`` yes
tank-window ``Tank(env, capacity=c)``; debit = ``put``            yes
store      ``Store(env)``; ``.get()`` with no byte count          no
cq         ``CompletionQueue``; ``.wait()``/``.wait_batch()``     no
========== ==================================================== =========

A resource is *held* from the op that reserves it (a granted request,
a tank debit) until the op that releases it (``with`` exit, explicit
release, the inverse tank op, or banking the bytes into object state).
"Holdable" kinds can appear on both sides of a hold-and-wait edge;
store/CQ waits can park a process but never block anyone else, so they
can end a chain but not cycle it.

The three rules:

* **SIM010 — wait-cycle.**  Every blocking acquisition of a holdable
  resource B while holding A contributes a directed edge A→B (including
  across ``yield from self.helper()`` calls, via
  :mod:`repro.analysis.callgraph`).  Any cycle in the global edge set —
  two paths taking the same pair in opposite order, or a self-edge on a
  non-reentrant FIFO lock — is reported at every participating site.
* **SIM011 — unsafe hold across a park.**  A lock acquired *outside* a
  ``with`` block (bare ``req = r.request()`` … ``yield req``) and still
  held at a later park, raise, or function end, with no
  ``try/finally``-protected release: an exception while parked leaks
  the slot forever.
* **SIM012 — debit/credit imbalance.**  A tank debit reachable from a
  park, ``raise`` or ``return`` before the debited amount is either
  credited back, banked into object state (attribute assignment, or an
  ``append``/``put``/``submit``/``release`` call on ``self``), or
  protected by a ``try/finally`` that repays it.  This is exactly the
  bug class the sockets credit-protocol comments argue away.

The pass is deliberately narrow (see :mod:`repro.analysis.rules` for
the philosophy): resolution never crosses object boundaries, branch
analysis is lexical with conservative merging, and unresolvable
receivers classify by name heuristics only.  What escapes here, the
runtime side catches.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .callgraph import CallGraph, FunctionInfo

__all__ = ["ProjectWaitGraph", "analyze_modules", "HOLDABLE_KINDS"]

#: Resource kinds that can appear as the *held* side of an edge.
HOLDABLE_KINDS = ("lock", "tank-credit", "tank-window")

#: Method calls on ``self``(-owned objects) that count as *banking* an
#: outstanding tank debit: the bytes now live in object state some other
#: process is responsible for releasing.
_BANK_METHODS = {"append", "appendleft", "extend", "put", "submit",
                 "release", "push"}

#: Receiver names that are never resources (scheduler handles).
_NON_RESOURCE_NAMES = {"env", "self"}

#: Yielded method names that park without touching a resource.
_GENERIC_PARK_METHODS = {"timeout", "process", "event", "all_of", "any_of",
                         "execute", "memcpy", "sleep"}


@dataclass(frozen=True)
class Resource:
    """One named resource: shared vocabulary key + classified kind."""

    key: str    #: e.g. ``FreeFlowSocket._tx_credits`` or ``drain.lock``
    kind: str

    @property
    def holdable(self) -> bool:
        return self.kind in HOLDABLE_KINDS


@dataclass(frozen=True)
class Site:
    """Where something happened, in display coordinates."""

    module: str
    line: int
    col: int
    func: str


@dataclass
class _Hold:
    """A resource currently held by the function being scanned."""

    res: Resource
    how: str                  # "with" | "bare" | "debit"
    site: Site
    safe: bool = False        # try/finally- or with-protected
    settled: bool = False     # debit banked into object state
    reported: bool = False    # one finding per hold


@dataclass
class _Summary:
    """Per-generator facts the interprocedural pass composes."""

    info: FunctionInfo
    #: Holdable resources this function acquires with a blocking op.
    acquires: List[Tuple[Resource, Site]] = field(default_factory=list)
    #: Resolved inline calls: (callee qualname, call site, held keys).
    calls: List[Tuple[str, Site, Tuple[str, ...]]] = field(
        default_factory=list)


class ProjectWaitGraph:
    """The whole-program wait structure plus the findings it implies."""

    def __init__(self) -> None:
        self.graph: Optional[CallGraph] = None
        #: Resource key -> classified kind (constructor evidence).
        self.kinds: Dict[str, str] = {}
        #: Directed hold-and-wait edges: (held, acquired) -> sites.
        self.edges: Dict[Tuple[str, str], List[Site]] = {}
        self.summaries: Dict[str, _Summary] = {}
        self._modules: Set[str] = set()
        #: (rule code, module) -> [(line, col, message)].
        self._findings: Dict[Tuple[str, str], List[Tuple[int, int, str]]] = {}

    # -- public API --------------------------------------------------------

    def covers(self, module: str) -> bool:
        return module in self._modules

    def findings_for(self, code: str, module: str) -> List[Tuple[int, int, str]]:
        return sorted(self._findings.get((code, module), []))

    def resource_kind(self, key: str) -> Optional[str]:
        return self.kinds.get(key)

    # -- analysis ----------------------------------------------------------

    def analyze(self, modules: Iterable[Tuple[str, ast.Module]]) -> None:
        pairs = list(modules)
        self._modules = {module for module, _ in pairs}
        self.graph = CallGraph.build(pairs)
        for module, tree in pairs:
            self._collect_kinds(module, tree)
        for info in self.graph.generators():
            scan = _Scan(self, info)
            scan.run()
            self.summaries[info.qualname] = scan.summary
        self._propagate_calls()
        self._report_cycles()

    # -- constructor evidence ----------------------------------------------

    def _collect_kinds(self, module: str, tree: ast.Module) -> None:
        """Register ``self._x = Tank(...)`` style constructor sites."""
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for fn in node.body:
                if not isinstance(fn, ast.FunctionDef):
                    continue
                for stmt in ast.walk(fn):
                    if not isinstance(stmt, ast.Assign):
                        continue
                    kind = _ctor_kind(stmt.value)
                    if kind is None:
                        continue
                    for target in stmt.targets:
                        dotted = _self_dotted(target)
                        if dotted is not None:
                            self.kinds[f"{node.name}.{dotted}"] = kind

    # -- edge bookkeeping ---------------------------------------------------

    def _edge(self, held: Resource, acquired: Resource, site: Site) -> None:
        if not (held.holdable and acquired.holdable):
            return
        if held.key == acquired.key and acquired.kind != "lock":
            # Re-debiting the same tank is ordinary backpressure; only a
            # non-reentrant FIFO lock self-edge is a true deadlock.
            return
        self.edges.setdefault((held.key, acquired.key), []).append(site)

    def _emit(self, code: str, module: str, line: int, col: int,
              message: str) -> None:
        self._findings.setdefault((code, module), []).append(
            (line, col, message))

    # -- interprocedural composition ----------------------------------------

    def _propagate_calls(self) -> None:
        """Fold callee acquisitions into callers' held contexts."""
        memo: Dict[str, List[Resource]] = {}

        def transitive(qualname: str, trail: Set[str]) -> List[Resource]:
            if qualname in memo:
                return memo[qualname]
            if qualname in trail:       # recursion guard
                return []
            trail.add(qualname)
            summary = self.summaries.get(qualname)
            acquired: List[Resource] = []
            seen: Set[str] = set()
            if summary is not None:
                for res, _site in summary.acquires:
                    if res.key not in seen:
                        seen.add(res.key)
                        acquired.append(res)
                for callee, _site, _held in summary.calls:
                    for res in transitive(callee, trail):
                        if res.key not in seen:
                            seen.add(res.key)
                            acquired.append(res)
            trail.discard(qualname)
            memo[qualname] = acquired
            return acquired

        for summary in self.summaries.values():
            for callee, site, held_keys in summary.calls:
                if not held_keys:
                    continue
                for res in transitive(callee, set()):
                    for held_key in held_keys:
                        held_kind = self.kinds.get(held_key, "lock")
                        self._edge(Resource(held_key, held_kind), res, site)

    # -- SIM010 cycle detection ---------------------------------------------

    def _report_cycles(self) -> None:
        adjacency: Dict[str, Set[str]] = {}
        for held, acquired in self.edges:
            adjacency.setdefault(held, set()).add(acquired)
        cycles = _find_cycles(adjacency)
        for cycle in cycles:
            ring = " -> ".join(cycle + (cycle[0],))
            for index, held in enumerate(cycle):
                acquired = cycle[(index + 1) % len(cycle)]
                sites = self.edges[(held, acquired)]
                opposite = self.edges[
                    (acquired, cycle[(index + 2) % len(cycle)])
                    if len(cycle) > 1 else (held, acquired)
                ]
                for site in sites:
                    where = opposite[0]
                    message = (
                        f"wait-cycle: acquires {acquired} while holding "
                        f"{held}; cycle {ring} (opposing hold at "
                        f"{where.module}:{where.line} in {where.func})"
                    )
                    self._emit("SIM010", site.module, site.line, site.col,
                               message)


def _find_cycles(adjacency: Dict[str, Set[str]]) -> List[Tuple[str, ...]]:
    """Elementary cycles (deduplicated by rotation), shortest first."""
    cycles: Set[Tuple[str, ...]] = set()

    def dfs(start: str, node: str, path: List[str]) -> None:
        for nxt in sorted(adjacency.get(node, ())):
            if nxt == start:
                rotated = _canonical(tuple(path))
                cycles.add(rotated)
            elif nxt not in path and len(path) < 6:
                path.append(nxt)
                dfs(start, nxt, path)
                path.pop()

    for start in sorted(adjacency):
        dfs(start, start, [start])
    return sorted(cycles, key=lambda c: (len(c), c))


def _canonical(cycle: Tuple[str, ...]) -> Tuple[str, ...]:
    pivot = cycle.index(min(cycle))
    return cycle[pivot:] + cycle[:pivot]


# -- constructor / expression helpers ---------------------------------------


def _ctor_kind(value: ast.AST) -> Optional[str]:
    """Classify ``Tank(...)`` / ``Resource(...)`` / ``Store(...)`` calls."""
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None)
    if name == "Tank":
        has_initial = any(kw.arg == "initial" for kw in value.keywords)
        return "tank-credit" if has_initial else "tank-window"
    if name == "Resource":
        return "lock"
    if name == "Store":
        return "store"
    if name == "CompletionQueue":
        return "cq"
    return None


def _self_dotted(node: ast.AST) -> Optional[str]:
    """``self._a.b`` -> ``"_a.b"``; None for non-self targets."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name) and node.id == "self" and parts:
        return ".".join(reversed(parts))
    return None


def _kind_heuristic(key: str) -> str:
    """Name-based fallback when no constructor was seen."""
    leaf = key.rsplit(".", 1)[-1].lstrip("_").lower()
    if "lock" in leaf or "mutex" in leaf or "turnstile" in leaf:
        return "lock"
    if "credit" in leaf:
        return "tank-credit"
    if "tank" in leaf or "window" in leaf or "ring" in leaf or "pool" in leaf:
        return "tank-window"
    if leaf == "cq" or leaf.endswith("cq"):
        return "cq"
    return "store"


# -- the per-function scan ---------------------------------------------------


class _Scan:
    """Lexical walk of one generator: holds, parks, debits, calls.

    Branch bodies are walked from a snapshot of the held set and the
    snapshot is restored afterwards — holds acquired inside a branch do
    not leak out (quietness over completeness), while settlement flags
    mutate the shared hold records so a debit banked in *any* branch
    counts as banked.
    """

    def __init__(self, project: ProjectWaitGraph, info: FunctionInfo) -> None:
        self.project = project
        self.info = info
        self.summary = _Summary(info)
        self.held: List[_Hold] = []
        #: bare-request variables: name -> Resource.
        self.requests: Dict[str, Resource] = {}
        #: ``with r.request() as claim`` names: yield of them is a park.
        self.claims: Set[str] = set()
        #: local constructor evidence: name -> kind.
        self.local_kinds: Dict[str, str] = {}

    # -- driving ------------------------------------------------------------

    def run(self) -> None:
        self._block(self.info.node.body, frozenset())
        self._end_of_function()

    def _site(self, node: ast.AST) -> Site:
        return Site(self.info.module, getattr(node, "lineno", 1),
                    getattr(node, "col_offset", 0), self.info.name)

    def _block(self, stmts: List[ast.stmt], safe_keys: frozenset) -> None:
        for stmt in stmts:
            self._stmt(stmt, safe_keys)

    def _branch(self, stmts: List[ast.stmt], safe_keys: frozenset) -> None:
        snapshot = list(self.held)
        self._block(stmts, safe_keys)
        self.held = snapshot

    # -- statements ---------------------------------------------------------

    def _stmt(self, stmt: ast.stmt, safe_keys: frozenset) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._with(stmt, safe_keys)
        elif isinstance(stmt, ast.Try):
            released = self._finally_released(stmt.finalbody)
            protected = safe_keys | released
            # A hold taken *before* the try is exception-safe inside it
            # when the finally releases that key (the finalbody walk
            # then pops the hold via _maybe_release).
            for hold in self.held:
                if not hold.safe and hold.res.key in released:
                    hold.safe = True
            self._block(stmt.body, protected)
            for handler in stmt.handlers:
                self._branch(handler.body, safe_keys)
            self._block(stmt.orelse, safe_keys)
            self._block(stmt.finalbody, safe_keys)
        elif isinstance(stmt, ast.If):
            self._expr(stmt.test, stmt, safe_keys)
            self._branch(stmt.body, safe_keys)
            self._branch(stmt.orelse, safe_keys)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._expr(stmt.iter, stmt, safe_keys)
            self._branch(stmt.body, safe_keys)
            self._branch(stmt.orelse, safe_keys)
        elif isinstance(stmt, ast.While):
            self._expr(stmt.test, stmt, safe_keys)
            self._branch(stmt.body, safe_keys)
            self._branch(stmt.orelse, safe_keys)
        elif isinstance(stmt, ast.Assign):
            self._assign(stmt, safe_keys)
        elif isinstance(stmt, ast.AugAssign):
            self._expr(stmt.value, stmt, safe_keys)
            if _self_dotted(stmt.target) is not None:
                self._settle_debits()
        elif isinstance(stmt, ast.Expr):
            self._expr(stmt.value, stmt, safe_keys)
            self._maybe_bank(stmt.value)
            self._maybe_release(stmt.value)
        elif isinstance(stmt, ast.Raise):
            self._check_sim012(stmt, "can raise")
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._expr(stmt.value, stmt, safe_keys)
            self._check_sim012(stmt, "can return")
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._expr(child, stmt, safe_keys)

    def _assign(self, stmt: ast.Assign, safe_keys: frozenset) -> None:
        value = stmt.value
        kind = _ctor_kind(value)
        if kind is not None:
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.local_kinds[target.id] = kind
            return
        if (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr == "request"):
            res = self._resource_of(value.func.value, default_kind="lock")
            if res is not None:
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self.requests[target.id] = res
                return
        self._expr(value, stmt, safe_keys)
        if any(_self_dotted(t) is not None for t in stmt.targets):
            self._settle_debits()

    def _with(self, stmt: ast.With, safe_keys: frozenset) -> None:
        entered = 0
        for item in stmt.items:
            expr = item.context_expr
            if (isinstance(expr, ast.Call)
                    and isinstance(expr.func, ast.Attribute)
                    and expr.func.attr == "request"):
                res = self._resource_of(expr.func.value, default_kind="lock")
                if res is not None:
                    self._acquire(res, stmt)
                    self.held.append(_Hold(res, "with", self._site(stmt),
                                           safe=True))
                    entered += 1
                    if isinstance(item.optional_vars, ast.Name):
                        self.claims.add(item.optional_vars.id)
                    continue
            self._expr(expr, stmt, safe_keys)
        self._block(stmt.body, safe_keys)
        for _ in range(entered):
            self.held.pop()

    # -- expressions (parks live here) ---------------------------------------

    def _expr(self, expr: ast.expr, stmt: ast.stmt,
              safe_keys: frozenset) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.YieldFrom):
                self._park(node, stmt, safe_keys)
            elif isinstance(node, ast.Yield) and node.value is not None:
                self._park(node, stmt, safe_keys)

    def _park(self, node: ast.AST, stmt: ast.stmt,
              safe_keys: frozenset) -> None:
        value = node.value
        site = self._site(stmt)
        if isinstance(value, ast.Name):
            if value.id in self.requests:
                # ``req = lock.request()`` ... ``yield req``: the bare
                # acquisition this rule set exists for.
                res = self.requests.pop(value.id)
                self._park_checks(stmt)
                self._acquire(res, stmt)
                self.held.append(_Hold(res, "bare", site,
                                       safe=res.key in safe_keys))
                return
            # ``yield claim`` inside a with, or any stored event.
            self._park_checks(stmt)
            return
        if isinstance(value, ast.Call) and isinstance(value.func,
                                                      ast.Attribute):
            method = value.func.attr
            receiver = value.func.value
            if method in _GENERIC_PARK_METHODS:
                self._park_checks(stmt)
                return
            if isinstance(node, ast.YieldFrom):
                callee = (self.project.graph.resolve(self.info, value)
                          if self.project.graph is not None else None)
                if callee is not None and callee.is_generator:
                    held_keys = tuple(sorted({h.res.key for h in self.held}))
                    self.summary.calls.append(
                        (callee.qualname, site, held_keys))
                    self._park_checks(stmt)
                    return
            if method in ("wait", "wait_batch"):
                self._park_checks(stmt)
                return
            if method == "get":
                self._park_get(value, receiver, stmt, safe_keys)
                return
            if method == "put":
                self._park_put(value, receiver, stmt, safe_keys)
                return
            if method == "request":
                # ``yield lock.request()``: acquired and instantly
                # unreachable — hold until function end.
                res = self._resource_of(receiver, default_kind="lock")
                self._park_checks(stmt)
                if res is not None:
                    self._acquire(res, stmt)
                    self.held.append(_Hold(res, "bare", site,
                                           safe=res.key in safe_keys))
                return
        # Anything else that parks: plain events, unresolved yield-froms.
        self._park_checks(stmt)

    def _park_get(self, call: ast.Call, receiver: ast.expr,
                  stmt: ast.stmt, safe_keys: frozenset) -> None:
        res = self._resource_of(receiver)
        if res is not None and res.kind == "tank-window":
            # Consumer side: frees window bytes someone else debited.
            # Repay before the park checks — this op *is* the credit.
            self._repay(res)
        self._park_checks(stmt)
        if res is None:
            return
        if res.kind == "tank-credit" and call.args:
            # Debit: credits leave the tank and this process owns them.
            self._acquire(res, stmt)
            self.held.append(_Hold(res, "debit", self._site(stmt),
                                   safe=res.key in safe_keys))

    def _park_put(self, call: ast.Call, receiver: ast.expr,
                  stmt: ast.stmt, safe_keys: frozenset) -> None:
        res = self._resource_of(receiver)
        if res is not None and res.kind == "tank-credit":
            self._repay(res)
        self._park_checks(stmt)
        if res is None:
            return
        if res.kind == "tank-window":
            # Producer side of a bounded window: blocking debit.
            self._acquire(res, stmt)
            self.held.append(_Hold(res, "debit", self._site(stmt),
                                   safe=res.key in safe_keys))

    # -- hold-set effects ----------------------------------------------------

    def _acquire(self, res: Resource, stmt: ast.stmt) -> None:
        site = self._site(stmt)
        if res.holdable:
            self.summary.acquires.append((res, site))
        for hold in self.held:
            self.project._edge(hold.res, res, site)

    def _repay(self, res: Resource) -> None:
        for hold in reversed(self.held):
            if hold.how == "debit" and hold.res.key == res.key:
                self.held.remove(hold)
                return

    def _settle_debits(self) -> None:
        for hold in self.held:
            if hold.how == "debit":
                hold.settled = True

    def _maybe_bank(self, expr: ast.expr) -> None:
        """``self._q.append(...)`` / ``self._sq.put(...)``: debit banked."""
        if (isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Attribute)
                and expr.func.attr in _BANK_METHODS
                and _self_dotted(expr.func.value) is not None):
            self._settle_debits()

    def _maybe_release(self, expr: ast.expr) -> None:
        """``claim.cancel()`` / ``res.release(req)``: bare hold released."""
        if not (isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Attribute)):
            return
        if expr.func.attr in ("cancel", "release"):
            res = self._resource_of(expr.func.value)
            for hold in reversed(self.held):
                if hold.how == "bare" and (
                        res is None or hold.res.key == res.key):
                    self.held.remove(hold)
                    return

    def _finally_released(self, finalbody: List[ast.stmt]) -> frozenset:
        """Resource keys a ``finally`` block credits or releases."""
        keys: Set[str] = set()
        for stmt in finalbody:
            for node in ast.walk(stmt):
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in ("put", "get", "release",
                                               "cancel")):
                    res = self._resource_of(node.func.value)
                    if res is not None:
                        keys.add(res.key)
        return frozenset(keys)

    # -- rule checks ---------------------------------------------------------

    def _report(self, code: str, line: int, col: int, message: str) -> None:
        self.project._emit(code, self.info.module, line, col, message)

    def _park_checks(self, stmt: ast.stmt) -> None:
        site = self._site(stmt)
        for hold in self.held:
            if hold.reported:
                continue
            if hold.how == "bare" and not hold.safe:
                hold.reported = True
                self._report("SIM011", site.line, site.col, (
                    f"blocking wait while holding {hold.res.key} "
                    f"(acquired at line {hold.site.line} outside any "
                    f"with/try-finally: an exception while parked leaks "
                    f"the slot)"))
            elif (hold.how == "debit" and not hold.safe
                    and not hold.settled):
                hold.reported = True
                self._report("SIM012", site.line, site.col, (
                    f"parks with {hold.res.key} debited at line "
                    f"{hold.site.line} but not yet credited back or "
                    f"banked; an exception here leaks the bytes"))

    def _check_sim012(self, stmt: ast.stmt, how: str) -> None:
        site = self._site(stmt)
        for hold in self.held:
            if (hold.how == "debit" and not hold.safe and not hold.settled
                    and not hold.reported):
                hold.reported = True
                self._report("SIM012", site.line, site.col, (
                    f"{how} with {hold.res.key} debited at line "
                    f"{hold.site.line} and no matching credit on this "
                    f"path"))

    def _end_of_function(self) -> None:
        for hold in self.held:
            if hold.reported:
                continue
            if hold.how == "bare" and not hold.safe:
                self._report("SIM011", hold.site.line, hold.site.col, (
                    f"{hold.res.key} acquired here is never released on "
                    f"this path"))
            elif hold.how == "debit" and not hold.safe and not hold.settled:
                self._report("SIM012", hold.site.line, hold.site.col, (
                    f"{hold.res.key} debited here reaches the end of "
                    f"{self.info.name}() without a matching credit"))

    # -- resource resolution -------------------------------------------------

    def _resource_of(self, expr: ast.expr,
                     default_kind: Optional[str] = None) -> Optional[Resource]:
        dotted = _self_dotted(expr)
        if dotted is not None:
            if dotted.split(".")[0] in _NON_RESOURCE_NAMES:
                return None
            key = f"{self.info.cls or self.info.name}.{dotted}"
        elif isinstance(expr, ast.Name):
            if expr.id in _NON_RESOURCE_NAMES:
                return None
            key = f"{self.info.scope}.{expr.id}"
            if expr.id in self.local_kinds:
                return Resource(key, self.local_kinds[expr.id])
        elif isinstance(expr, ast.Attribute):
            # Non-self dotted receiver (``host.cpu`` ...): refuse to
            # guess identity across objects.
            return None
        else:
            return None
        kind = self.project.kinds.get(key)
        if kind is None:
            kind = default_kind or _kind_heuristic(key)
        return Resource(key, kind)


def analyze_modules(
    modules: Iterable[Tuple[str, ast.Module]]
) -> ProjectWaitGraph:
    """Build and run the project analysis over parsed modules."""
    project = ProjectWaitGraph()
    project.analyze(modules)
    return project
